#!/usr/bin/env python3
"""Quickstart: the tag sort/retrieve circuit in five minutes.

Walks the exact examples of the paper:

1. the Fig. 4 closest-match search (6-bit demo tree);
2. the Fig. 5 backup path;
3. the Fig. 9 linked-list insert (tag 16 between 15 and 17);
4. the Fig. 11 duplicate handling;
5. a short random workload on the full 12-bit silicon configuration,
   with the fixed four-cycle operation accounting.

Run: ``python examples/quickstart.py``
"""

from repro.core import (
    FIGURE_FORMAT,
    PAPER_FORMAT,
    MultiBitTree,
    TagSortRetrieveCircuit,
)


def figure_4_and_5() -> None:
    print("— Fig. 4: closest-match search —")
    tree = MultiBitTree(FIGURE_FORMAT)
    for value in (0b001001, 0b110101, 0b110111):
        tree.insert_marker(value)
        print(f"  stored marker {value:06b}")
    outcome = tree.search(0b110110)
    print(f"  search 110110 -> closest match {outcome.result:06b} "
          f"(exact={outcome.exact})")

    print("— Fig. 5: backup path —")
    outcome = tree.search(0b110100)
    print(f"  search 110100 fails at level {outcome.fail_level} "
          f"(no literal <= 00 in that node)")
    print(f"  backup path returns {outcome.result:06b} — the next lowest "
          "stored value")


def figure_9_insert() -> None:
    print("— Fig. 9: four-access linked-list insert —")
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=16)
    circuit.insert(15, payload="packet @15")
    circuit.insert(17, payload="packet @17")
    before = circuit.storage.stats.snapshot()
    circuit.insert(16, payload="packet @16")
    delta = circuit.storage.stats.delta_since(before)
    print(f"  inserting 16 between 15 and 17 cost {delta.reads} reads + "
          f"{delta.writes} writes (budget: 2 + 2)")
    print(f"  list is now {[tag for tag, _ in circuit.storage.walk()]}")
    for _ in range(3):
        served = circuit.dequeue_min()
        print(f"  served tag {served.tag}: {served.payload}")


def figure_11_duplicates() -> None:
    print("— Fig. 11: duplicate tags are FCFS —")
    circuit = TagSortRetrieveCircuit(
        PAPER_FORMAT, capacity=16, eager_marker_removal=True
    )
    circuit.insert(5, payload="first 5")
    circuit.insert(5, payload="second 5")
    circuit.insert(6, payload="the 6")
    print(f"  translation table points value 5 at the newest duplicate: "
          f"address {circuit.translation.lookup(5)}")
    while not circuit.is_empty:
        served = circuit.dequeue_min()
        print(f"  served {served.tag}: {served.payload}")


def full_configuration() -> None:
    print("— the 12-bit silicon configuration —")
    import random

    rng = random.Random(0)
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=4096)
    tag = 0
    for _ in range(1000):
        tag = min(4095, tag + rng.randrange(0, 6))
        circuit.insert(tag)
    print(f"  inserted 1000 WFQ-ordered tags; min = {circuit.peek_min()}")
    served = [circuit.dequeue_min().tag for _ in range(1000)]
    assert served == sorted(served)
    print(f"  served all 1000 in sorted order")
    print(f"  operations: {circuit.operations}, cycles: {circuit.cycles} "
          f"(exactly 4 per operation)")
    print(f"  memory traffic: {circuit.total_stats().total} accesses "
          "across tree + translation table + tag storage")


def main() -> None:
    figure_4_and_5()
    print()
    figure_9_insert()
    print()
    figure_11_duplicates()
    print()
    full_configuration()


if __name__ == "__main__":
    main()
