#!/usr/bin/env python3
"""Live service tour: the always-on WFQ scheduling server, in process.

Five stops:

1. boot a server on an ephemeral port (manual-drain mode) with a
   snapshot path and the live metrics plane attached;
2. a tenant opens SLA-admitted flows and pushes a mixed workload —
   enqueues, a cancel, a reschedule — through the wire protocol;
3. backpressure: fill the shared buffer past the marking threshold and
   watch ECN marks, then past the reject threshold and watch
   admission-reject responses;
4. scrape ``/metrics`` and ``/health`` mid-soak, live;
5. the lifecycle proof: snapshot, hard-stop the server, restore a
   fresh one from the snapshot, and show the continued service order
   matches an uninterrupted reference, event for event.

Run: ``python examples/live_service.py``
"""

import asyncio
import json
import threading
import time
import urllib.request

from repro.serve import lifecycle
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeEngine, WfqServer


def serve_in_thread(engine):
    """Run one WfqServer on a daemon thread; returns (server, done)."""
    server = WfqServer(engine)
    done = threading.Event()

    def runner():
        asyncio.run(server.serve())
        done.set()

    threading.Thread(target=runner, daemon=True).start()
    while server.port is None:
        time.sleep(0.01)
    return server, done


def stop(client, done):
    client.shutdown()
    client.close()
    done.wait(10)


def main():
    config = ServeConfig(
        link_rate_bps=1e9,
        shards=4,
        buffer_capacity=512,
        table_capacity=512,
        min_rate_bps=1e6,
        mark_fraction=0.5,
        reject_fraction=0.75,
        snapshot_path="/tmp/live_service_snapshot.json",
        metrics_port=0,
    )

    # -- stop 1: boot ------------------------------------------------
    engine = ServeEngine(config)
    server, done = serve_in_thread(engine)
    print("== the always-on scheduling server ==")
    print(f"serving on 127.0.0.1:{server.port}, "
          f"metrics on :{server._plane.port}")

    client = ServeClient("127.0.0.1", server.port, retries=20).connect()
    hello = client.hello()
    print(f"hello: protocol v{hello['protocol']}, "
          f"{hello['link_rate_bps'] / 1e9:.0f} Gb/s link, "
          f"{hello['shards']} shards\n")

    # -- stop 2: sessions and the data plane -------------------------
    print("== SLA admission and the data plane ==")
    for flow in range(4):
        decision = client.open_flow("acme", flow, rate_bps=(flow + 1) * 1e7)
        print(f"  open flow {flow} @ {(flow + 1) * 10} Mb/s -> "
              f"admitted, weight {decision['weight']:.3f}, "
              f"delay bound {decision['delay_bound_s'] * 1e3:.2f} ms")
    first = client.enqueue(0, 1500)
    second = client.enqueue(0, 1500)
    client.enqueue(1, 700)
    print(f"  enqueue -> handle {first['handle']}, tag {first['tag']:.0f}")
    print(f"  cancel handle {second['handle']}:",
          client.cancel(second["handle"])["ok"])
    moved = client.reschedule(first["handle"], first["tag"] * 4)
    print(f"  reschedule handle {first['handle']} -> ok={moved['ok']}")
    served = client.drain(16)["served"]
    print(f"  drain: {len(served)} packets, flows "
          f"{[record['flow'] for record in served]}\n")

    # -- stop 3: backpressure ----------------------------------------
    print("== backpressure: marks, then rejects ==")
    marked = rejected = accepted = 0
    for index in range(600):
        response = client.enqueue(index % 4, 1000)
        if not response["ok"]:
            rejected += 1
        else:
            accepted += 1
            if response["ecn"]:
                marked += 1
    print(f"  600 enqueues: {accepted} accepted "
          f"({marked} ECN-marked), {rejected} rejected")
    stats = client.stats()["stats"]
    print(f"  buffer {stats['buffer']['occupancy']}/"
          f"{stats['buffer']['capacity']} "
          f"(watermark {stats['buffer']['high_watermark']}), "
          f"thresholds mark={stats['backpressure']['mark_threshold']} "
          f"reject={stats['backpressure']['reject_threshold']}\n")

    # -- stop 4: the live plane --------------------------------------
    print("== live observability, mid-soak ==")
    base = f"http://127.0.0.1:{server._plane.port}"
    health = json.loads(urllib.request.urlopen(base + "/health").read())
    print(f"  /health -> {health['status']}, monitors "
          f"{health['monitors']['violations']} violations over "
          f"{health['monitors']['checked']} events")
    metrics = urllib.request.urlopen(base + "/metrics").read().decode()
    for line in metrics.splitlines():
        if line.startswith("repro_occupancy") and "shard" not in line:
            print(f"  /metrics -> {line}")
            break
    print()

    # -- stop 5: the lifecycle proof ---------------------------------
    print("== snapshot / restore: provably continued service ==")
    client.snapshot()
    state = lifecycle.read_snapshot(config.snapshot_path)
    print(f"  snapshot at served_seq={state['served_seq']}, "
          f"backlog={stats['fabric']['backlog']}")

    # Reference: keep serving the original uninterrupted.
    reference_tail = client.drain(10_000)["served"]
    stop(client, done)

    # Recovery: a fresh engine restored from the snapshot.
    restored = ServeEngine(ServeConfig(**{
        **config.to_dict(), "metrics_port": None, "snapshot_path": None,
    }))
    lifecycle.restore_state(restored, state)
    restored_tail = restored.handle_request(
        {"op": "drain", "count": 10_000}
    )["served"]
    identical = restored_tail == reference_tail
    print(f"  restored server drains {len(restored_tail)} packets: "
          f"{'IDENTICAL to uninterrupted reference' if identical else 'MISMATCH'}")
    assert identical
    restored.close()
    print("\nSame packets, same order, same sequence numbers — the "
          "restart is invisible to the service stream.")


if __name__ == "__main__":
    main()
