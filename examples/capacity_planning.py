#!/usr/bin/env python3
"""Capacity planning: sizing the circuit for a deployment.

The paper stresses independent scalability: "the tag storage memory and
the tag sort/retrieve circuit are independently scalable and
configurable... the size (word width) and number of tags stored is
decided by the size of RAM used for tag storage" (Section III-C), up to
30 million queued packets and 8 million sessions over external SRAM
(Section IV).

This example is the planning tool a deployer would use:

1. sweep the tag word format (eqs. (2)/(3)): on-chip bits, translation
   table entries, search depth;
2. estimate silicon cost per format (the Table II model);
3. size the off-chip tag storage for a target packet population;
4. check a line-rate target against the clock model.

Run: ``python examples/capacity_planning.py``
"""

from repro.core.sizing import budget_for, sweep_configurations
from repro.core.words import WordFormat
from repro.silicon import estimate_sort_retrieve

#: deployment targets to illustrate (line rate Gb/s, mean packet bytes)
LINE_TARGETS = ((10.0, 350), (40.0, 140), (100.0, 140))

#: off-chip SRAM options: (label, megabits)
SRAM_OPTIONS = (("QDRII 36 Mbit", 36), ("RLDRAM 288 Mbit", 288),
                ("DDR 2 Gbit", 2048))

#: bits per linked-list link: tag + next pointer + next tag + packet ptr
LINK_BITS = 12 + 25 + 12 + 25


def format_sweep() -> None:
    print("— tag word format sweep (eqs. (2)/(3)) —")
    print(f"  {'shape':>9} {'tree bits':>10} {'xlat entries':>13} "
          f"{'search depth':>13}")
    for word_bits in (12, 15, 16):
        for budget in sweep_configurations(word_bits):
            fmt = budget.fmt
            if fmt.literal_bits not in (3, 4, 5):
                continue  # single-match-per-node shapes only
            print(f"  {fmt.levels:>4} x {fmt.literal_bits:<3} "
                  f"{budget.total_bits:>10,} "
                  f"{budget.translation_entries:>13,} {fmt.levels:>13}")


def silicon_costs() -> None:
    print("\n— silicon cost per format (Table II model) —")
    print(f"  {'W':>3} {'area mm^2':>10} {'power mW':>9} {'clock MHz':>10} "
          f"{'Gb/s @140B':>11}")
    for word_bits, literal_bits in ((12, 4), (15, 5), (16, 4)):
        fmt = WordFormat(
            levels=word_bits // literal_bits, literal_bits=literal_bits
        )
        estimate = estimate_sort_retrieve(fmt)
        print(f"  {word_bits:>3} {estimate.area_total_mm2:>10.3f} "
              f"{estimate.power_total_mw:>9.1f} {estimate.clock_mhz:>10.1f} "
              f"{estimate.line_rate_gbps_at_140b:>11.1f}")


def storage_sizing() -> None:
    print("\n— off-chip tag storage sizing (Section IV: 30 M packets) —")
    print(f"  {'SRAM option':<18} {'links (packets)':>16}")
    for label, megabits in SRAM_OPTIONS:
        links = megabits * 1024 * 1024 // LINK_BITS
        print(f"  {label:<18} {links:>16,}")
    print(f"  (one link = {LINK_BITS} bits: tag, pointer, successor tag, "
          "packet pointer)")


def line_rate_check() -> None:
    print("\n— line-rate feasibility (clock / 4 cycles per tag) —")
    estimate = estimate_sort_retrieve()
    packets_per_second = estimate.packets_per_second
    print(f"  sustained: {packets_per_second / 1e6:.1f} M packets/s at "
          f"{estimate.clock_mhz:.1f} MHz")
    print(f"  {'target':>14} {'needed pps':>12} {'feasible':>9}")
    for gbps, mean_bytes in LINE_TARGETS:
        needed = gbps * 1e9 / (mean_bytes * 8)
        if needed <= packets_per_second:
            feasible = "yes"
        elif needed <= packets_per_second * 1.05:
            # within the estimator's margin of the paper's 143.2 MHz
            feasible = "marginal"
        else:
            feasible = "NO"
        print(f"  {gbps:>5.0f} Gb/s @{mean_bytes:>4}B {needed / 1e6:>10.1f}M "
              f"{feasible:>9}")
    print("  (the paper's claim: 40 Gb/s at a conservative 140-byte mean, "
          "4x the 5-10 Gb/s state of the art)")


def session_scalability() -> None:
    print("\n— session scalability —")
    print("  sessions are per-flow WFQ state, independent of the circuit:")
    print("  8 M sessions x (weight + last finish tag) ~ a 64 MB DRAM table;")
    print("  the sort/retrieve circuit sees only tags, so its size is")
    print("  unchanged — this is the paper's 'highly scalable' argument.")


def main() -> None:
    format_sweep()
    silicon_costs()
    storage_sizing()
    line_rate_check()
    session_scalability()


if __name__ == "__main__":
    main()
