#!/usr/bin/env python3
"""VoIP QoS: why the paper wants hardware WFQ at the edge and core.

The motivating workload of the paper's introduction: VoIP conversations
share a link with streaming video and bulk data.  VoIP needs tight delay
bounds ("end-to-end delays ... must be kept within certain limits if a
conversation ... is to be practical").

This example schedules the same traffic mix under:

* exact software WFQ,
* the full hardware WFQ system (Fig. 1 — tag computation + packet
  buffer + sort/retrieve circuit, with 12-bit quantized tags),
* DRR and WRR from the round-robin family,

and reports per-class delay percentiles plus weighted-fairness indexes.

Run: ``python examples/voip_qos.py``
"""

from repro.net import (
    HardwareWFQSystem,
    per_flow_delays,
    throughput_shares,
    weighted_jain_index,
)
from repro.sched import DRRScheduler, WFQScheduler, WRRScheduler, simulate
from repro.traffic import voip_video_data_mix


def build(cls, scenario, **kwargs):
    scheduler = cls(scenario.rate_bps, **kwargs)
    for flow_id, weight in scenario.weights.items():
        if cls is WRRScheduler:
            # WRR needs integer-ish slot ratios: scale weights up.
            scheduler.add_flow(flow_id, weight * 20)
        else:
            scheduler.add_flow(flow_id, weight)
    return scheduler


def class_delays(scenario, result):
    delays = per_flow_delays(result)
    voip = [delays[f] for f in scenario.realtime_flows]
    other = [
        stats
        for flow_id, stats in delays.items()
        if flow_id not in scenario.realtime_flows
    ]
    return voip, other


def main() -> None:
    scenario = voip_video_data_mix(
        rate_bps=10e6, packets_per_flow=400, load=0.9, seed=42
    )
    print(f"scenario: {scenario.flow_count} flows "
          f"({len(scenario.realtime_flows)} VoIP), "
          f"{len(scenario.trace)} packets, 10 Mb/s link, 90% load\n")

    header = (f"{'scheduler':<12} {'VoIP worst':>11} {'VoIP p99':>9} "
              f"{'bulk worst':>11} {'weighted Jain':>14}")
    print(header)
    print("-" * len(header))

    schedulers = [
        ("wfq (sw)", lambda: build(WFQScheduler, scenario)),
        ("wfq (hw)", lambda: build(HardwareWFQSystem, scenario)),
        ("drr", lambda: build(DRRScheduler, scenario)),
        ("wrr", lambda: build(WRRScheduler, scenario, mean_packet_bytes=500)),
    ]
    for name, factory in schedulers:
        scheduler = factory()
        result = simulate(scheduler, scenario.clone_trace())
        voip, other = class_delays(scenario, result)
        voip_worst = max(stats.worst for stats in voip) * 1000
        voip_p99 = max(stats.p99 for stats in voip) * 1000
        bulk_worst = max(stats.worst for stats in other) * 1000
        jain = weighted_jain_index(
            throughput_shares(result), scenario.weights
        )
        print(f"{name:<12} {voip_worst:>9.2f}ms {voip_p99:>7.2f}ms "
              f"{bulk_worst:>9.2f}ms {jain:>14.4f}")

    print("\nTakeaways (the paper's Section I/II argument, measured):")
    print("  * Both WFQ variants keep VoIP worst-case delay tightly bounded;")
    print("    the hardware circuit tracks exact WFQ despite 12-bit tags.")
    print("  * Round robin delays the light real-time flows behind whole")
    print("    rounds of bulk traffic - no per-flow delay bound.")


if __name__ == "__main__":
    main()
