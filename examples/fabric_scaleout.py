#!/usr/bin/env python3
"""Scale-out tour: one circuit vs. a sharded scheduling fabric.

Four stops:

1. a shard sweep (1 / 4 / 16) over the same flow workload, reporting
   the modeled speedup — single-circuit cycles over fabric makespan;
2. the tournament aggregator picking the global minimum across shard
   head registers in O(log N) wrap-aware comparisons;
3. a hot flow overloading its home shard until the manager spills to
   a neighbour and then durably rebalances the flow;
4. a mid-run checkpoint: snapshot, JSON round trip, restore, and an
   identical continuation on both sides.

Run: ``python examples/fabric_scaleout.py``
"""

import json

from repro.bench.perf import make_flow_ops
from repro.fabric import FabricPolicy, ScheduleFabric
from repro.net.hardware_store import HardwareTagStore


def drive(target, ops):
    """Replay a push/pop op stream against a store or fabric."""
    for op in ops:
        if op[0] == "push":
            target.push(op[1], op[2])
        else:
            target.pop_min()


def shard_sweep() -> None:
    print("— Shard sweep: modeled speedup over one circuit —")
    ops = make_flow_ops(6_000, seed=20060101, flows=256)
    single = HardwareTagStore(granularity=8.0, fast_mode=True)
    drive(single, ops)
    print(f"  1 circuit serves the soak in {single.cycles} cycles")
    for shards in (1, 4, 16):
        fabric = ScheduleFabric(shards=shards, granularity=8.0, fast_mode=True)
        drive(fabric, ops)
        speedup = single.cycles / fabric.cycles
        cmp_per_op = fabric.tournament.comparisons / max(1, fabric.pops)
        print(
            f"  {shards:2d} shards: makespan {fabric.cycles} cycles, "
            f"modeled speedup {speedup:.2f}x, "
            f"{cmp_per_op:.2f} tournament comparisons/pop"
        )


def tournament_in_miniature() -> None:
    print("— Tournament aggregation across shard heads —")
    fabric = ScheduleFabric(shards=4, granularity=1.0)
    # One tag per flow; the hash partitioner scatters them over shards.
    for flow, tag in enumerate((30.0, 12.0, 47.0, 21.0)):
        fabric.push(tag, flow)
    print(f"  occupancies {fabric.occupancies()}")
    order = [fabric.pop_min()[0] for _ in range(4)]
    print(f"  global service order {order} "
          f"({fabric.tournament.comparisons} comparisons total)")
    assert order == sorted(order)


def spill_and_rebalance() -> None:
    print("— Hot flow: transient spill vs. durable rebalance —")
    hot = 7

    # Spill: capacity relief only — rebalancing disabled by a huge
    # backlog floor, so the overfull home shard lends to a neighbour.
    spilly = ScheduleFabric(
        shards=4,
        granularity=1.0,
        capacity_per_shard=64,
        policy=FabricPolicy(
            spill_threshold=0.5, rebalance_min_backlog=10**9
        ),
    )
    for i in range(100):
        spilly.push(float(i), hot)
    stats = spilly.manager.describe()
    print(f"  spill-only fabric after 100 pushes to flow {hot}: "
          f"{stats['spill_count']} spills, "
          f"{stats['rebalance_count']} rebalances")
    served = [spilly.pop_min() for _ in range(len(spilly))]
    assert sorted(tag for tag, _ in served) == [float(i) for i in range(100)]
    print(f"  drained all {len(served)} tags — multiset conserved")

    # Rebalance: the manager repins the hot flow to a quieter shard,
    # so *future* pushes land elsewhere (live tags never migrate).
    policy = FabricPolicy(
        rebalance_ratio=2.0,
        rebalance_min_backlog=32,
        rebalance_cooldown_ops=1,
    )
    fabric = ScheduleFabric(
        shards=4, granularity=1.0, capacity_per_shard=64, policy=policy
    )
    home = fabric.partitioner.shard_for(hot)
    for i in range(120):
        fabric.push(float(i), hot)
    stats = fabric.manager.describe()
    print(f"  rebalancing fabric: flow {hot} started on shard {home}; "
          f"{stats['rebalance_count']} rebalances repinned "
          f"{stats['flows_moved']} flows")
    print(f"  flow {hot} now pinned to shard "
          f"{fabric.partitioner.shard_for(hot)}")


def checkpoint_migration() -> None:
    print("— Checkpoint: snapshot, migrate, resume identically —")
    ops = make_flow_ops(2_000, seed=7, flows=64)
    split = len(ops) // 2
    fabric = ScheduleFabric(shards=4, granularity=8.0)
    drive(fabric, ops[:split])
    state = json.loads(json.dumps(fabric.to_state()))
    restored = ScheduleFabric.from_state(state)
    tail_a, tail_b = [], []
    for op in ops[split:]:
        if op[0] == "push":
            fabric.push(op[1], op[2])
            restored.push(op[1], op[2])
        else:
            tail_a.append(fabric.pop_min())
            tail_b.append(restored.pop_min())
    verdict = "identical after restore" if tail_a == tail_b else "DIVERGED"
    print(f"  {len(tail_a)} post-snapshot serves on each side: {verdict}")
    assert tail_a == tail_b
    assert fabric.cycles == restored.cycles


def main() -> None:
    shard_sweep()
    print()
    tournament_in_miniature()
    print()
    spill_and_rebalance()
    print()
    checkpoint_migration()


if __name__ == "__main__":
    main()
