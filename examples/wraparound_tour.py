#!/usr/bin/env python3
"""Tour of the cyclical tag space (paper Fig. 6).

Finishing tags grow without bound, but the circuit stores 12-bit values:
"to prevent the values of the finishing tags increasing to infinity...
the WFQ policy implemented resets the values it allocates to zero after
a finite maximum value has been reached".  This example watches the
machinery that makes that safe:

* the live tag window drifting forward and wrapping the 4096-value
  space several times;
* the clear frontier bulk-deleting stale sections just before reuse;
* the sequence-number span guard that rejects over-wide windows;
* behind-minimum clamps (the paper's monotonicity assumption, patched).

Run: ``python examples/wraparound_tour.py``
"""

import random

from repro.net.hardware_store import HardwareTagStore


def drive(store, steps, mean_advance, backlog, rng, start_tag=0.0):
    """Push a drifting tag stream, keeping ``backlog`` tags live."""
    tag = start_tag
    for step in range(steps):
        tag += rng.expovariate(1.0 / mean_advance)
        # Occasional out-of-order tag below the window head — the case
        # exact WFQ produces and the store clamps.
        if rng.random() < 0.05 and step > 10:
            store.push(max(0.0, tag - 40 * mean_advance), step)
        else:
            store.push(tag, step)
        if len(store) > backlog:
            store.pop_min()
    return tag


def main() -> None:
    rng = random.Random(2026)
    store = HardwareTagStore(granularity=1.0, capacity=64)
    span = store.fmt.capacity
    print(f"tag space: {span} values, 16 sections of {span // 16}\n")

    checkpoints = 6
    steps_per_checkpoint = 1500
    print(f"{'laps':>6} {'live':>5} {'min raw':>8} {'sections cleared':>17} "
          f"{'markers purged':>15} {'clamped':>8}")
    final_tag = 0.0
    for checkpoint in range(checkpoints):
        final_tag = drive(
            store,
            steps_per_checkpoint,
            mean_advance=4.0,
            backlog=24,
            rng=rng,
            start_tag=final_tag,
        )
        laps = store._last_served_unwrapped // span if (
            store._last_served_unwrapped
        ) else 0
        print(f"{laps:>6} {len(store):>5} {store.circuit.peek_min():>8} "
              f"{store.sections_cleared:>17} {store.markers_purged:>15} "
              f"{store.clamped_inserts:>8}")
        store.circuit.check_invariants()

    print("\ninvariants verified after every checkpoint.")
    print("what just happened:")
    print(f"  * the window advanced through ~{int(final_tag / span)} laps of "
          "the 12-bit space;")
    print("  * each time the clear frontier entered a section last used a")
    print("    lap ago, its stale markers were bulk-deleted (Fig. 6's")
    print("    'child nodes stemming from this bit are isolated and deleted");
    print("    at the same time');")
    print("  * tags that arrived below the current minimum were clamped to")
    print("    the minimum's quantum and served FCFS — the hardware-feasible")
    print("    resolution of the paper's monotonicity assumption.")

    print("\nspan guard demonstration:")
    fresh = HardwareTagStore(granularity=1.0, capacity=64)
    fresh.push(10.0, 0)
    try:
        fresh.push(10.0 + span, 1)
    except Exception as error:
        print(f"  pushing a tag {span} quanta ahead -> {type(error).__name__}:")
        print(f"    {error}")


if __name__ == "__main__":
    main()
