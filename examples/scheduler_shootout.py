#!/usr/bin/env python3
"""Scheduler shootout: every policy in the library on one traffic mix.

Runs GPS (the fluid reference) plus all ten packet schedulers — the fair
queueing family (WFQ, WF²Q, WF²Q+, SCFQ, FBFQ), the round-robin family
(WRR, DRR, MDRR, CBQ, SRR), and the hardware WFQ system — on an
identical heavy traffic mix, and reports:

* mean and worst packet delay,
* worst lag behind the GPS fluid reference (the Parekh–Gallager metric),
* weighted Jain fairness index.

Run: ``python examples/scheduler_shootout.py``
"""

from repro.net import (
    HardwareWFQSystem,
    max_gps_lag,
    per_flow_delays,
    throughput_shares,
    weighted_jain_index,
)
from repro.sched import (
    CBQScheduler,
    DRRScheduler,
    FBFQScheduler,
    GPSFluidSimulator,
    MDRRScheduler,
    SCFQScheduler,
    SRRScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
    WRRScheduler,
    simulate,
)
from repro.traffic import voip_video_data_mix


def build_plain(cls, scenario, **kwargs):
    scheduler = cls(scenario.rate_bps, **kwargs)
    for flow_id, weight in scenario.weights.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


def build_wrr(scenario):
    scheduler = WRRScheduler(scenario.rate_bps, mean_packet_bytes=500)
    for flow_id, weight in scenario.weights.items():
        scheduler.add_flow(flow_id, weight * 20)
    return scheduler


def build_mdrr(scenario):
    # The first VoIP flow rides the low-latency queue.
    priority = scenario.realtime_flows[0]
    scheduler = MDRRScheduler(scenario.rate_bps, priority_flow=priority)
    for flow_id, weight in scenario.weights.items():
        if flow_id != priority:
            scheduler.add_flow(flow_id, weight)
    return scheduler


def build_cbq(scenario):
    scheduler = CBQScheduler(scenario.rate_bps)
    scheduler.add_class("realtime", 0.4)
    scheduler.add_class("bulk", 0.6)
    for flow_id, weight in scenario.weights.items():
        class_name = (
            "realtime" if flow_id in scenario.realtime_flows else "bulk"
        )
        scheduler.add_flow_to_class(flow_id, class_name, weight)
    return scheduler


def build_srr(scenario):
    scheduler = SRRScheduler(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


def main() -> None:
    scenario = voip_video_data_mix(
        rate_bps=10e6, packets_per_flow=300, load=0.95, seed=7
    )
    gps = GPSFluidSimulator(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        gps.set_weight(flow_id, weight)
    reference = gps.run(scenario.clone_trace())

    contenders = [
        ("wfq", lambda: build_plain(WFQScheduler, scenario)),
        ("wf2q", lambda: build_plain(WF2QScheduler, scenario)),
        ("wf2q+", lambda: build_plain(WF2QPlusScheduler, scenario)),
        ("scfq", lambda: build_plain(SCFQScheduler, scenario)),
        ("fbfq", lambda: build_plain(FBFQScheduler, scenario)),
        ("hw_wfq", lambda: build_plain(HardwareWFQSystem, scenario)),
        ("drr", lambda: build_plain(DRRScheduler, scenario)),
        ("wrr", lambda: build_wrr(scenario)),
        ("mdrr", lambda: build_mdrr(scenario)),
        ("cbq", lambda: build_cbq(scenario)),
        ("srr", lambda: build_srr(scenario)),
    ]

    header = (f"{'policy':<8} {'mean delay':>11} {'worst delay':>12} "
              f"{'GPS lag':>9} {'jain':>7}")
    print(f"{len(scenario.trace)} packets, 8 flows, 10 Mb/s, 95% load\n")
    print(header)
    print("-" * len(header))
    lmax = 1500 * 8 / scenario.rate_bps
    for name, factory in contenders:
        result = simulate(factory(), scenario.clone_trace())
        delays = [p.delay for p in result.packets]
        lag = max_gps_lag(result, reference)
        jain = weighted_jain_index(
            throughput_shares(result), scenario.weights
        )
        marker = " <= Lmax/r" if lag <= lmax + 1e-9 else ""
        print(f"{name:<8} {sum(delays) / len(delays) * 1000:>9.2f}ms "
              f"{max(delays) * 1000:>10.2f}ms {lag * 1000:>7.2f}ms "
              f"{jain:>7.4f}{marker}")
    print(f"\nL_max/r = {lmax * 1000:.2f} ms — WFQ and WF2Q must stay "
          "within one maximum packet time of fluid GPS (Parekh-Gallager);")
    print("round-robin policies have no such per-packet guarantee.")


if __name__ == "__main__":
    main()
