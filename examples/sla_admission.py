#!/usr/bin/env python3
"""SLA admission control: selling guaranteed QoS on one WFQ link.

The paper's closing argument: hardware WFQ lets providers offer
"service level agreements (SLA) and service differentiation" instead of
meeting QoS by "underutilizing network resources".  This example plays
the provider:

1. customers request (rate, burst, delay) contracts;
2. the admission controller converts each to a WFQ weight and a
   provable Parekh–Gallager delay bound, admitting or rejecting;
3. the admitted mix runs on the real scheduler at high utilization and
   every packet is checked against its contract.

Run: ``python examples/sla_admission.py``
"""

from repro.net import AdmissionController, ServiceLevelAgreement
from repro.sched import WFQScheduler, simulate
from repro.traffic import CBRArrivals, FixedSize, merge

LINK_RATE = 100e6  # 100 Mb/s edge link

REQUESTS = [
    # (name, rate b/s, burst bits, max packet B, delay target s)
    ("VoIP trunk", 2e6, 0.0, 200, 0.002),
    ("video feed", 25e6, 60_000.0, 1500, 0.005),
    ("backup job", 40e6, 0.0, 1500, None),
    ("second video", 25e6, 60_000.0, 1500, 0.005),
    ("greedy tenant", 30e6, 0.0, 1500, None),
    ("tiny sensor net", 100e3, 0.0, 100, 0.0005),
]


def main() -> None:
    controller = AdmissionController(LINK_RATE, utilization_limit=0.95)
    print(f"link: {LINK_RATE / 1e6:.0f} Mb/s, utilization cap 95%\n")

    admitted = []
    header = (f"{'request':<16} {'rate':>8} {'delay target':>13} "
              f"{'offered bound':>14} {'verdict'}")
    print(header)
    print("-" * len(header))
    for index, (name, rate, burst, max_packet, target) in enumerate(REQUESTS):
        sla = ServiceLevelAgreement(
            flow_id=index,
            guaranteed_rate_bps=rate,
            burst_bits=burst,
            max_packet_bytes=max_packet,
            delay_target_s=target,
        )
        decision = controller.admit(sla)
        target_text = f"{target * 1000:.2f}ms" if target else "none"
        offered = (
            f"{decision.offered_delay_s * 1000:.2f}ms"
            if decision.offered_delay_s
            else "-"
        )
        verdict = "ADMIT" if decision.admitted else f"reject: {decision.reason}"
        print(f"{name:<16} {rate / 1e6:>6.1f}M {target_text:>13} "
              f"{offered:>14} {verdict}")
        if decision.admitted:
            admitted.append((sla, decision))

    committed = controller.committed_rate_bps
    print(f"\ncommitted: {committed / 1e6:.1f} Mb/s "
          f"({committed / LINK_RATE:.0%} of the link) — QoS without "
          "underutilization.\n")

    # Run the admitted mix at full contract rates and verify the bounds.
    scheduler = WFQScheduler(LINK_RATE)
    controller.configure(scheduler)
    streams = []
    for sla, _ in admitted:
        packet_bits = sla.max_packet_bytes * 8
        pps = sla.guaranteed_rate_bps / packet_bits
        generator = CBRArrivals(
            sla.flow_id, pps, FixedSize(sla.max_packet_bytes), seed=3
        )
        streams.append(generator.packets(200))
    result = simulate(scheduler, merge(streams))

    print(f"{'flow':<16} {'packets':>8} {'worst delay':>12} "
          f"{'offered bound':>14} {'within bound'}")
    for sla, decision in admitted:
        flow_packets = [p for p in result.packets if p.flow_id == sla.flow_id]
        worst = max(p.delay for p in flow_packets)
        ok = worst <= decision.offered_delay_s + 1e-9
        name = REQUESTS[sla.flow_id][0]
        print(f"{name:<16} {len(flow_packets):>8} {worst * 1000:>10.3f}ms "
              f"{decision.offered_delay_s * 1000:>12.3f}ms "
              f"{'yes' if ok else 'NO'}")
        assert ok


if __name__ == "__main__":
    main()
