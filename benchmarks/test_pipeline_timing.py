"""§III-A pipeline timing — the fixed-time contract on a real clock.

The paper synchronizes the tree+translation lookup (4 cycles) with the
storage splice (4 cycles) "so the operations of the separate components
[are] synchronized most efficiently".  The cycle-accurate model executes
that schedule with per-cycle port auditing; this bench measures:

* steady-state throughput: exactly one operation per four cycles;
* fixed 8-cycle first-in-line latency, independent of occupancy;
* zero port conflicts over a long full-load run;
* the derived clock->line-rate chain at the Table II clock.
"""

import pytest

from repro.core.pipeline import (
    OPERATION_LATENCY_CYCLES,
    STAGE_CYCLES,
    PipelinedSortRetrieve,
)
from repro.core.words import PAPER_FORMAT
from repro.silicon import estimate_sort_retrieve


@pytest.fixture(scope="module")
def loaded_run():
    pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=4096)
    for tag in range(0, 3000, 3):
        pipeline.submit_insert(tag)
    cycles = pipeline.run_until_drained()
    return pipeline, cycles


def test_regenerate_pipeline_timing(loaded_run, report, benchmark):
    pipeline, cycles = loaded_run
    per_op = pipeline.steady_state_cycles_per_operation()
    estimate = estimate_sort_retrieve()
    mpps = estimate.clock_mhz * 1e6 / per_op / 1e6
    report(
        "PIPELINE TIMING (measured on the cycle-accurate model)\n"
        f"  operations retired:        {len(pipeline.retired)}\n"
        f"  total cycles:              {cycles}\n"
        f"  steady-state cycles/op:    {per_op:.3f} (paper: 4)\n"
        f"  first-in-line latency:     {OPERATION_LATENCY_CYCLES} cycles "
        "(lookup stage + splice stage)\n"
        f"  at the {estimate.clock_mhz:.1f} MHz Table II clock: "
        f"{mpps:.1f} Mpps"
    )
    assert per_op == pytest.approx(STAGE_CYCLES)

    def throughput_block():
        local = PipelinedSortRetrieve(PAPER_FORMAT, capacity=256)
        for tag in range(0, 200, 2):
            local.submit_insert(tag)
        local.run_until_drained()

    benchmark(throughput_block)


def test_latency_is_occupancy_independent(report, benchmark):
    latencies = {}
    for occupancy in (0, 100, 1000):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=4096)
        for tag in range(occupancy):
            pipeline.submit_insert(min(tag, 4095))
        pipeline.run_until_drained()
        pipeline.submit_insert(4095)
        pipeline.run_until_drained()
        latencies[occupancy] = pipeline.operation_latencies()[-1]
    report(
        "FIXED-TIME LATENCY (measured)\n"
        + "\n".join(
            f"  occupancy {occupancy:>5}: {latency} cycles"
            for occupancy, latency in latencies.items()
        )
    )
    assert len(set(latencies.values())) == 1
    assert next(iter(latencies.values())) == OPERATION_LATENCY_CYCLES
    benchmark(lambda: None)


def test_mixed_operation_stream_stays_clean(benchmark):
    """Inserts, dequeues and combined ops at full load: no conflicts,
    exact cycle accounting."""

    def run():
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=512)
        base = 0
        for step in range(150):
            base = min(base + 3, 4095)
            pipeline.submit_insert(base)
            if step % 3 == 2:
                pipeline.submit_dequeue()
            if step % 10 == 9:
                pipeline.submit_insert_dequeue(min(base + 1, 4095))
        pipeline.run_until_drained()
        return pipeline

    pipeline = run()
    pipeline.circuit.check_invariants()
    assert pipeline.steady_state_cycles_per_operation() == pytest.approx(4.0)
    benchmark(lambda: len(run().retired))
