"""Fig. 6 — the distribution of new tag values moves as time increases.

Runs real WFQ tag computation over two traffic profiles and profiles the
stream of new finishing tags in time windows:

* the window mean drifts monotonically forward (Fig. 6's arrow);
* a VoIP-dominated profile is left-weighted (positive skew) relative to
  a diverse mix ("streaming VoIP is likely to produce a distribution
  weighted to the left, while a diverse mix of traffic will have a
  classic bell curve");
* new tags always land between roughly the current lowest live tag and
  a bounded distance ahead of the highest;
* driving the hardware store through several wraps of the 12-bit space
  exercises the stale-section deletion the figure motivates.
"""

import pytest

from repro.analysis.distributions import (
    TagDistributionProfiler,
    mean_drift_per_window,
    render_windows,
)
from repro.net.hardware_store import HardwareTagStore
from repro.sched import VirtualClock
from repro.traffic import uniform_poisson, voip_skewed


def tag_stream(scenario):
    """Run WFQ tag computation over a scenario; yield (time, tag)."""
    clock = VirtualClock(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        clock.register(flow_id, weight)
    for packet in scenario.trace:
        tags = clock.on_arrival(
            packet.flow_id, packet.size_bits, packet.arrival_time
        )
        yield packet.arrival_time, tags.finish_tag


def profile(scenario, window_s):
    profiler = TagDistributionProfiler(window_s=window_s)
    profiler.record_many(list(tag_stream(scenario)))
    return profiler.profiles()


@pytest.fixture(scope="module")
def mixed_profiles():
    return profile(
        uniform_poisson(flows=8, packets_per_flow=400, seed=4), window_s=0.05
    )


@pytest.fixture(scope="module")
def voip_profiles():
    return profile(
        voip_skewed(flows=16, packets_per_flow=200, seed=4), window_s=0.05
    )


def test_regenerate_fig6(mixed_profiles, voip_profiles, report, benchmark):
    report(
        render_windows(mixed_profiles[:8])
        + "\n\n"
        + render_windows(voip_profiles[:8]).replace(
            "FIG. 6 (measured)", "FIG. 6 (measured, VoIP-skewed)"
        )
    )
    scenario = uniform_poisson(flows=4, packets_per_flow=100, seed=5)
    benchmark(lambda: profile(scenario, 0.05))


def test_distribution_drifts_forward(mixed_profiles, benchmark):
    drift = mean_drift_per_window(mixed_profiles)
    assert drift is not None and drift > 0
    # Monotone window means, not just on average.
    means = [p.mean for p in mixed_profiles]
    assert all(b > a for a, b in zip(means, means[1:]))
    benchmark(lambda: mean_drift_per_window(mixed_profiles))


def test_voip_profile_is_left_weighted(mixed_profiles, voip_profiles, benchmark):
    """VoIP-heavy traffic: most new tags sit near the window minimum."""

    def median_skew(profiles):
        skews = sorted(p.skewness for p in profiles if p.count > 20)
        return skews[len(skews) // 2]

    assert median_skew(voip_profiles) > median_skew(mixed_profiles)
    benchmark(lambda: median_skew(voip_profiles))


def test_wrap_maintenance_follows_the_drift(report, benchmark):
    """The drifting window wraps the 12-bit space; sections behind the
    minimum are vacated and bulk-deleted for reuse."""
    store = HardwareTagStore(granularity=1.0, capacity=32)
    tag = 0.0
    for step in range(6000):
        tag += 3.7
        store.push(tag, step)
        if len(store) > 6:
            store.pop_min()
    report(
        "FIG. 6 MAINTENANCE (measured)\n"
        f"  laps of the 4096-value space: "
        f"{int(tag // (store.granularity * 4096))}\n"
        f"  sections bulk-cleared:        {store.sections_cleared}\n"
        f"  stale markers purged:         {store.markers_purged}"
    )
    assert store.sections_cleared >= 16  # at least one full lap of clears
    assert store.markers_purged > 0
    store.circuit.check_invariants()

    def spin():
        local = HardwareTagStore(granularity=1.0, capacity=8)
        t = 0.0
        for i in range(2000):
            t += 3.7
            local.push(t, i)
            if len(local) > 2:
                local.pop_min()
        return local.sections_cleared

    benchmark(spin)
