"""Table I — comparing lookup methods available.

Regenerates the paper's method comparison by *measuring* worst-case
memory accesses per operation for every implemented method, at several
populations, under the adversarial-high workload that exposes each
method's bound.  Shape expectations (asserted):

* sorted list grows ~linearly with N;
* binary CAM's service cost tracks the tag range;
* binning's service cost tracks the bin count (range / span);
* TCAM's service cost tracks the word width W;
* the multi-bit tree is population-independent with the smallest
  sequential lookup (W / k node reads).
"""

import pytest

from repro.analysis.complexity import (
    measure_method,
    render_table1,
    scaling_exponent,
)
from repro.baselines import make_all_queues

POPULATIONS = (256, 1024, 3072)
TAG_RANGE = 4096
WORD_BITS = 12


@pytest.fixture(scope="module")
def table1_measurements():
    measurements = []
    for population in POPULATIONS:
        for name, queue in make_all_queues(
            tag_range=TAG_RANGE, word_bits=WORD_BITS, capacity=TAG_RANGE
        ).items():
            measurements.append(
                measure_method(
                    queue,
                    population=population,
                    tag_range=TAG_RANGE,
                    seed=5,
                    workload="adversarial_high",
                )
            )
    return measurements


def by_method(measurements, name):
    return [m for m in measurements if m.method == name]


def test_regenerate_table1(table1_measurements, report, benchmark):
    report(render_table1(table1_measurements))
    # Benchmark the headline operation: one tree insert at steady state.
    queue = make_all_queues(tag_range=TAG_RANGE)["multibit_tree"]
    base = 0
    for value in range(0, 2048, 2):
        queue.insert(value)

    state = {"tag": 2048}

    def insert_and_extract():
        queue.insert(state["tag"] % TAG_RANGE)
        queue.extract_min()
        state["tag"] += 1

    benchmark(insert_and_extract)


def test_sorted_list_is_linear(table1_measurements, benchmark):
    exponent = scaling_exponent(by_method(table1_measurements, "sorted_list"))
    assert exponent > 0.6
    benchmark(lambda: scaling_exponent(by_method(table1_measurements, "sorted_list")))


def test_tree_is_population_independent(table1_measurements, benchmark):
    exponent = scaling_exponent(
        by_method(table1_measurements, "multibit_tree")
    )
    assert exponent < 0.2
    benchmark(
        lambda: scaling_exponent(by_method(table1_measurements, "multibit_tree"))
    )


def test_cam_tracks_range_and_binning_tracks_bins(
    table1_measurements, benchmark
):
    cam = by_method(table1_measurements, "binary_cam")[-1]
    binning = by_method(table1_measurements, "binning")[-1]
    tcam = by_method(table1_measurements, "tcam")[-1]
    assert cam.worst_extract > TAG_RANGE // 4  # O(range)-class probing
    assert binning.worst_extract <= TAG_RANGE  # bounded by bin count
    assert binning.worst_extract > 100
    assert tcam.worst_extract == WORD_BITS + 1  # W probes + the row pop
    benchmark(lambda: None)


def test_tree_beats_every_population_bound_method(
    table1_measurements, benchmark
):
    tree = by_method(table1_measurements, "multibit_tree")[-1]
    for name in ("sorted_list", "binary_cam", "binning", "calendar_queue"):
        other = by_method(table1_measurements, name)[-1]
        assert tree.worst_total < other.worst_total, name
    benchmark(lambda: None)
