"""Extension — external tag-storage technology (Section III-C / IV).

The paper's tag storage uses external SRAM, with "QDRII and RLD RAM
versions ... also under development", and the conclusion claims the
design is "further scalable for future terabit QoS router technologies".
This bench builds that evaluation the paper defers:

* per-technology splice time and the line rate it sustains at the
  paper's 140-byte mean packet;
* capacity per device against the "30 million packets" claim;
* the random-cycle time a terabit target would demand.
"""

import pytest

from repro.silicon import (
    QDRII_SRAM,
    compare_technologies,
    required_random_cycle_ns,
    storage_throughput,
)


@pytest.fixture(scope="module")
def technology_table():
    return compare_technologies()


def test_regenerate_memory_comparison(technology_table, report, benchmark):
    lines = [
        "EXTERNAL TAG-STORAGE TECHNOLOGY (measured model)",
        f"  {'technology':<22} {'ns/op':>6} {'Mops/s':>8} "
        f"{'Gb/s @140B':>11} {'links/device':>13}",
    ]
    for name, result in technology_table.items():
        lines.append(
            f"  {name:<22} {result.operation_time_ns:>6.1f} "
            f"{result.operations_per_second / 1e6:>8.1f} "
            f"{result.line_rate_gbps_at_140b:>11.1f} "
            f"{result.links_per_device:>13,}"
        )
    needed_40g = required_random_cycle_ns(40.0, dual_port=True)
    needed_1t = required_random_cycle_ns(1000.0, dual_port=True)
    lines.append(
        f"  40 Gb/s needs <= {needed_40g:.2f} ns QDR cycles; "
        f"1 Tb/s would need {needed_1t:.2f} ns"
    )
    report("\n".join(lines))
    benchmark(compare_technologies)


def test_qdrii_covers_the_40g_claim(technology_table, benchmark):
    assert (
        technology_table["QDRII SRAM"].line_rate_gbps_at_140b > 40.0
    )
    benchmark(lambda: storage_throughput(QDRII_SRAM))


def test_rldram_covers_the_capacity_claim(technology_table, benchmark):
    """Section IV: '30 million packets at any instance' — an 8-device
    RLDRAM bank reaches it; QDRII SRAM alone cannot."""
    rldram_links = technology_table["RLDRAM II"].links_per_device
    qdr_links = technology_table["QDRII SRAM"].links_per_device
    assert 8 * rldram_links > 30e6
    assert 8 * qdr_links < 30e6
    benchmark(lambda: None)


def test_terabit_gap_is_quantified(benchmark):
    """The conclusion's terabit claim needs ~6x faster random cycles
    than QDRII — scalable architecture, gated by memory technology."""
    needed = required_random_cycle_ns(1000.0, dual_port=True)
    gap = QDRII_SRAM.random_cycle_ns / needed
    assert 4.0 < gap < 10.0
    benchmark(lambda: required_random_cycle_ns(1000.0, dual_port=True))
