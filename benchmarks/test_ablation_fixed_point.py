"""Ablation A3 — fixed-point precision of the WFQ tag computation.

The Fig. 1 tag-computation block (ref. [8]) works in fixed point; its
precision sets how faithfully hardware tags track exact eq.-(1) values
and how often finishing tags collide (the Section III-C duplicates the
sort circuit must absorb).  This bench sweeps the fractional bit width:

* worst tag error vs the exact computation shrinks ~2x per extra bit
  (reciprocal-weight quantization dominates);
* exact-collision (duplicate) counts for synchronized equal-weight CBR
  sources at each precision;
* the cycle-accurate pipeline keeps its 4-cycle throughput regardless
  (timing is precision-independent — the datapath is one multiply).
"""

import random

import pytest

from repro.core.pipeline import PipelinedSortRetrieve, STAGE_CYCLES
from repro.core.words import PAPER_FORMAT
from repro.sched.tag_computation import FixedPointVirtualClock

FRAC_BITS = (2, 4, 8, 12)


def run_mix(frac_bits, packets=1200, seed=11):
    rng = random.Random(seed)
    clock = FixedPointVirtualClock(
        rate_bps=1e6, frac_bits=frac_bits, track_error=True
    )
    for flow, weight in enumerate((0.4, 0.3, 0.2, 0.1)):
        clock.register(flow, weight)
    t = 0.0
    for _ in range(packets):
        t += rng.expovariate(3000.0)
        clock.on_arrival(rng.randrange(4), rng.choice([64, 576, 1500]) * 8, t)
    return clock


def run_cbr_collisions(frac_bits, steps=200):
    clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=frac_bits)
    clock.register(1, 0.5)
    clock.register(2, 0.5)
    for step in range(steps):
        t = step * 1e-3
        clock.on_arrival(1, 640, t)
        clock.on_arrival(2, 640, t)
    return clock.duplicate_tags


@pytest.fixture(scope="module")
def precision_sweep():
    return {
        bits: {
            "error_real": run_mix(bits).max_error_units() / (1 << bits),
            "cbr_duplicates": run_cbr_collisions(bits),
        }
        for bits in FRAC_BITS
    }


def test_regenerate_precision_sweep(precision_sweep, report, benchmark):
    lines = [
        "ABLATION A3 (measured) — fixed-point tag computation precision",
        f"  {'frac bits':>9} {'max error (virt units)':>23} "
        f"{'CBR duplicates':>15}",
    ]
    for bits, row in precision_sweep.items():
        lines.append(
            f"  {bits:>9} {row['error_real']:>23.1f} "
            f"{row['cbr_duplicates']:>15}"
        )
    report("\n".join(lines))
    benchmark(lambda: run_mix(4, packets=200))


def test_error_halves_per_bit_class(precision_sweep, benchmark):
    errors = [precision_sweep[bits]["error_real"] for bits in FRAC_BITS]
    assert errors == sorted(errors, reverse=True)
    # Over the 10-bit span the error must fall by >2 orders of magnitude.
    assert errors[0] > 100 * errors[-1]
    benchmark(lambda: None)


def test_duplicates_exist_at_every_precision(precision_sweep, benchmark):
    """Synchronized equal-weight sources collide exactly no matter how
    many fractional bits are carried — duplicates are structural, which
    is why the translation table must track the newest (Fig. 11)."""
    for bits, row in precision_sweep.items():
        assert row["cbr_duplicates"] > 0, bits
    benchmark(lambda: run_cbr_collisions(8, steps=50))


def test_pipeline_timing_is_precision_independent(benchmark):
    pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=512)
    clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=8)
    clock.register(1, 0.5)
    t = 0.0
    for step in range(120):
        t += 1e-3
        tags = clock.on_arrival(1, 640, t)
        pipeline.submit_insert(tags.finish_units % 4096)
    pipeline.run_until_drained()
    assert pipeline.steady_state_cycles_per_operation() == pytest.approx(
        STAGE_CYCLES
    )
    benchmark(lambda: None)
