"""Section IV throughput claims — 35.8 Mpps, 40 Gb/s at 140 B, ~4x over
the 5-10 Gb/s state of the art.

Two angles:

1. the *cycle model*: one circuit operation per four clock cycles at the
   post-layout clock reproduces the paper's arithmetic exactly;
2. a *live simulation*: the full Fig. 1 system schedules a voice-heavy
   trace and its measured circuit-cycle consumption converts to the same
   sustained packet rate.
"""

import pytest

from repro.net import HardwareWFQSystem
from repro.net.scheduler_system import DEFAULT_CLOCK_HZ
from repro.sched import simulate
from repro.silicon import estimate_sort_retrieve
from repro.traffic import PAPER_MEAN_PACKET_BYTES, voip_skewed


@pytest.fixture(scope="module")
def estimate():
    return estimate_sort_retrieve()


def test_regenerate_section_iv_numbers(estimate, report, benchmark):
    system = HardwareWFQSystem(10e6)
    mpps = system.sustained_packets_per_second() / 1e6
    gbps = system.sustained_line_rate_bps(PAPER_MEAN_PACKET_BYTES) / 1e9
    report(
        "SECTION IV THROUGHPUT (measured)\n"
        f"  clock model:          {DEFAULT_CLOCK_HZ / 1e6:.1f} MHz / 4 cycles per op\n"
        f"  packets per second:   {mpps:.1f} M   (paper: 35.8 M)\n"
        f"  line rate @140B:      {gbps:.1f} Gb/s (paper: 40)\n"
        f"  estimator clock:      {estimate.clock_mhz:.1f} MHz\n"
        f"  estimator line rate:  {estimate.line_rate_gbps_at_140b:.1f} Gb/s\n"
        f"  vs 10 Gb/s vendors:   {gbps / 10:.1f}x   (paper: ~4x)\n"
        f"  vs 2.5 Gb/s IP layer: {gbps / 2.5:.1f}x  (paper: order of magnitude)"
    )
    assert mpps == pytest.approx(35.8, rel=0.01)
    assert gbps == pytest.approx(40.0, rel=0.02)
    benchmark(lambda: HardwareWFQSystem(10e6).sustained_line_rate_bps(140))


def test_live_simulation_cycle_accounting(report, benchmark):
    """Measured cycles from a real scheduling run scale to line rate."""
    scenario = voip_skewed(flows=16, packets_per_flow=150, seed=2)
    system = HardwareWFQSystem(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        system.add_flow(flow_id, weight)
    result = simulate(system, scenario.clone_trace())
    operations = system.store.operations
    cycles = system.store.cycles
    assert cycles == 4 * operations
    sustained_pps = DEFAULT_CLOCK_HZ / (cycles / operations)
    mean_bytes = sum(p.size_bytes for p in result.packets) / len(result.packets)
    sustained_gbps = sustained_pps * mean_bytes * 8 / 1e9
    report(
        "LIVE RUN CYCLE ACCOUNTING\n"
        f"  packets scheduled:   {len(result.packets)}\n"
        f"  circuit operations:  {operations}\n"
        f"  circuit cycles:      {cycles} (exactly 4 per operation)\n"
        f"  sustained rate:      {sustained_pps / 1e6:.1f} Mpps\n"
        f"  at this trace's {mean_bytes:.0f}B mean: {sustained_gbps:.1f} Gb/s"
    )
    assert sustained_pps == pytest.approx(35.8e6, rel=0.01)

    def schedule_block():
        local = HardwareWFQSystem(scenario.rate_bps)
        for flow_id, weight in scenario.weights.items():
            local.add_flow(flow_id, weight)
        trace = scenario.clone_trace()[:400]
        simulate(local, trace)
        return local.store.cycles

    benchmark(schedule_block)


def test_simulated_insert_rate(benchmark, report):
    """Raw Python-side throughput of the circuit model (not a silicon
    claim — just the simulator's own speed for reproducibility notes)."""
    from repro.core.sort_retrieve import TagSortRetrieveCircuit

    circuit = TagSortRetrieveCircuit(capacity=8192)
    state = {"tag": 0}

    def one_op():
        circuit.insert(min(state["tag"], 4095))
        circuit.dequeue_min()
        state["tag"] += 1
        if state["tag"] >= 4095:
            state["tag"] = 0

    result = benchmark(one_op)
    report(
        "SIMULATOR SPEED (informational)\n"
        "  one insert+dequeue pair per benchmark round"
    )
