"""The full scheduler family on one trace — breadth check for §I-B/§II.

Every policy in the library (fair-queueing family, round-robin family,
both hardware systems, H-PFQ) runs the same mixed trace; asserted:

* all are work-conserving on this trace (identical makespan);
* every fair-queueing policy keeps its worst GPS lag within one maximum
  packet (Parekh–Gallager class), WRR and SRR do not;
* the interleaving index separates fair queueing (fine interleaving)
  from large-quantum round robin (runs).
"""

import pytest

from repro.analysis.timelines import interleaving_index
from repro.net import (
    HardwareWF2QPlusSystem,
    HardwareWFQSystem,
    max_gps_lag,
)
from repro.sched import (
    DRRScheduler,
    FBFQScheduler,
    GPSFluidSimulator,
    HPFQScheduler,
    SCFQScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
    WRRScheduler,
    simulate,
)
from repro.traffic import voip_video_data_mix

#: exact GPS-tracking policies: strict Parekh-Gallager L_max/r bound
EXACT_FQ = ("wfq", "wf2q")
#: approximate-clock fair queueing: a small constant number of L_max
#: (SCFQ's known bound is ~N*L_max/r; on this trace all stay under 4)
APPROX_FQ = ("wf2q+", "scfq", "fbfq", "hw_wfq", "hw_wf2q+", "hpfq")
RR_FAMILY = ("wrr",)


def build_all(scenario):
    def plain(cls, **kwargs):
        scheduler = cls(scenario.rate_bps, **kwargs)
        for flow_id, weight in scenario.weights.items():
            scheduler.add_flow(flow_id, weight)
        return scheduler

    contenders = {
        "wfq": plain(WFQScheduler),
        "wf2q": plain(WF2QScheduler),
        "wf2q+": plain(WF2QPlusScheduler),
        "scfq": plain(SCFQScheduler),
        "fbfq": plain(FBFQScheduler),
        "hw_wfq": plain(HardwareWFQSystem),
        "hw_wf2q+": plain(HardwareWF2QPlusSystem),
        "hpfq": plain(HPFQScheduler),
        "drr": plain(DRRScheduler, quantum_bytes=3000),
        "wrr": None,
    }
    wrr = WRRScheduler(scenario.rate_bps, mean_packet_bytes=500)
    for flow_id, weight in scenario.weights.items():
        wrr.add_flow(flow_id, weight * 20)
    contenders["wrr"] = wrr
    return contenders


@pytest.fixture(scope="module")
def family_runs():
    scenario = voip_video_data_mix(packets_per_flow=200, seed=13)
    gps = GPSFluidSimulator(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        gps.set_weight(flow_id, weight)
    reference = gps.run(scenario.clone_trace())
    runs = {}
    for name, scheduler in build_all(scenario).items():
        result = simulate(scheduler, scenario.clone_trace())
        runs[name] = {
            "result": result,
            "lag": max_gps_lag(result, reference),
            "interleave": interleaving_index(result),
        }
    return scenario, runs


def test_regenerate_family_table(family_runs, report, benchmark):
    scenario, runs = family_runs
    lmax = 1500 * 8 / scenario.rate_bps
    lines = [
        "SCHEDULER FAMILY (measured) — one trace, every policy",
        f"  {'policy':<9} {'worst GPS lag':>14} {'interleaving':>13} "
        f"{'makespan':>10}",
    ]
    for name, run in runs.items():
        lines.append(
            f"  {name:<9} {run['lag'] * 1000:>12.2f}ms "
            f"{run['interleave']:>13.3f} "
            f"{run['result'].finish_time:>9.3f}s"
        )
    lines.append(f"  (L_max/r = {lmax * 1000:.2f} ms)")
    report("\n".join(lines))
    benchmark(lambda: None)


def test_all_work_conserving(family_runs, benchmark):
    _, runs = family_runs
    makespans = [run["result"].finish_time for run in runs.values()]
    assert max(makespans) - min(makespans) < 1e-6
    benchmark(lambda: None)


def test_exact_fq_within_one_packet_of_gps(family_runs, benchmark):
    scenario, runs = family_runs
    bound = 1500 * 8 / scenario.rate_bps
    for name in EXACT_FQ:
        assert runs[name]["lag"] <= bound + 1e-9, name
    benchmark(lambda: None)


def test_approximate_fq_within_a_few_packets(family_runs, benchmark):
    """Cheaper virtual clocks trade the strict bound for a small
    constant number of maximum packets — still rate-determined, unlike
    round robin."""
    scenario, runs = family_runs
    bound = 1500 * 8 / scenario.rate_bps
    for name in APPROX_FQ:
        assert runs[name]["lag"] <= 4 * bound, name
    benchmark(lambda: None)


def test_rr_family_exceeds_the_bound(family_runs, benchmark):
    scenario, runs = family_runs
    bound = 1500 * 8 / scenario.rate_bps
    for name in RR_FAMILY:
        assert runs[name]["lag"] > bound, name
    benchmark(lambda: None)


def test_everyone_delivers_the_multiset(family_runs, benchmark):
    scenario, runs = family_runs
    expected = sorted(p.packet_id for p in scenario.trace)
    for name, run in runs.items():
        delivered = sorted(p.packet_id for p in run["result"].packets)
        assert delivered == expected, name
    benchmark(lambda: None)
