"""Structural corroboration of Figs. 7/8 — gate-level netlist sweep.

The analytic matcher cost models are cross-checked by *building* the
closest-match circuit out of two-input gates and measuring longest-path
depth and gate count structurally, for the serial (ripple-class) and
parallel-prefix (look-ahead-class) suffix-OR topologies.
"""

import pytest

from repro.core.matching import reference_search
from repro.core.matching.netlist import (
    build_matcher_netlist,
    netlist_search,
)

WIDTHS = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def structural_sweep():
    sweep = {}
    for topology in ("ripple", "tree"):
        sweep[topology] = {
            width: build_matcher_netlist(width, topology=topology)
            for width in WIDTHS
        }
    return sweep


def test_regenerate_structural_sweep(structural_sweep, report, benchmark):
    lines = [
        "GATE-LEVEL NETLIST SWEEP (structural Figs. 7/8 corroboration)",
        f"  {'width':>6} {'ripple depth':>13} {'ripple gates':>13} "
        f"{'tree depth':>11} {'tree gates':>11}",
    ]
    for width in WIDTHS:
        ripple = structural_sweep["ripple"][width]
        tree = structural_sweep["tree"][width]
        lines.append(
            f"  {width:>6} {ripple.depth():>13} {ripple.gate_count():>13} "
            f"{tree.depth():>11} {tree.gate_count():>11}"
        )
    report("\n".join(lines))
    netlist = structural_sweep["tree"][16]
    benchmark(netlist_search, netlist, 16, 0xBEEF, 11)


def test_depth_classes(structural_sweep, benchmark):
    """Linear vs logarithmic depth, measured on real gates."""
    for width in WIDTHS:
        assert structural_sweep["ripple"][width].depth() == width + 2
    tree_depths = [structural_sweep["tree"][w].depth() for w in WIDTHS]
    assert tree_depths[-1] - tree_depths[0] == 6  # +2 per doubling
    benchmark(lambda: None)


def test_area_depth_tradeoff(structural_sweep, benchmark):
    """Faster topology costs more gates at every width (Fig. 8's moral)."""
    for width in WIDTHS:
        ripple = structural_sweep["ripple"][width]
        tree = structural_sweep["tree"][width]
        # The curves converge at small widths (Fig. 7 shows the same).
        if width >= 16:
            assert tree.depth() < ripple.depth()
        else:
            assert tree.depth() <= ripple.depth()
        assert tree.gate_count() > ripple.gate_count()
    benchmark(lambda: None)


def test_netlists_compute_the_reference_function(structural_sweep, benchmark):
    import random

    rng = random.Random(3)
    for topology in ("ripple", "tree"):
        netlist = structural_sweep[topology][16]
        for _ in range(60):
            mask = rng.getrandbits(16)
            target = rng.randrange(16)
            got = netlist_search(netlist, 16, mask, target)
            want = reference_search(mask, 16, target)
            assert got == (want.primary, want.backup)
    benchmark(lambda: None)
