"""Ablation A1 — branching factor and node-width choices (Section III-A).

The paper chose 3 levels of 16-bit nodes for 12-bit tags and equal node
widths across levels.  This bench quantifies the alternatives:

* the (levels, literal_bits) factorization sweep of the 12-bit space:
  storage (eqs. (2)/(3)) versus search depth versus node-match delay —
  showing why 3x4 sits at the knee;
* equal- vs mixed-width trees: "the total search time will be most
  affected by the search time needed for the widest node";
* the matching-circuit choice inside the full circuit (select &
  look-ahead vs ripple) — cost per node search at each level width.
"""

import pytest

from repro.analysis.sweeps import SweepPoint, render_series
from repro.core.matching import ALL_MATCHERS, SelectLookaheadMatcher
from repro.core.sizing import (
    mixed_width_tree_bits,
    sweep_configurations,
    worst_case_node_searches,
)
from repro.core.tree import MultiBitTree
from repro.core.words import WordFormat


@pytest.fixture(scope="module")
def shapes():
    return sweep_configurations(12)


def test_regenerate_branching_sweep(shapes, report, benchmark):
    lines = [
        "ABLATION A1 (measured) — 12-bit tag-space factorizations",
        f"  {'levels x bits':>14} {'tree bits':>10} {'searches':>9} "
        f"{'match delay':>12} {'total delay':>12}",
    ]
    for budget in shapes:
        fmt = budget.fmt
        match_delay = SelectLookaheadMatcher(
            max(2, fmt.branching_factor)
        ).delay()
        total = match_delay * fmt.levels
        lines.append(
            f"  {fmt.levels:>7} x {fmt.literal_bits:<4} "
            f"{budget.total_bits:>10} {fmt.levels:>9} "
            f"{match_delay:>12.1f} {total:>12.1f}"
        )
    report("\n".join(lines))
    benchmark(lambda: sweep_configurations(12))


def test_paper_shape_is_at_the_knee(shapes, benchmark):
    """3 levels x 4 bits: close to the flat bitmap's storage minimum,
    one third of the binary tree's depth, still single-word nodes."""
    by_shape = {(b.fmt.levels, b.fmt.literal_bits): b for b in shapes}
    paper = by_shape[(3, 4)]
    binary = by_shape[(12, 1)]
    flat = by_shape[(1, 12)]
    assert paper.total_bits < binary.total_bits  # less memory than binary
    assert paper.total_bits < 1.1 * flat.total_bits  # near the flat minimum
    assert worst_case_node_searches(3) == 3  # vs 12 for binary
    # The flat shape would need a 4096-bit node — a single match over it
    # is slower than three 16-bit matches.
    flat_delay = SelectLookaheadMatcher(4096).delay()
    paper_delay = 3 * SelectLookaheadMatcher(16).delay()
    assert paper_delay < flat_delay
    benchmark(lambda: worst_case_node_searches(3))


def test_equal_widths_beat_mixed_widths(report, benchmark):
    """Section III-A: 'the total search time will be most affected by
    the search time needed for the widest node.  If all nodes are equal
    width, all will execute in equal time.'"""
    equal = [16, 16, 16]
    mixed_options = ([8, 32, 16], [4, 32, 32], [32, 16, 8])
    equal_stage = SelectLookaheadMatcher(16).delay()
    lines = [
        "ABLATION A1b (measured) — equal vs mixed node widths",
        f"  {'widths':>14} {'bits':>8} {'slowest stage':>14}",
        f"  {'16/16/16':>14} {mixed_width_tree_bits(equal):>8} "
        f"{equal_stage:>14.1f}",
    ]
    for widths in mixed_options:
        slowest = max(SelectLookaheadMatcher(w).delay() for w in widths)
        lines.append(
            f"  {'/'.join(map(str, widths)):>14} "
            f"{mixed_width_tree_bits(widths):>8} {slowest:>14.1f}"
        )
        # Any mixed shape containing a node wider than 16 bits has a
        # slower pipeline stage than the equal-width tree.
        if max(widths) > 16:
            assert slowest > equal_stage
    report("\n".join(lines))
    benchmark(lambda: mixed_width_tree_bits([8, 32, 16]))


def test_matcher_ablation_in_full_tree(report, benchmark):
    """Swap the matching circuit inside the tree: results identical,
    modeled node-search delay differs by the Fig. 7 ratios."""
    import random

    rng = random.Random(5)
    values = [rng.randrange(4096) for _ in range(200)]
    reference_results = None
    lines = [
        "ABLATION A1c (measured) — matcher choice inside the tree",
        f"  {'matcher':<18} {'delay/node':>10} {'results':>9}",
    ]
    for name, cls in sorted(ALL_MATCHERS.items()):
        tree = MultiBitTree(
            WordFormat(levels=3, literal_bits=4), matcher_factory=cls
        )
        for value in values:
            tree.insert_marker(value)
        results = [tree.closest_at_most(k) for k in range(0, 4096, 131)]
        if reference_results is None:
            reference_results = results
        assert results == reference_results, name
        lines.append(
            f"  {name:<18} {cls(16).delay():>10.1f} {'same':>9}"
        )
    report("\n".join(lines))

    tree = MultiBitTree(WordFormat(levels=3, literal_bits=4))
    for value in values:
        tree.insert_marker(value)
    benchmark(lambda: [tree.closest_at_most(k) for k in range(0, 4096, 131)])
