"""Table II — post-layout synthesis results (estimator substitute).

The real Table II came from Cadence SoC Encounter on UMC 130-nm cells;
we regenerate its *shape* from architecture bit/gate counts and a
130-nm-class technology model:

* memory-dominated area (Fig. 12's floorplan),
* logic-dominated power (Section IV's observation),
* a ~140 MHz clock giving 35.8 Mpps and 40 Gb/s at 140-byte packets,
* the 15-bit variant's 32k-entry translation table cost.
"""

import pytest

from repro.core.sizing import budget_for
from repro.core.words import PAPER_FORMAT
from repro.silicon import estimate_sort_retrieve, render_table, scaling_sweep


@pytest.fixture(scope="module")
def estimate():
    return estimate_sort_retrieve()


def test_regenerate_table2(estimate, report, benchmark):
    report(render_table(estimate))
    benchmark(estimate_sort_retrieve)


def test_architecture_bit_budget(estimate, report, benchmark):
    budget = budget_for(PAPER_FORMAT)
    report(
        "EQ. (2)/(3) STORAGE BUDGET\n"
        f"  register bits (levels 0-1): {budget.register_bits}\n"
        f"  SRAM bits (level 2):        {budget.sram_bits}\n"
        f"  translation entries:        {budget.translation_entries}"
    )
    assert budget.register_bits == 272
    assert budget.sram_bits == 4096
    assert budget.translation_entries == 4096
    benchmark(lambda: budget_for(PAPER_FORMAT))


def test_shape_checks(estimate, benchmark):
    assert estimate.area_memory_mm2 > estimate.area_logic_mm2
    assert estimate.power_logic_mw > estimate.power_memory_mw
    assert 120.0 <= estimate.clock_mhz <= 170.0
    assert estimate.packets_per_second == pytest.approx(35.8e6, rel=0.10)
    assert estimate.line_rate_gbps_at_140b == pytest.approx(40.0, rel=0.10)
    benchmark(lambda: None)


def test_scaling_to_wider_tags(report, benchmark):
    sweep = benchmark(scaling_sweep, (12, 15, 16, 20))
    lines = ["SCALING SWEEP (wider tag formats)"]
    lines.append(
        f"  {'W':>3} {'SRAM kbit':>10} {'area mm^2':>10} {'clock MHz':>10}"
    )
    for bits, est in sweep.items():
        lines.append(
            f"  {bits:>3} {est.sram_bits / 1024:>10.1f} "
            f"{est.area_total_mm2:>10.3f} {est.clock_mhz:>10.1f}"
        )
    report("\n".join(lines))
    assert sweep[15].sram_bits == pytest.approx(
        32 * 1024 * 27, rel=0.5
    )  # 32k entries dominate
    areas = [sweep[b].area_total_mm2 for b in (12, 15, 16, 20)]
    assert areas == sorted(areas)
