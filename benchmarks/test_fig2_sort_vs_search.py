"""Fig. 2 / Section II-C — the sort model versus the search model.

The paper's argument for the sort model: putting the lookup at the input
makes *service* a fixed-cost memory access, while a search-model method
pays a variable lookup at service time, so only its worst case can be
guaranteed.  This bench measures the per-service access-cost
distribution of a sort-model structure (the tree circuit) against two
search-model structures (binary CAM, binning) on the same WFQ-like tag
stream, and reports max/mean service cost plus the variance the paper's
timing argument is about.
"""

import random

import pytest

from repro.baselines import BinaryCAMQueue, BinningQueue, MultiBitTreeQueue
from repro.hwsim.stats import OperationProbe


def drive(queue, operations=600, seed=3):
    """Bursty WFQ-like stream: monotone-ish tags, bursts then drains."""
    rng = random.Random(seed)
    service_costs = []
    base = 0
    for _ in range(operations):
        burst = rng.randrange(1, 6)
        for _ in range(burst):
            base = min(4095, base + rng.randrange(0, 300))
            queue.insert(base)
        drains = rng.randrange(1, burst + 1)
        for _ in range(drains):
            if queue.is_empty:
                break
            before = queue.stats.total
            queue.extract_min()
            service_costs.append(queue.stats.total - before)
        if base >= 4000:
            # restart the tag space (drain fully, like a reset epoch)
            while not queue.is_empty:
                before = queue.stats.total
                queue.extract_min()
                service_costs.append(queue.stats.total - before)
            base = 0
    return service_costs


@pytest.fixture(scope="module")
def service_distributions():
    return {
        "tree (sort model)": drive(MultiBitTreeQueue(capacity=8192)),
        "binary CAM (search model)": drive(BinaryCAMQueue(tag_range=4096)),
        "binning (search model)": drive(
            BinningQueue(tag_range=4096, bin_span=16)
        ),
    }


def summarize(costs):
    mean = sum(costs) / len(costs)
    return {
        "max": max(costs),
        "mean": mean,
        "stdev": (sum((c - mean) ** 2 for c in costs) / len(costs)) ** 0.5,
    }


def test_regenerate_fig2_comparison(service_distributions, report, benchmark):
    lines = ["FIG. 2 / SECTION II-C (measured) — service-time access cost"]
    lines.append(f"  {'structure':<28} {'max':>6} {'mean':>8} {'stdev':>8}")
    for name, costs in service_distributions.items():
        stats = summarize(costs)
        lines.append(
            f"  {name:<28} {stats['max']:>6} {stats['mean']:>8.2f} "
            f"{stats['stdev']:>8.2f}"
        )
    report("\n".join(lines))
    benchmark(lambda: summarize(service_distributions["tree (sort model)"]))


def test_sort_model_service_is_fixed(service_distributions, benchmark):
    """The tree's service cost is a small constant (storage head removal
    plus marker retirement), never a search."""
    tree_costs = service_distributions["tree (sort model)"]
    assert max(tree_costs) <= 16
    benchmark(lambda: max(tree_costs))


def test_search_model_service_is_variable(service_distributions, benchmark):
    """Search-model structures show an order of magnitude more variance
    and far higher worst cases."""
    tree = summarize(service_distributions["tree (sort model)"])
    cam = summarize(service_distributions["binary CAM (search model)"])
    binning = summarize(service_distributions["binning (search model)"])
    assert cam["max"] > 5 * tree["max"]
    assert binning["max"] > 2 * tree["max"]
    assert cam["stdev"] > 5 * tree["stdev"]
    benchmark(lambda: None)


def test_sort_model_moves_cost_to_insert(service_distributions, benchmark):
    """The flip side: tree inserts carry the lookup, but that cost is
    *also* fixed (W/k node reads + the Fig. 9 splice), so the total
    operation is schedulable at a fixed clock count."""
    queue = MultiBitTreeQueue(capacity=8192)
    rng = random.Random(9)
    probe = OperationProbe()
    base = 0
    for _ in range(500):
        base = min(4095, base + rng.randrange(0, 8))
        before = queue.stats.total
        queue.insert(base)
        probe.samples.append(queue.stats.total - before)
    assert probe.worst_case <= 16  # bounded, occupancy-independent
    benchmark(lambda: probe.worst_case)
