"""Ablation A2 — tag quantization granularity in the full system.

The hardware circuit sorts 12-bit quantized tags while exact WFQ uses
real-valued virtual times.  Sweeping the quantum size measures the QoS
cost of quantization — the same *aggregation inaccuracy* axis on which
the paper rejects binning, here applied to its own circuit:

* coarser quanta -> more same-quantum FCFS ties and more behind-minimum
  clamps -> more tag-order inversions;
* long-run weighted bandwidth shares stay intact at every granularity
  (quantization hurts ordering, not conservation);
* too-fine quanta overflow the sequence-number window (span guard).
"""

import pytest

from repro.hwsim.errors import ProtocolError
from repro.net import (
    HardwareWFQSystem,
    out_of_order_service,
    throughput_shares,
    weighted_jain_index,
)
from repro.sched import WFQScheduler, simulate
from repro.traffic import voip_video_data_mix

GRANULARITIES = (512.0, 2048.0, 8192.0, 32768.0)


@pytest.fixture(scope="module")
def scenario():
    return voip_video_data_mix(packets_per_flow=200, seed=17)


@pytest.fixture(scope="module")
def sweep_results(scenario):
    results = {}
    for granularity in GRANULARITIES:
        system = HardwareWFQSystem(
            scenario.rate_bps, granularity=granularity
        )
        for flow_id, weight in scenario.weights.items():
            system.add_flow(flow_id, weight)
        run = simulate(system, scenario.clone_trace())
        results[granularity] = {
            "inversions": out_of_order_service(run),
            "clamped": system.store.clamped_inserts,
            "jain": weighted_jain_index(
                throughput_shares(run), scenario.weights
            ),
        }
    return results


def test_regenerate_granularity_sweep(sweep_results, report, benchmark):
    lines = [
        "ABLATION A2 (measured) — quantization granularity",
        f"  {'quantum':>9} {'inversions':>11} {'clamped':>8} {'jain':>7}",
    ]
    for granularity, row in sweep_results.items():
        lines.append(
            f"  {granularity:>9.0f} {row['inversions']:>11} "
            f"{row['clamped']:>8} {row['jain']:>7.4f}"
        )
    report("\n".join(lines))
    benchmark(lambda: None)


def test_inversions_grow_with_quantum(sweep_results, benchmark):
    finest = sweep_results[GRANULARITIES[0]]["inversions"]
    coarsest = sweep_results[GRANULARITIES[-1]]["inversions"]
    assert coarsest >= finest
    benchmark(lambda: None)


def test_bandwidth_conservation_at_every_quantum(sweep_results, benchmark):
    """Long-run weighted shares barely move across the sweep."""
    indexes = [row["jain"] for row in sweep_results.values()]
    assert max(indexes) - min(indexes) < 0.05
    benchmark(lambda: None)


def test_too_fine_quantum_overflows_window(scenario, benchmark):
    system = HardwareWFQSystem(scenario.rate_bps, granularity=1.0)
    for flow_id, weight in scenario.weights.items():
        system.add_flow(flow_id, weight)
    with pytest.raises(ProtocolError):
        simulate(system, scenario.clone_trace())
    benchmark(lambda: None)


def test_exact_wfq_is_the_zero_quantum_limit(scenario, report, benchmark):
    """The software sorter is the granularity -> 0 reference point."""
    software = WFQScheduler(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        software.add_flow(flow_id, weight)
    run = simulate(software, scenario.clone_trace())
    inversions = out_of_order_service(run)
    report(
        "A2 REFERENCE — exact (float-tag) WFQ\n"
        f"  inversions from late small-tag arrivals alone: {inversions}"
    )
    # Even exact WFQ inverts tag order when smaller tags arrive after
    # service decisions — the baseline any quantized sorter sits above.
    assert inversions >= 0
    benchmark(lambda: out_of_order_service(run))
