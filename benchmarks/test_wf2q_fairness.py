"""Section I-B — "WF²Q ... has better worst case fairness" than WFQ.

The Bennett–Zhang worst-case-fairness experiment, measured: a
half-share flow bursts against ten 5%-share flows; the metric is how far
each flow's *served work* runs ahead of its GPS fluid entitlement.

Shape expectations (asserted):

* WFQ lets the heavy flow run multiple maximum packets ahead of GPS
  (it serves strictly by finishing tags, which front-loads the burst);
* WF²Q's eligibility rule keeps every flow within one maximum packet of
  GPS — the property that made WF²Q worth its extra complexity;
* both stay within the Parekh–Gallager *lag* bound (behind GPS), so the
  improvement is purely on the ahead-of-GPS side.
"""

import pytest

from repro.net import max_gps_lag, worst_work_lead
from repro.sched import (
    GPSFluidSimulator,
    Packet,
    WF2QScheduler,
    WFQScheduler,
    simulate,
)

RATE = 1e6
LMAX_BITS = 1500 * 8
HEAVY_WEIGHT = 0.5
LIGHT_FLOWS = 10


def build(cls):
    scheduler = cls(RATE)
    scheduler.add_flow(0, HEAVY_WEIGHT)
    for flow_id in range(1, LIGHT_FLOWS + 1):
        scheduler.add_flow(flow_id, HEAVY_WEIGHT / LIGHT_FLOWS)
    return scheduler


def burst_trace():
    trace = [Packet(0, 1500, 0.0) for _ in range(20)]
    for flow_id in range(1, LIGHT_FLOWS + 1):
        trace.extend(Packet(flow_id, 1500, 0.0) for _ in range(2))
    return trace


def clone(trace):
    return [
        Packet(p.flow_id, p.size_bytes, p.arrival_time, packet_id=p.packet_id)
        for p in trace
    ]


@pytest.fixture(scope="module")
def fairness_runs():
    trace = burst_trace()
    runs = {}
    for cls in (WFQScheduler, WF2QScheduler):
        gps = GPSFluidSimulator(RATE)
        gps.set_weight(0, HEAVY_WEIGHT)
        for flow_id in range(1, LIGHT_FLOWS + 1):
            gps.set_weight(flow_id, HEAVY_WEIGHT / LIGHT_FLOWS)
        reference = gps.run(clone(trace))
        result = simulate(build(cls), clone(trace))
        runs[cls.name] = {
            "leads": worst_work_lead(result, gps),
            "lag": max_gps_lag(result, reference),
        }
    return runs


def test_regenerate_fairness_comparison(fairness_runs, report, benchmark):
    lines = [
        "WORST-CASE FAIRNESS (measured) — work served ahead of GPS",
        f"  {'policy':<6} {'heavy-flow lead':>16} {'worst lead':>11} "
        f"{'worst lag':>10}",
    ]
    for name, run in fairness_runs.items():
        heavy = run["leads"][0] / LMAX_BITS
        worst = max(run["leads"].values()) / LMAX_BITS
        lines.append(
            f"  {name:<6} {heavy:>13.2f} L {worst:>8.2f} L "
            f"{run['lag'] * 1000:>8.2f}ms"
        )
    lines.append("  (L = one maximum packet of 1500 B)")
    report("\n".join(lines))
    benchmark(lambda: None)


def test_wfq_runs_packets_ahead(fairness_runs, benchmark):
    heavy_lead = fairness_runs["wfq"]["leads"][0]
    assert heavy_lead > 3 * LMAX_BITS
    benchmark(lambda: None)


def test_wf2q_bounded_by_one_packet(fairness_runs, benchmark):
    worst = max(fairness_runs["wf2q"]["leads"].values())
    assert worst <= LMAX_BITS + 1e-6
    benchmark(lambda: None)


def test_both_satisfy_the_lag_bound(fairness_runs, benchmark):
    bound = LMAX_BITS / RATE
    for run in fairness_runs.values():
        assert run["lag"] <= bound + 1e-9
    benchmark(lambda: None)
