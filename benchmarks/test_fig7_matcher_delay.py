"""Fig. 7 — matcher circuit speed (time delay) for different word lengths.

Regenerates the delay curves for all five closest-match circuits over
word widths 8-128 bits.  Shape expectations (asserted):

* ripple is linear and slowest beyond small widths;
* every accelerated circuit beats ripple from 16 bits up;
* select & look-ahead is never beaten at any width and "performs
  exceptionally well over a range of word widths up to 128 bits";
* at 16 bits (the silicon node width) the select & look-ahead delay is
  consistent with the 154 MHz Stratix II measurement class.
"""

import pytest

from repro.analysis.sweeps import SweepPoint, render_series
from repro.core.matching import ALL_MATCHERS, SelectLookaheadMatcher

WIDTHS = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def delay_series():
    return {
        name: [
            SweepPoint(parameter=width, value=cls(width).delay())
            for width in WIDTHS
        ]
        for name, cls in sorted(ALL_MATCHERS.items())
    }


def test_regenerate_fig7(delay_series, report, benchmark):
    report(
        render_series(
            "FIG. 7 (measured) — matcher delay vs word length",
            delay_series,
            unit="unit-gate delays",
        )
    )
    matcher = SelectLookaheadMatcher(16)
    benchmark(matcher.search, 0xA5A5, 11)


def test_ripple_is_linear(delay_series, benchmark):
    ripple = [point.value for point in delay_series["ripple"]]
    for earlier, later in zip(ripple, ripple[1:]):
        assert later / earlier == pytest.approx(2.0, rel=0.25)
    benchmark(lambda: None)


def test_accelerated_beat_ripple(delay_series, benchmark):
    for name, series in delay_series.items():
        if name == "ripple":
            continue
        for ripple_point, point in zip(delay_series["ripple"][1:], series[1:]):
            assert point.value < ripple_point.value, (name, point.parameter)
    benchmark(lambda: None)


def test_select_lookahead_is_never_beaten(delay_series, benchmark):
    select = delay_series["select_lookahead"]
    for name, series in delay_series.items():
        for select_point, point in zip(select, series):
            assert select_point.value <= point.value + 1e-9, (
                name,
                point.parameter,
            )
    benchmark(lambda: None)


def test_16bit_delay_in_154mhz_class(benchmark):
    """Ref [13]: the 16-bit select & look-ahead ran at 154 MHz on
    Stratix II (~6.5 ns).  At ~0.4-0.5 ns per LUT level that is roughly
    13-16 unit delays; the model must land in that class."""
    delay = SelectLookaheadMatcher(16).delay()
    assert 10 <= delay <= 20
    benchmark(lambda: SelectLookaheadMatcher(16).delay())


def test_functional_throughput_of_all_matchers(benchmark):
    """Time one full sweep of every circuit over a 16-bit node."""
    matchers = [cls(16) for cls in ALL_MATCHERS.values()]

    def sweep_all():
        for matcher in matchers:
            for target in range(16):
                matcher.search(0xBEEF, target)

    benchmark(sweep_all)
