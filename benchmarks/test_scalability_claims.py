"""Section IV scalability claims, measured.

* "scalable up to 8 million concurrent sessions (virtual queues)" —
  the per-session state table footprint and its population-independent
  per-packet cost;
* "possible to store and service 30 million packets at any instance" —
  the tag storage scales with external RAM only, leaving the on-chip
  circuit unchanged;
* end-to-end QoS across multiple hops (the deployment the conclusion
  targets, "from access right through to the core"): the composed
  Parekh–Gallager bound measured over WFQ chains.
"""

import pytest

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT
from repro.net.multihop import (
    MultiHopNetwork,
    e2e_delay_bound,
    worst_flow_delay,
)
from repro.net.session_table import SessionStateTable, paper_scale_footprint
from repro.sched import WFQScheduler
from repro.traffic import CBRArrivals, FixedSize, PoissonArrivals, merge
from repro.traffic.packet_sizes import internet_mix

RATE = 10e6
WEIGHTS = {0: 0.2, 1: 0.4, 2: 0.4}


def test_session_scale(report, benchmark):
    footprint = paper_scale_footprint()
    table = SessionStateTable(1 << 14)
    for session in range(1000):
        table.provision(session, 1.0)
    before = table.stats.snapshot()
    table.compute_finish_tag(500, 1120, 0)
    per_packet = table.stats.delta_since(before).total
    report(
        "SESSION SCALABILITY (measured)\n"
        f"  8 M sessions -> {footprint:.0f} MB of state table\n"
        f"  per-packet table accesses: {per_packet} (1 read + 1 write, "
        "session-count independent)"
    )
    assert footprint == pytest.approx(64.0)
    assert per_packet == 2
    benchmark(lambda: table.compute_finish_tag(1, 1120, 0))


def test_tag_storage_scales_with_ram_only(report, benchmark):
    small = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=1024)
    large = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=1 << 20)
    report(
        "TAG STORAGE SCALING (measured)\n"
        f"  1k-link circuit:   translation {small.translation.entries} "
        f"entries, tree {small.tree.total_stats().total} accesses\n"
        f"  1M-link circuit:   translation {large.translation.entries} "
        "entries (identical on-chip structures)\n"
        "  capacity lives entirely in external RAM (Section III-C)"
    )
    assert small.translation.entries == large.translation.entries
    # A 2-Gbit RLDRAM bank of 74-bit links holds ~29M packets: the
    # Section IV claim is a RAM-sizing statement, not a circuit one.
    links_per_2gbit = 2048 * 1024 * 1024 // 74
    assert links_per_2gbit > 29e6
    benchmark(lambda: TagSortRetrieveCircuit(PAPER_FORMAT, capacity=4096))


def wfq_factory():
    scheduler = WFQScheduler(RATE)
    for flow_id, weight in WEIGHTS.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


def build_trace(packets_per_flow=100, seed=9):
    streams = [
        CBRArrivals(
            0, WEIGHTS[0] * RATE * 0.9 / (200 * 8), FixedSize(200), seed=seed
        ).packets(packets_per_flow)
    ]
    for flow_id in (1, 2):
        streams.append(
            PoissonArrivals(
                flow_id,
                WEIGHTS[flow_id] * RATE * 0.9 / (internet_mix().mean() * 8),
                internet_mix(),
                seed=seed,
            ).packets(packets_per_flow)
        )
    return merge(streams)


def test_end_to_end_bounds_across_hops(report, benchmark):
    trace = build_trace()
    lines = [
        "END-TO-END DELAY ACROSS WFQ HOPS (measured)",
        f"  {'hops':>5} {'worst e2e delay':>16} {'PG bound':>10} "
        f"{'within':>7}",
    ]
    for hops in (1, 2, 4):
        records = MultiHopNetwork([wfq_factory] * hops).run(trace)
        measured = worst_flow_delay(records, 0)
        bound = e2e_delay_bound(
            hops=hops,
            rate_bps=RATE,
            guaranteed_rate_bps=WEIGHTS[0] * RATE,
            burst_bits=200 * 8,
            packet_bytes=200,
        )
        lines.append(
            f"  {hops:>5} {measured * 1000:>14.3f}ms "
            f"{bound * 1000:>8.3f}ms {'yes' if measured <= bound else 'NO':>7}"
        )
        assert measured <= bound + 1e-9
    report("\n".join(lines))
    benchmark(
        lambda: MultiHopNetwork([wfq_factory]).run(
            build_trace(packets_per_flow=40)
        )
    )
