"""Shared helpers for the benchmark harness.

Every module regenerates one table or figure of the paper; the measured
rows/series are printed (run with ``-s`` to see them) and the headline
operation of each experiment is timed through pytest-benchmark.
"""

import pytest


def emit(text: str) -> None:
    """Print a regenerated table/figure block, clearly delimited."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


@pytest.fixture
def report():
    """The emit helper as a fixture."""
    return emit
