"""Section I-B / II QoS claims — fair queueing vs the round-robin family.

The paper's case for WFQ over round robin:

* "WFQ outperforms round robin because it approximates GPS within one
  packet transmission time regardless of the arrival patterns" — checked
  via the Parekh–Gallager bound;
* "the principal drawback for a typical round robin approach is that it
  cannot provide for effective bounded delays" — the worst delay of a
  light flow under DRR grows with the number of competing flows, while
  WFQ's stays rate-determined;
* round robin (WRR) misallocates bandwidth for variable packet sizes.
"""

import pytest

from repro.net import gps_lag, max_gps_lag, per_flow_delays
from repro.sched import (
    DRRScheduler,
    GPSFluidSimulator,
    MDRRScheduler,
    Packet,
    SRRScheduler,
    WF2QScheduler,
    WFQScheduler,
    WRRScheduler,
    simulate,
)
from repro.traffic import voip_video_data_mix

RATE = 1e6


def light_flow_worst_delay(scheduler_factory, competitor_count):
    """Worst delay of a 10%-share flow against N bulk competitors."""
    scheduler = scheduler_factory()
    scheduler.add_flow(0, 0.1)
    share = 0.9 / competitor_count
    for flow_id in range(1, competitor_count + 1):
        scheduler.add_flow(flow_id, share)
    trace = []
    # Bulk competitors: continuously backlogged with max-size packets.
    for flow_id in range(1, competitor_count + 1):
        for _ in range(12):
            trace.append(Packet(flow_id, 1500, 0.0))
    # The light flow sends small packets spread over the busy period.
    for index in range(10):
        trace.append(Packet(0, 100, index * 0.01))
    result = simulate(scheduler, trace)
    return per_flow_delays(result)[0].worst


@pytest.fixture(scope="module")
def delay_growth():
    flow_counts = (4, 16, 48)
    growth = {}
    for name, factory in (
        ("wfq", lambda: WFQScheduler(RATE)),
        ("wf2q", lambda: WF2QScheduler(RATE)),
        ("drr", lambda: DRRScheduler(RATE)),
    ):
        growth[name] = [
            light_flow_worst_delay(factory, n) for n in flow_counts
        ]
    return flow_counts, growth


def test_regenerate_delay_bound_table(delay_growth, report, benchmark):
    flow_counts, growth = delay_growth
    lines = [
        "QOS DELAY BOUNDS (measured) — worst delay of a 10%-share flow",
        f"  {'competitors':>12} " + " ".join(f"{n:>10}" for n in flow_counts),
    ]
    for name, delays in growth.items():
        lines.append(
            f"  {name:>12} "
            + " ".join(f"{d * 1000:>8.2f}ms" for d in delays)
        )
    report("\n".join(lines))
    benchmark(lambda: light_flow_worst_delay(lambda: WFQScheduler(RATE), 4))


def test_rr_delay_grows_with_flows_fq_does_not(delay_growth, benchmark):
    flow_counts, growth = delay_growth
    drr_growth = growth["drr"][-1] / growth["drr"][0]
    wfq_growth = growth["wfq"][-1] / max(growth["wfq"][0], 1e-9)
    assert drr_growth > 3.0  # round-trip of the whole round
    assert wfq_growth < 2.0  # rate-determined, flow-count independent
    assert growth["wfq"][-1] < growth["drr"][-1]
    assert growth["wf2q"][-1] < growth["drr"][-1]
    benchmark(lambda: None)


def test_pg_bound_on_realistic_mix(report, benchmark):
    scenario = voip_video_data_mix(packets_per_flow=200, seed=21)
    scheduler = WFQScheduler(scenario.rate_bps)
    gps = GPSFluidSimulator(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        scheduler.add_flow(flow_id, weight)
        gps.set_weight(flow_id, weight)
    result = simulate(scheduler, scenario.clone_trace())
    reference = gps.run(scenario.clone_trace())
    worst = max_gps_lag(result, reference)
    bound = 1500 * 8 / scenario.rate_bps
    report(
        "PAREKH-GALLAGER CHECK (measured)\n"
        f"  worst lag behind GPS: {worst * 1e6:.1f} us\n"
        f"  L_max/r bound:        {bound * 1e6:.1f} us\n"
        f"  bound satisfied:      {worst <= bound + 1e-9}"
    )
    assert worst <= bound + 1e-9
    benchmark(lambda: max_gps_lag(result, reference))


def test_wrr_misallocates_variable_sizes(report, benchmark):
    """Equal-weight flows, 15x different packet sizes."""

    def shares_for(scheduler):
        trace = [Packet(0, 1500, 0.0) for _ in range(60)]
        trace += [Packet(1, 100, 0.0) for _ in range(600)]
        result = simulate(scheduler, trace)
        bits = {0: 0, 1: 0}
        horizon = result.finish_time / 2
        for packet in result.packets:
            if packet.departure_time <= horizon:
                bits[packet.flow_id] += packet.size_bits
        return bits[0] / max(bits[1], 1)

    wrr = WRRScheduler(RATE, mean_packet_bytes=500)
    wrr.add_flow(0, 1.0)
    wrr.add_flow(1, 1.0)
    wfq = WFQScheduler(RATE)
    wfq.add_flow(0, 0.5)
    wfq.add_flow(1, 0.5)
    wrr_ratio = shares_for(wrr)
    wfq_ratio = shares_for(wfq)
    report(
        "VARIABLE-SIZE FAIRNESS (measured) — equal weights, 1500B vs 100B\n"
        f"  WRR bandwidth ratio: {wrr_ratio:.1f}x (should be 1.0)\n"
        f"  WFQ bandwidth ratio: {wfq_ratio:.2f}x"
    )
    assert wrr_ratio > 5.0
    assert wfq_ratio == pytest.approx(1.0, rel=0.25)
    benchmark(lambda: None)


def test_mdrr_helps_one_class_srr_limits_classes(report, benchmark):
    """MDRR protects exactly one priority queue; SRR supports only tens
    of weight classes (vs the circuit's 4096 distinct tag values)."""
    mdrr = MDRRScheduler(RATE, priority_flow=0, strict=True)
    mdrr.add_flow(1, 0.5)
    mdrr.add_flow(2, 0.5)
    trace = [Packet(1, 1500, 0.0) for _ in range(20)]
    trace += [Packet(2, 1500, 0.0) for _ in range(20)]
    trace += [Packet(0, 100, 0.001)]
    result = simulate(mdrr, trace)
    voip_delay = [p for p in result.packets if p.flow_id == 0][0].delay
    bulk_delays = [p.delay for p in result.packets if p.flow_id != 0]
    assert voip_delay < sorted(bulk_delays)[len(bulk_delays) // 4]

    srr = SRRScheduler(RATE, max_classes=32)
    from repro.hwsim.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        srr.add_flow(0, 2.0**-40)  # finer than the class stratification
    report(
        "MDRR/SRR LIMITS (measured)\n"
        f"  MDRR priority-packet delay: {voip_delay * 1000:.2f} ms "
        f"(bulk median {sorted(bulk_delays)[len(bulk_delays) // 2] * 1000:.2f} ms)\n"
        "  SRR: weights below 2^-32 rejected (tens of classes only)"
    )
    benchmark(lambda: None)
