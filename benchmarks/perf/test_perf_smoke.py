"""Smoke coverage for the perf-regression harness.

Runs the suite's smoke preset end to end — every matcher variant, every
word-format size, and the headline mixed soak with its served-order
equivalence assertion — then exercises the baseline write/check round
trip exactly as CI invokes it (``python -m repro bench --smoke`` /
``--check``).
"""

import json

from repro.bench.perf import check_against_baseline, main, run_bench
from repro.core.matching import ALL_MATCHERS


def test_smoke_preset_structure(report):
    document = run_bench(preset="smoke", seed=7)
    assert document["preset"] == "smoke"
    names = [scenario["name"] for scenario in document["scenarios"]]
    for matcher in ALL_MATCHERS:
        assert f"insert_per_op:matcher={matcher}" in names
        assert f"insert_batch:matcher={matcher}" in names
    for label in ("w8", "w12", "w16"):
        assert f"dequeue_batch:size={label}" in names
    for scenario in document["scenarios"]:
        assert scenario["ops"] > 0
        assert scenario["ops_per_second"] > 0
        assert scenario["accesses_per_op"] > 0
        # Every circuit operation costs exactly FIXED_OP_CYCLES.
        assert scenario["cycles_per_op"] == 4.0
    headline = document["headline"]
    assert headline["served_orders_identical"] is True
    assert headline["per_op"]["ops"] == headline["batched"]["ops"]
    report(
        f"smoke headline speedup: {headline['speedup']}x "
        f"({headline['batched']['ops_per_second']:,.0f} ops/s batched)"
    )


def test_batched_paths_amortize_accesses():
    """The machine-independent win: fewer memory accesses per insert."""
    document = run_bench(preset="smoke", seed=11)
    by_name = {s["name"]: s for s in document["scenarios"]}
    for label in ("w8", "w12", "w16"):
        per_op = by_name[f"insert_per_op:size={label}"]
        batch = by_name[f"insert_batch:size={label}"]
        assert batch["accesses_per_op"] < per_op["accesses_per_op"]


def test_check_round_trip(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    assert main(["--smoke", "--output", str(baseline_path)]) == 0
    assert baseline_path.exists()
    document = json.loads(baseline_path.read_text())
    assert document["schema"] == 1
    assert main(["--smoke", "--check", "--output", str(baseline_path)]) == 0


def test_check_flags_access_growth():
    document = run_bench(preset="smoke", seed=3)
    inflated = json.loads(json.dumps(document))
    inflated["scenarios"][0]["accesses_per_op"] *= 2
    degraded = check_against_baseline(document, inflated)
    assert not degraded  # current run is *better*: no complaint
    regressed = check_against_baseline(inflated, document)
    assert any("accesses_per_op" in problem for problem in regressed)


def test_check_flags_missing_scenario_and_preset_mismatch():
    document = run_bench(preset="smoke", seed=3)
    pruned = json.loads(json.dumps(document))
    dropped = pruned["scenarios"].pop(0)
    problems = check_against_baseline(pruned, document)
    assert any(dropped["name"] in problem for problem in problems)
    mismatched = json.loads(json.dumps(document))
    mismatched["preset"] = "full"
    problems = check_against_baseline(document, mismatched)
    assert any("preset" in problem for problem in problems)
