"""Smoke coverage for the perf-regression harness.

Runs the suite's smoke preset end to end — every matcher variant, every
word-format size, and the headline mixed soak with its served-order
equivalence assertion — then exercises the baseline write/check round
trip exactly as CI invokes it (``python -m repro bench --smoke`` /
``--check``), and measures that the *disabled* telemetry layer stays
within 5% of the uninstrumented hot path.
"""

import contextlib
import gc
import json
import time


@contextlib.contextmanager
def _quiesced_gc():
    """Collect pending garbage, then time with the collector off.

    Earlier tests in the session leave survivors behind; a gen-2
    collection landing inside a timed loop inflates that reading by far
    more than the 5% bounds below measure.  Like ``timeit``, the gates
    sample with GC disabled so only the code under test is on the clock.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

from repro.bench.perf import (
    _sorted_tags,
    check_against_baseline,
    machine_mismatch_warnings,
    main,
    run_bench,
)
from repro.core.matching import ALL_MATCHERS
from repro.core.matching.base import MatchResult
from repro.core.sort_retrieve import ServedTag, TagSortRetrieveCircuit
from repro.core.tree import SearchOutcome
from repro.core.words import PAPER_FORMAT
from repro.obs.events import TraceEvent


def test_smoke_preset_structure(report):
    document = run_bench(preset="smoke", seed=7)
    assert document["preset"] == "smoke"
    names = [scenario["name"] for scenario in document["scenarios"]]
    for matcher in ALL_MATCHERS:
        assert f"insert_per_op:matcher={matcher}" in names
        assert f"insert_batch:matcher={matcher}" in names
    for label in ("w8", "w12", "w16"):
        assert f"dequeue_batch:size={label}" in names
    for scenario in document["scenarios"]:
        assert scenario["ops"] > 0
        assert scenario["ops_per_second"] > 0
        assert scenario["accesses_per_op"] > 0
        if scenario.get("shards", 1) > 1:
            # Fabric scenarios report makespan cycles: parallel shards
            # amortize the fixed cost below 4 cycles per op.
            assert 0 < scenario["cycles_per_op"] < 4.0
        elif scenario["name"].endswith(":dynamic"):
            # Timer-churn removals pay the fixed cost plus one cycle
            # per duplicate-run read beyond the unlink window.
            assert scenario["cycles_per_op"] >= 4.0
        else:
            # Every circuit operation costs exactly FIXED_OP_CYCLES.
            assert scenario["cycles_per_op"] == 4.0
    headline = document["headline"]
    assert headline["served_orders_identical"] is True
    assert headline["per_op"]["ops"] == headline["batched"]["ops"]
    turbo = document["turbo"]
    assert turbo["served_orders_identical"] is True
    assert turbo["accounting_identical"] is True
    # Exact parity: the turbo engine's per-op accounting is the gate
    # engine's, to the fourth decimal the document rounds to.
    for metric in ("accesses_per_op", "cycles_per_op"):
        assert turbo["turbo_per_op"][metric] == turbo["gate_per_op"][metric]
        assert turbo["turbo_batched"][metric] == turbo["gate_batched"][metric]
    assert turbo["head_cache_hits"] >= 0
    assert document["mode"] == "gate"
    machine = document["machine"]
    assert machine["python"] and machine["platform"]
    assert machine["cpu_count"] >= 1
    assert machine["calibration_ops_per_second"] > 0
    report(
        f"smoke headline speedup: {headline['speedup']}x "
        f"({headline['batched']['ops_per_second']:,.0f} ops/s batched); "
        f"turbo {turbo['speedup']}x over gate per-op"
    )


def test_batched_paths_amortize_accesses():
    """The machine-independent win: fewer memory accesses per insert."""
    document = run_bench(preset="smoke", seed=11)
    by_name = {s["name"]: s for s in document["scenarios"]}
    for label in ("w8", "w12", "w16"):
        per_op = by_name[f"insert_per_op:size={label}"]
        batch = by_name[f"insert_batch:size={label}"]
        assert batch["accesses_per_op"] < per_op["accesses_per_op"]


def test_check_round_trip(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    assert main(["--smoke", "--output", str(baseline_path)]) == 0
    assert baseline_path.exists()
    document = json.loads(baseline_path.read_text())
    assert document["schema"] == 6
    # since schema 3 the forensic reference trace sits beside the baseline
    assert (tmp_path / "baseline.trace.jsonl").exists()
    assert main(["--smoke", "--check", "--output", str(baseline_path)]) == 0


def test_check_flags_access_growth():
    document = run_bench(preset="smoke", seed=3)
    inflated = json.loads(json.dumps(document))
    inflated["scenarios"][0]["accesses_per_op"] *= 2
    degraded = check_against_baseline(document, inflated)
    assert not degraded  # current run is *better*: no complaint
    regressed = check_against_baseline(inflated, document)
    assert any("accesses_per_op" in problem for problem in regressed)


def test_check_flags_missing_scenario_and_preset_mismatch():
    document = run_bench(preset="smoke", seed=3)
    pruned = json.loads(json.dumps(document))
    dropped = pruned["scenarios"].pop(0)
    problems = check_against_baseline(pruned, document)
    assert any(dropped["name"] in problem for problem in problems)
    mismatched = json.loads(json.dumps(document))
    mismatched["preset"] = "full"
    problems = check_against_baseline(document, mismatched)
    assert any("preset" in problem for problem in problems)
    cross_mode = json.loads(json.dumps(document))
    cross_mode["mode"] = "turbo"
    problems = check_against_baseline(document, cross_mode)
    assert any("mode" in problem for problem in problems)


def test_machine_header_warns_not_fails():
    """A cross-machine comparison warns; it never lands in problems."""
    document = run_bench(preset="smoke", seed=3)
    moved = json.loads(json.dumps(document))
    moved["machine"]["platform"] = "somewhere-else"
    moved["machine"]["cpu_count"] = (document["machine"]["cpu_count"] or 0) + 1
    assert not check_against_baseline(document, moved)
    warnings = machine_mismatch_warnings(document, moved)
    assert any("platform" in w for w in warnings)
    assert any("cpu_count" in w for w in warnings)
    assert not machine_mismatch_warnings(document, document)


def _wall_doc(ops_per_second, calibration):
    """A minimal schema-5 document with one long-enough timed scenario."""
    return {
        "preset": "smoke",
        "mode": "gate",
        "machine": {"calibration_ops_per_second": calibration},
        "scenarios": [
            {
                "name": "mixed_per_op:synthetic",
                "ops": 100_000,
                "seconds": 1.0,
                "ops_per_second": ops_per_second,
                "accesses_per_op": 7.0,
                "cycles_per_op": 4.0,
            }
        ],
    }


def test_check_normalizes_wall_floors_by_machine_speed():
    """Same code on a slower machine state passes; a genuine code
    regression fails even when the machine got faster."""
    baseline = _wall_doc(100_000.0, calibration=1_000_000.0)

    # Host uniformly 40% slower: throughput and calibration drop together.
    slow_machine = _wall_doc(60_000.0, calibration=600_000.0)
    assert not check_against_baseline(slow_machine, baseline)

    # Code 40% slower, machine unchanged: still a regression.
    code_regression = _wall_doc(60_000.0, calibration=1_000_000.0)
    problems = check_against_baseline(code_regression, baseline)
    assert any("fell" in p for p in problems)

    # A faster machine must not mask a code regression: raw throughput
    # is within tolerance, but normalized it is 40% down.
    masked = _wall_doc(90_000.0, calibration=1_500_000.0)
    problems = check_against_baseline(masked, baseline)
    assert any("machine-normalized" in p for p in problems)

    # Pre-calibration baselines (no score) fall back to raw comparison,
    # so a slow machine state is indistinguishable from a regression.
    legacy = _wall_doc(100_000.0, calibration=None)
    legacy["machine"] = {}
    assert check_against_baseline(slow_machine, legacy)
    assert check_against_baseline(code_regression, legacy)


def test_machine_speed_warning_on_large_calibration_shift():
    document = run_bench(preset="smoke", seed=3)
    shifted = json.loads(json.dumps(document))
    shifted["machine"]["calibration_ops_per_second"] = (
        document["machine"]["calibration_ops_per_second"] * 3
    )
    warnings = machine_mismatch_warnings(document, shifted)
    assert any("renormalized" in w for w in warnings)


def test_distributions_block_present_and_sane():
    document = run_bench(preset="smoke", seed=5)
    distributions = document["distributions"]
    for phase in ("insert", "dequeue"):
        summary = distributions[phase]
        assert summary["count"] > 0
        assert summary["p50"] <= summary["p99"] <= summary["max"]
    mixed = distributions["mixed"]
    for name in ("op_accesses", "occupancy", "free_list_depth"):
        assert mixed[name]["count"] > 0
    # Every mixed op touches memory, so the access floor is positive.
    assert mixed["op_accesses"]["min"] > 0


def test_hot_records_are_slotted(report):
    """The hot per-op record types carry no per-instance ``__dict__``.

    Also measures what the slots buy: allocation throughput of the
    slotted :class:`SearchOutcome` against a ``__dict__``-backed
    stand-in with the same fields (reported, not asserted — the win is
    machine-dependent; the structural property is the contract).
    """
    samples = (
        MatchResult(3, 1),
        SearchOutcome(key=5, result=5),
        ServedTag(tag=1, payload=None, address=0),
        TraceEvent(0, "insert", "insert"),
    )
    for instance in samples:
        assert not hasattr(instance, "__dict__"), type(instance).__name__

    class DictOutcome:  # the shape SearchOutcome would have un-slotted
        def __init__(self, key, result):
            self.key = key
            self.result = result
            self.exact = False
            self.used_backup = False
            self.fail_level = None
            self.path_literals = []
            self.sequential_node_reads = 0
            self.parallel_node_reads = 0

    count = 20_000

    def alloc_loop(factory):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for i in range(count):
                factory(key=i, result=i)
            best = min(best, time.perf_counter() - start)
        return best

    slotted = alloc_loop(SearchOutcome)
    dict_backed = alloc_loop(DictOutcome)
    report(
        f"slotted SearchOutcome alloc: {slotted * 1e6:.0f}us vs "
        f"{dict_backed * 1e6:.0f}us dict-backed for {count} allocs "
        f"({dict_backed / slotted:.2f}x)"
    )


def _time_inserts_once(invoke, circuit_factory, tags):
    """Process-CPU time for one insert loop shape (fresh circuit each
    run so tree state is identical across shapes)."""
    circuit = circuit_factory()
    start = time.process_time()
    for tag in tags:
        invoke(circuit, tag)
    return time.process_time() - start


def test_disabled_tracer_overhead(report):
    """The acceptance bound: tracing off must cost <5% on the hot path.

    Structurally, an untraced circuit has no instance-level wrappers, so
    ``circuit.insert`` resolves to the exact class method; the measured
    check then compares instance dispatch against a direct class call
    (the pre-telemetry code path) on identical workloads.
    """
    fmt = PAPER_FORMAT
    count = 2_000
    tags = _sorted_tags(fmt, count, seed=13)

    circuit = TagSortRetrieveCircuit(fmt, capacity=count)
    assert not circuit.tracer.enabled
    # No traced wrappers shadowing the class hot paths.
    for name in ("insert", "dequeue_min", "insert_batch", "dequeue_batch"):
        assert name not in vars(circuit)

    def fresh():
        return TagSortRetrieveCircuit(fmt, capacity=count)

    # Same discipline as test_live_plane_overhead: judge on process CPU
    # time, interleave the two shapes pairwise, and compare best-of-k
    # floors — noise only ever inflates a reading, so the minimum
    # converges to the true cost, and a real regression raises the
    # instance floor itself.  Stop sampling once the floors settle
    # under the bound.
    via_instance = via_class = float("inf")
    with _quiesced_gc():
        for pair in range(10):
            via_instance = min(
                via_instance,
                _time_inserts_once(
                    lambda c, tag: c.insert(tag), fresh, tags
                ),
            )
            via_class = min(
                via_class,
                _time_inserts_once(
                    lambda c, tag: TagSortRetrieveCircuit.insert(c, tag),
                    fresh,
                    tags,
                ),
            )
            if pair >= 3 and via_instance / via_class < 1.05:
                break
    ratio = via_instance / via_class
    report(
        f"disabled-tracer insert overhead: {ratio:.3f}x "
        f"({via_instance * 1e6:.0f}us vs {via_class * 1e6:.0f}us "
        f"for {count} ops)"
    )
    assert ratio < 1.05


def test_live_plane_overhead(report, tmp_path):
    """The live observability plane costs <5% over an equivalent
    traced+monitored soak.

    The hot path gains only two extra tracer observers (flight-recorder
    ring append, serve-stream auditor); the collector and HTTP server
    live on their own threads and never touch the driving loop.
    """
    from repro.obs.runner import run_traced_soak

    ops = 15_000

    def timed(**kwargs):
        start = time.process_time()
        run_traced_soak(ops=ops, monitor=True, **kwargs)
        return time.process_time() - start

    live_kwargs = dict(
        serve_port=0,
        live_interval=0.2,
        flight_path=str(tmp_path / "flight.jsonl"),
    )
    # Overhead is judged on *process CPU time*, not wall clock: the
    # plane's threads bill their cycles to the process, so extra work
    # still shows up, while co-tenant load on a shared runner does not.
    # Baseline and live runs interleave pairwise and the gate compares
    # best-of-k floors — CPU noise (frequency scaling, cache
    # contention) only ever inflates a reading, so the minimum
    # converges to the true cost as k grows.  Sampling stops once the
    # floors settle under the bound; a real regression raises the live
    # floor itself, which no amount of resampling pulls back down.
    baseline = live = float("inf")
    with _quiesced_gc():
        for pair in range(10):
            baseline = min(baseline, timed())
            live = min(live, timed(**live_kwargs))
            if pair >= 3 and live / baseline < 1.05:
                break
    ratio = live / baseline
    report(
        f"live-plane soak overhead: {ratio:.3f}x "
        f"({live * 1e3:.0f}ms vs {baseline * 1e3:.0f}ms CPU "
        f"for {ops} monitored ops)"
    )
    assert ratio < 1.05
