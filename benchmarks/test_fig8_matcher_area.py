"""Fig. 8 — matcher circuit area cost (FPGA LUTs) for different word
lengths.

Regenerates the area curves for all five circuits.  Shape expectations
(asserted):

* every curve grows monotonically with width;
* the plain ripple chain is the cheapest logic;
* select & look-ahead is the cheapest *accelerated* option (ref. [13]:
  "the fastest and most hardware efficient option available");
* the two-level block look-ahead is the most expensive.
"""

import pytest

from repro.analysis.sweeps import SweepPoint, render_series
from repro.core.matching import ALL_MATCHERS

WIDTHS = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def area_series():
    return {
        name: [
            SweepPoint(parameter=width, value=cls(width).area_luts())
            for width in WIDTHS
        ]
        for name, cls in sorted(ALL_MATCHERS.items())
    }


def test_regenerate_fig8(area_series, report, benchmark):
    report(
        render_series(
            "FIG. 8 (measured) — matcher area vs word length",
            area_series,
            unit="equivalent 4-input LUTs",
        )
    )
    benchmark(
        lambda: {
            name: cls(64).area_luts() for name, cls in ALL_MATCHERS.items()
        }
    )


def test_all_curves_monotone(area_series, benchmark):
    for name, series in area_series.items():
        values = [point.value for point in series]
        assert values == sorted(values), name
    benchmark(lambda: None)


def test_ripple_cheapest_overall(area_series, benchmark):
    for name, series in area_series.items():
        if name == "ripple":
            continue
        for ripple_point, point in zip(area_series["ripple"], series):
            assert ripple_point.value <= point.value, name
    benchmark(lambda: None)


def test_select_cheapest_accelerated(area_series, benchmark):
    select = area_series["select_lookahead"]
    for name, series in area_series.items():
        if name in ("ripple", "select_lookahead"):
            continue
        for select_point, point in zip(select, series):
            assert select_point.value <= point.value, name
    benchmark(lambda: None)


def test_block_lookahead_most_expensive(area_series, benchmark):
    block = area_series["block_lookahead"]
    for name, series in area_series.items():
        for block_point, point in zip(block, series):
            assert block_point.value >= point.value, name
    benchmark(lambda: None)
