"""Direct checks of the paper's headline claims, end to end.

Each test names the claim it reproduces; EXPERIMENTS.md records the
measured values.
"""

import random

import pytest

from repro.baselines import (
    BinaryCAMQueue,
    BinningQueue,
    MultiBitTreeQueue,
    SortedLinkedListQueue,
    TernaryCAMQueue,
)
from repro.analysis.complexity import measure_method
from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT
from repro.hwsim.stats import OperationProbe
from repro.silicon import estimate_sort_retrieve


class TestFixedTimeClaim:
    """'high speed tag retrieval in a guaranteed fixed time'"""

    def test_dequeue_cost_is_occupancy_independent(self):
        circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=4096)
        rng = random.Random(1)
        costs = {}
        for population in (16, 256, 2048):
            circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=4096)
            base = 0
            for _ in range(population):
                base = min(base + rng.randrange(3), 4095)
                circuit.insert(base)
            probe = OperationProbe()
            for _ in range(10):
                with probe.operation(circuit.storage.stats):
                    circuit.dequeue_min()
            costs[population] = probe.worst_case
        assert costs[16] == costs[256] == costs[2048]

    def test_insert_search_depth_is_occupancy_independent(self):
        rng = random.Random(2)
        depths = {}
        for population in (16, 256, 2048):
            circuit = TagSortRetrieveCircuit(
                PAPER_FORMAT, capacity=4096, eager_marker_removal=True
            )
            for _ in range(population):
                circuit.insert(rng.randrange(4096))
            outcome = circuit.tree.search(rng.randrange(4096))
            depths[population] = outcome.sequential_node_reads
        assert max(depths.values()) <= PAPER_FORMAT.levels


class TestLowestTagAlwaysFound:
    """'the ability to guarantee that the lowest tag value will always
    be found'"""

    def test_min_is_always_exact(self):
        rng = random.Random(3)
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=512, eager_marker_removal=True
        )
        shadow = []
        for _ in range(1500):
            if shadow and rng.random() < 0.5:
                shadow.sort()
                expected = shadow.pop(0)
                assert circuit.dequeue_min().tag == expected
            else:
                value = rng.randrange(4096)
                circuit.insert(value)
                shadow.append(value)
            if shadow:
                assert circuit.peek_min() == min(shadow)


class TestTableIOrdering:
    """Tree < TCAM < CAM/binning/list in worst-case accesses."""

    @pytest.fixture(scope="class")
    def measurements(self):
        population = 1024
        queues = {
            "tree": MultiBitTreeQueue(capacity=4096),
            "tcam": TernaryCAMQueue(word_bits=12),
            "cam": BinaryCAMQueue(tag_range=4096),
            "binning": BinningQueue(tag_range=4096, bin_span=16),
            "list": SortedLinkedListQueue(),
        }
        return {
            name: measure_method(
                queue,
                population=population,
                tag_range=4096,
                seed=5,
                workload="adversarial_high",
            )
            for name, queue in queues.items()
        }

    def test_tree_lookup_beats_tcam_by_branching_factor(self):
        """Table I's tree row: lookup = W/k sequential node reads, a
        branching-factor (k=4 -> 4x) improvement over the TCAM's W
        probes."""
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=64, eager_marker_removal=True
        )
        for value in (100, 2000, 4000):
            circuit.insert(value)
        outcome = circuit.tree.search(3000)
        tcam_probes = PAPER_FORMAT.word_bits  # 12
        assert outcome.sequential_node_reads == PAPER_FORMAT.levels  # 3
        assert outcome.sequential_node_reads * 4 == tcam_probes

    def test_tree_beats_population_bound_methods(self, measurements):
        tree = measurements["tree"].worst_total
        for name in ("cam", "binning", "list"):
            assert tree < measurements[name].worst_total, name

    def test_search_models_pay_at_service_time(self, measurements):
        """Sort-model methods do their work on insert; search-model
        methods pay the variable cost exactly when the scheduler can
        least afford it — at service time."""
        assert measurements["list"].worst_extract <= 2  # sort model
        assert measurements["cam"].worst_extract > 1000  # ~tag range
        assert measurements["binning"].worst_extract > 100  # ~bin count

    def test_width_methods_beat_population_methods(self, measurements):
        """TCAM and tree (O(W)-class) beat list/CAM (O(N)/O(R)-class)."""
        assert measurements["tcam"].worst_total < measurements["cam"].worst_total
        assert measurements["tcam"].worst_total < measurements["list"].worst_total


class TestScalabilityClaims:
    """Section IV: 'scalable up to 8 million concurrent sessions',
    '30 million packets at any instance' via external SRAM sizing."""

    def test_tag_storage_scales_with_ram_not_tree(self):
        """The linked list capacity is set by RAM size alone; the tree
        and translation table are unchanged."""
        small = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=64)
        large = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=65536)
        assert small.translation.entries == large.translation.entries
        assert (
            small.tree.total_stats().total == large.tree.total_stats().total
        )

    def test_granularity_and_capacity_independent(self):
        """'The tag storage memory and the tag sort/retrieve circuit are
        independently scalable and configurable.'"""
        from repro.core.words import WordFormat

        fine_fmt = WordFormat(levels=4, literal_bits=4)  # 16-bit tags
        circuit = TagSortRetrieveCircuit(fine_fmt, capacity=128)
        assert circuit.translation.entries == 65536
        assert circuit.storage.capacity == 128


class TestSiliconClaims:
    def test_40gbps_claim_chain(self):
        """clock -> Mpps -> Gb/s at 140-byte packets reproduces 40 Gb/s."""
        estimate = estimate_sort_retrieve()
        mpps = estimate.clock_mhz / 4
        gbps = mpps * 1e6 * 140 * 8 / 1e9
        assert gbps == pytest.approx(estimate.line_rate_gbps_at_140b, rel=0.01)
        assert gbps > 35.0  # an order above the 2.5 Gb/s per-channel IP layer

    def test_order_of_magnitude_over_industry(self):
        """'supports line speeds of 40 Gb/s, which is an order of
        magnitude greater than emerging industry standards' (2.5-5 Gb/s
        network-layer products)."""
        estimate = estimate_sort_retrieve()
        assert estimate.line_rate_gbps_at_140b / 2.5 >= 10.0
