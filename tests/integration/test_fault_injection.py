"""Fault injection: every corruption class must be *detected*.

The circuit's value in a router depends on its verifiability: a
scheduler that silently reorders or loses tags violates SLAs invisibly.
These tests inject representative faults into each memory structure and
assert the invariant checkers catch them (rather than the system
carrying on wrong).
"""

import pytest

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.tag_storage import Link, StorageCorruptionError
from repro.core.tree import TreeInvariantError
from repro.core.words import PAPER_FORMAT
from repro.hwsim.errors import HardwareSimulationError, ProtocolError


@pytest.fixture
def loaded_circuit():
    circuit = TagSortRetrieveCircuit(
        PAPER_FORMAT, capacity=64, eager_marker_removal=True
    )
    for tag in (100, 200, 300, 300, 1500, 4000):
        circuit.insert(tag)
    return circuit


class TestTreeFaults:
    def test_stuck_at_one_bit(self, loaded_circuit):
        """A marker bit stuck at 1 with no subtree below it."""
        tree = loaded_circuit.tree
        node = tree._levels[0].peek(0)
        stuck = next(bit for bit in range(16) if not node >> bit & 1)
        tree._levels[0].poke(0, node | (1 << stuck))
        with pytest.raises(TreeInvariantError):
            loaded_circuit.check_invariants()

    def test_dropped_marker_bit(self, loaded_circuit):
        """A leaf marker silently lost (stuck-at-zero)."""
        tree = loaded_circuit.tree
        prefix = PAPER_FORMAT.prefix_value(1500, 2)
        literal = PAPER_FORMAT.literal_at(1500, 2)
        node = tree._levels[2].peek(prefix)
        tree._levels[2].poke(prefix, node & ~(1 << literal))
        with pytest.raises(HardwareSimulationError):
            loaded_circuit.check_invariants()

    def test_phantom_subtree(self, loaded_circuit):
        """A non-empty child node under a cleared parent bit."""
        tree = loaded_circuit.tree
        # Find a level-1 prefix whose parent bit is clear.
        root = tree._levels[0].peek(0)
        clear = next(bit for bit in range(16) if not root >> bit & 1)
        tree._levels[1].poke(clear, 0b1)
        with pytest.raises(TreeInvariantError):
            loaded_circuit.check_invariants()

    def test_marker_count_drift(self, loaded_circuit):
        loaded_circuit.tree._count += 1
        with pytest.raises(TreeInvariantError):
            loaded_circuit.check_invariants()


class TestStorageFaults:
    def test_pointer_cycle(self, loaded_circuit):
        """A next pointer looping back onto an earlier link."""
        storage = loaded_circuit.storage
        live = storage.walk()
        second_address = live[1][1]
        link = storage._memory.peek(second_address)
        storage._memory.poke(
            second_address,
            Link(
                tag=link.tag,
                next_address=storage.head_address,
                next_tag=live[0][0],
                payload=link.payload,
            ),
        )
        with pytest.raises(StorageCorruptionError):
            storage.check_invariants()

    def test_out_of_order_link(self, loaded_circuit):
        storage = loaded_circuit.storage
        live = storage.walk()
        address = live[2][1]
        link = storage._memory.peek(address)
        storage._memory.poke(
            address,
            Link(
                tag=1,  # far smaller than its position allows
                next_address=link.next_address,
                next_tag=link.next_tag,
                payload=link.payload,
            ),
        )
        with pytest.raises(HardwareSimulationError):
            loaded_circuit.check_invariants()

    def test_stale_successor_tag(self, loaded_circuit):
        storage = loaded_circuit.storage
        head = storage._memory.peek(storage.head_address)
        head.next_tag = 9999 if head.next_tag is not None else None
        if head.next_tag is not None:
            with pytest.raises(StorageCorruptionError):
                storage.check_invariants()

    def test_lost_link(self, loaded_circuit):
        """A link vanishing mid-list (count mismatch)."""
        storage = loaded_circuit.storage
        live = storage.walk()
        first = storage._memory.peek(live[0][1])
        skipped = storage._memory.peek(live[1][1])
        storage._memory.poke(
            live[0][1],
            Link(
                tag=first.tag,
                next_address=skipped.next_address,
                next_tag=skipped.next_tag,
                payload=first.payload,
            ),
        )
        with pytest.raises(HardwareSimulationError):
            loaded_circuit.check_invariants()


class TestTranslationFaults:
    def test_stale_translation_entry(self, loaded_circuit):
        """The table pointing at the wrong (non-newest) duplicate."""
        live = loaded_circuit.storage.walk()
        older_300 = [addr for tag, addr in live if tag == 300][0]
        loaded_circuit.translation.record(300, older_300)
        with pytest.raises(ProtocolError):
            loaded_circuit.check_invariants()

    def test_dangling_translation_entry(self, loaded_circuit):
        loaded_circuit.translation.record(100, 63)  # unoccupied slot
        with pytest.raises(ProtocolError):
            loaded_circuit.check_invariants()


class TestFaultFreeBaseline:
    def test_loaded_circuit_is_clean(self, loaded_circuit):
        """The injection fixtures start from a verified-good state."""
        loaded_circuit.check_invariants()

    def test_detection_is_not_overzealous(self, loaded_circuit):
        """Normal operations after verification stay clean."""
        loaded_circuit.insert(2000)
        loaded_circuit.dequeue_min()
        loaded_circuit.check_invariants()
