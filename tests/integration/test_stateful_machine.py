"""Stateful (rule-based) verification of the sort/retrieve circuit.

Hypothesis drives arbitrary legal operation sequences against the
circuit while a reference model shadows every step; class invariants are
re-verified between rules.  Two machines:

* :class:`GeneralQueueMachine` — eager mode as a general priority queue,
  shadowed by a sorted list with FCFS tie-breaking;
* :class:`WfqModeMachine` — paper (deferred) mode under the WFQ
  monotonicity discipline, including combined insert+dequeue and
  busy-period restarts.
"""

import heapq

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import WordFormat

SMALL = WordFormat(levels=2, literal_bits=3)  # 64 tag values


class GeneralQueueMachine(RuleBasedStateMachine):
    """Eager-mode circuit vs a heap with FCFS tie-breaking."""

    def __init__(self):
        super().__init__()
        self.circuit = TagSortRetrieveCircuit(
            SMALL, capacity=128, eager_marker_removal=True
        )
        self.model = []
        self.sequence = 0

    @rule(tag=st.integers(min_value=0, max_value=63))
    def insert(self, tag):
        if self.circuit.count >= 120:
            return
        self.circuit.insert(tag, payload=self.sequence)
        heapq.heappush(self.model, (tag, self.sequence))
        self.sequence += 1

    @precondition(lambda self: self.model)
    @rule()
    def dequeue(self):
        served = self.circuit.dequeue_min()
        expected_tag, expected_order = heapq.heappop(self.model)
        assert served.tag == expected_tag
        assert served.payload == expected_order

    @precondition(lambda self: self.model)
    @rule()
    def peek(self):
        assert self.circuit.peek_min() == self.model[0][0]

    @invariant()
    def counts_agree(self):
        assert self.circuit.count == len(self.model)

    @invariant()
    def deep_structures_consistent(self):
        self.circuit.check_invariants()


class WfqModeMachine(RuleBasedStateMachine):
    """Paper-mode circuit under WFQ-legal (monotone) workloads."""

    def __init__(self):
        super().__init__()
        self.circuit = TagSortRetrieveCircuit(SMALL, capacity=128)
        self.model = []
        self.sequence = 0

    def _next_tag(self, increment):
        base = self.circuit.peek_min()
        if base is None:
            base = 0
        return min(base + increment, SMALL.max_value)

    @rule(increment=st.integers(min_value=0, max_value=9))
    def insert(self, increment):
        if self.circuit.count >= 120:
            return
        tag = self._next_tag(increment)
        self.circuit.insert(tag, payload=self.sequence)
        heapq.heappush(self.model, (tag, self.sequence))
        self.sequence += 1

    @precondition(lambda self: self.model)
    @rule()
    def dequeue(self):
        served = self.circuit.dequeue_min()
        expected_tag, expected_order = heapq.heappop(self.model)
        assert served.tag == expected_tag
        assert served.payload == expected_order

    @precondition(lambda self: self.model)
    @rule(increment=st.integers(min_value=0, max_value=9))
    def insert_and_dequeue(self, increment):
        tag = self._next_tag(increment)
        served, _ = self.circuit.insert_and_dequeue(
            tag, payload=self.sequence
        )
        expected_tag, expected_order = heapq.heappop(self.model)
        assert served.tag == expected_tag
        assert served.payload == expected_order
        heapq.heappush(self.model, (tag, self.sequence))
        self.sequence += 1

    @invariant()
    def counts_agree(self):
        assert self.circuit.count == len(self.model)

    @invariant()
    def deep_structures_consistent(self):
        self.circuit.check_invariants()


TestGeneralQueueMachine = GeneralQueueMachine.TestCase
TestGeneralQueueMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)

TestWfqModeMachine = WfqModeMachine.TestCase
TestWfqModeMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
