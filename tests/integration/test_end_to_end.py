"""End-to-end integration: the whole Fig. 1 system against the whole
scheduler family on shared scenarios."""

import pytest

from repro.net import (
    HardwareWFQSystem,
    per_flow_delays,
    throughput_shares,
    weighted_jain_index,
)
from repro.sched import (
    DRRScheduler,
    WFQScheduler,
    WRRScheduler,
    simulate,
)
from repro.traffic import uniform_poisson, voip_video_data_mix


class TestSharedScenarioAcrossSchedulers:
    def test_everyone_delivers_the_same_multiset(self):
        scenario = uniform_poisson(flows=6, packets_per_flow=80, seed=1)

        def build(cls, **kwargs):
            scheduler = cls(scenario.rate_bps, **kwargs)
            for flow_id, weight in scenario.weights.items():
                scheduler.add_flow(flow_id, weight)
            return scheduler

        ids = sorted(p.packet_id for p in scenario.trace)
        for scheduler in (
            build(WFQScheduler),
            build(DRRScheduler),
            build(WRRScheduler),
            build(HardwareWFQSystem),
        ):
            result = simulate(scheduler, scenario.clone_trace())
            assert sorted(p.packet_id for p in result.packets) == ids

    def test_weighted_fairness_under_saturation(self):
        """All fair schedulers deliver weight-proportional shares when
        every flow is continuously backlogged."""
        from repro.sched import Packet

        rate = 1e6
        weights = {0: 0.5, 1: 0.3, 2: 0.2}
        trace = []
        for flow_id in weights:
            for _ in range(120):
                trace.append(Packet(flow_id, 500, 0.0))
        for cls in (WFQScheduler, HardwareWFQSystem, DRRScheduler):
            scheduler = cls(rate)
            for flow_id, weight in weights.items():
                scheduler.add_flow(flow_id, weight)
            result = simulate(
                scheduler,
                [
                    Packet(p.flow_id, p.size_bytes, p.arrival_time)
                    for p in trace
                ],
            )
            shares = throughput_shares(
                result, end=result.finish_time / 2
            )
            index = weighted_jain_index(shares, weights)
            assert index > 0.95, f"{cls.__name__} unfair: {index}"


class TestHardwareVsSoftwareDelays:
    def test_realtime_flows_protected_by_both(self):
        scenario = voip_video_data_mix(packets_per_flow=150, seed=7)

        def run(cls):
            scheduler = cls(scenario.rate_bps)
            for flow_id, weight in scenario.weights.items():
                scheduler.add_flow(flow_id, weight)
            return simulate(scheduler, scenario.clone_trace())

        for cls in (WFQScheduler, HardwareWFQSystem):
            delays = per_flow_delays(run(cls))
            voip_worst = max(
                delays[f].worst for f in scenario.realtime_flows
            )
            # VoIP flows must see sub-25ms worst-case delay at 10 Mb/s
            # with a guaranteed 5% share each.
            assert voip_worst < 0.025, f"{cls.__name__}: {voip_worst}"


class TestStress:
    def test_long_run_with_wraparound_and_invariants(self):
        """A long, wrapping, full-system run with deep verification."""
        scenario = voip_video_data_mix(
            packets_per_flow=500, load=0.95, seed=11
        )
        system = HardwareWFQSystem(scenario.rate_bps)
        for flow_id, weight in scenario.weights.items():
            system.add_flow(flow_id, weight)
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)
        system.store.circuit.check_invariants()
        # Fixed-time property: exactly 4 cycles per circuit operation.
        assert system.store.cycles == 4 * system.store.operations

    def test_overload_sheds_into_buffer_drops_not_corruption(self):
        scenario = voip_video_data_mix(
            packets_per_flow=300, load=1.5, seed=13
        )
        system = HardwareWFQSystem(
            scenario.rate_bps, buffer_capacity=64
        )
        for flow_id, weight in scenario.weights.items():
            system.add_flow(flow_id, weight)
        result = simulate(system, scenario.clone_trace())
        assert system.dropped > 0
        assert len(result.packets) == len(scenario.trace) - system.dropped
        system.store.circuit.check_invariants()
