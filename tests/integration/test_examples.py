"""Smoke-run every example script — examples must never rot.

Each example is executed in-process (import + ``main()``) with stdout
captured, and its key output lines are sanity-checked.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "closest match 110101" in out
        assert "served all 1000 in sorted order" in out

    def test_voip_qos(self, capsys):
        out = run_example("voip_qos", capsys)
        assert "wfq (hw)" in out
        assert "Takeaways" in out

    def test_scheduler_shootout(self, capsys):
        out = run_example("scheduler_shootout", capsys)
        for policy in ("wfq", "wf2q+", "srr", "hw_wfq", "cbq"):
            assert policy in out
        assert "Parekh-Gallager" in out

    def test_capacity_planning(self, capsys):
        out = run_example("capacity_planning", capsys)
        assert "3 x 4" in out
        assert "40 Gb/s" in out

    def test_wraparound_tour(self, capsys):
        out = run_example("wraparound_tour", capsys)
        assert "invariants verified" in out
        assert "span guard demonstration" in out

    def test_sla_admission(self, capsys):
        out = run_example("sla_admission", capsys)
        assert "ADMIT" in out
        assert "reject" in out
        assert "NO" not in out.split("within bound")[-1]

    def test_fabric_scaleout(self, capsys):
        out = run_example("fabric_scaleout", capsys)
        assert "modeled speedup" in out
        assert "multiset conserved" in out
        assert "identical after restore" in out
        assert "DIVERGED" not in out

    def test_live_service(self, capsys):
        out = run_example("live_service", capsys)
        assert "ECN-marked" in out
        assert "/health -> ok" in out
        assert "IDENTICAL to uninterrupted reference" in out
        assert "MISMATCH" not in out

    def test_every_example_has_a_test(self):
        """Adding an example without a smoke test fails this meta-check."""
        scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {
            name.removeprefix("test_")
            for name in dir(self)
            if name.startswith("test_") and name != "test_every_example_has_a_test"
        }
        assert scripts <= tested, scripts - tested
