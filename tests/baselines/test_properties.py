"""Property-based tests over all Table I queues (hypothesis)."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.baselines import make_all_queues
from tests.baselines.test_interface import EXACT_METHODS


@st.composite
def workloads(draw):
    """Random interleavings: positive int = insert, None = extract."""
    return draw(
        st.lists(
            st.one_of(st.integers(min_value=0, max_value=4095), st.none()),
            min_size=1,
            max_size=120,
        )
    )


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(make_all_queues())),
    operations=workloads(),
)
def test_multiset_conservation(name, operations):
    """Whatever goes in comes out: no method loses or invents tags."""
    queue = make_all_queues()[name]
    inserted = []
    extracted = []
    for op in operations:
        if op is None:
            if queue.is_empty:
                continue
            extracted.append(queue.extract_min()[0])
        else:
            queue.insert(op)
            inserted.append(op)
    extracted.extend(queue.drain())
    assert sorted(extracted) == sorted(inserted)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(EXACT_METHODS)),
    operations=workloads(),
)
def test_exact_methods_match_heap(name, operations):
    """Every exact method is behaviour-equivalent to a heap."""
    queue = make_all_queues()[name]
    model = []
    for op in operations:
        if op is None:
            if not model:
                continue
            assert queue.extract_min()[0] == heapq.heappop(model)
        else:
            queue.insert(op)
            heapq.heappush(model, op)
    assert queue.drain() == sorted(model)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(make_all_queues())),
    values=st.lists(
        st.integers(min_value=0, max_value=4095), min_size=1, max_size=60
    ),
)
def test_peek_does_not_consume(name, values):
    queue = make_all_queues()[name]
    for value in values:
        queue.insert(value)
    first = queue.peek_min()
    assert queue.peek_min() == first
    assert len(queue) == len(values)
    assert queue.extract_min()[0] == first
