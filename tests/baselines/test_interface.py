"""Cross-method behaviour tests: every Table I queue against a heap oracle."""

import heapq
import random

import pytest

from repro.baselines import make_all_queues
from repro.hwsim.errors import EmptyStructureError

#: methods that serve in *exact* sorted order (the aggregating methods —
#: binning, TCQ, LFVC, calendar — only approximate it by design)
EXACT_METHODS = {
    "sorted_list",
    "binary_heap",
    "balanced_bst",
    "van_emde_boas",
    "binary_cam",
    "tcam",
    "shift_register",
    "multibit_tree",
}

APPROXIMATE_METHODS = {"binning", "tcq", "lfvc", "calendar_queue"}


def all_queue_names():
    return sorted(make_all_queues())


@pytest.mark.parametrize("name", all_queue_names())
class TestCommonBehaviour:
    def make(self, name):
        return make_all_queues(tag_range=4096, word_bits=12, capacity=4096)[name]

    def test_empty_queue(self, name):
        queue = self.make(name)
        assert queue.is_empty
        assert queue.peek_min() is None
        with pytest.raises(EmptyStructureError):
            queue.extract_min()

    def test_single_element(self, name):
        queue = self.make(name)
        queue.insert(42, "payload")
        assert len(queue) == 1
        assert queue.peek_min() == 42
        tag, payload = queue.extract_min()
        assert (tag, payload) == (42, "payload")
        assert queue.is_empty

    def test_drain_is_sorted_for_exact_methods(self, name):
        queue = self.make(name)
        rng = random.Random(1)
        values = [rng.randrange(4096) for _ in range(200)]
        for value in values:
            queue.insert(value)
        drained = queue.drain()
        if name in EXACT_METHODS:
            assert drained == sorted(values)
        else:
            # Approximate methods must still return the same multiset.
            assert sorted(drained) == sorted(values)

    def test_interleaved_against_heap(self, name):
        queue = self.make(name)
        model = []
        rng = random.Random(7)
        sequence = 0
        for _ in range(500):
            if model and rng.random() < 0.45:
                got, _ = queue.extract_min()
                want = heapq.heappop(model)[0]
                if name in EXACT_METHODS:
                    assert got == want
            else:
                value = rng.randrange(4096)
                queue.insert(value, sequence)
                heapq.heappush(model, (value, sequence))
                sequence += 1
        assert len(queue) == len(model)

    def test_accesses_are_counted(self, name):
        queue = self.make(name)
        queue.insert(1)
        queue.insert(2)
        queue.extract_min()
        assert queue.stats.total > 0

    def test_fcfs_for_duplicates(self, name):
        if name in APPROXIMATE_METHODS:
            pytest.skip("aggregating methods only guarantee bucket FIFO")
        queue = self.make(name)
        for order in range(5):
            queue.insert(7, order)
        payloads = [queue.extract_min()[1] for _ in range(5)]
        assert payloads == [0, 1, 2, 3, 4]

    def test_metadata_present(self, name):
        queue = self.make(name)
        assert queue.name == name
        assert queue.model in ("sort", "search")
        assert queue.complexity != "?"
