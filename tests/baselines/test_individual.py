"""Method-specific behaviour tests for the Table I baselines."""

import random

import pytest

from repro.baselines import (
    BinaryCAMQueue,
    BinningQueue,
    CalendarQueue,
    LFVCQueue,
    ShiftRegisterPriorityQueue,
    SortedLinkedListQueue,
    TernaryCAMQueue,
    TwoDimensionalCalendarQueue,
    VanEmdeBoasQueue,
)
from repro.hwsim.errors import ConfigurationError


class TestSortedList:
    def test_insert_cost_grows_with_position(self):
        queue = SortedLinkedListQueue()
        for value in range(100):
            queue.insert(value)
        before = queue.stats.total
        queue.insert(99)  # must scan the whole list
        tail_cost = queue.stats.total - before
        queue2 = SortedLinkedListQueue()
        for value in range(100):
            queue2.insert(value)
        before = queue2.stats.total
        queue2.insert(0)  # lands at the head
        head_cost = queue2.stats.total - before
        assert tail_cost > 10 * head_cost

    def test_extract_is_constant(self):
        queue = SortedLinkedListQueue()
        for value in range(50):
            queue.insert(value)
        before = queue.stats.snapshot()
        queue.extract_min()
        assert queue.stats.delta_since(before).total <= 2


class TestBinning:
    def test_sorting_errors_accumulate(self):
        """The paper's objection: binning 'aggregates values together in
        groups and is inherently inaccurate'."""
        queue = BinningQueue(tag_range=4096, bin_span=256)
        queue.insert(100)
        queue.insert(5)  # same bin, smaller value, later arrival
        first, _ = queue.extract_min()
        assert first == 100  # FIFO within the bin: out of order!
        assert queue.sorting_errors == 1

    def test_fine_bins_are_accurate(self):
        queue = BinningQueue(tag_range=4096, bin_span=1)
        values = [9, 5, 7, 5]
        for value in values:
            queue.insert(value)
        assert queue.drain() == sorted(values)
        assert queue.sorting_errors == 0

    def test_worst_case_probes_equal_bin_count(self):
        """Table I: the number of accesses equals range / span."""
        queue = BinningQueue(tag_range=1024, bin_span=16)
        queue.insert(1023)
        before = queue.stats.snapshot()
        queue.extract_min()
        probes = queue.stats.delta_since(before).reads
        assert probes == queue.bin_count

    def test_range_validation(self):
        queue = BinningQueue(tag_range=64, bin_span=8)
        with pytest.raises(ConfigurationError):
            queue.insert(64)


class TestBinaryCAM:
    def test_probe_count_tracks_tag_gap(self):
        """Table I: the binary CAM increments one value at a time."""
        queue = BinaryCAMQueue(tag_range=4096)
        queue.insert(4000)
        before = queue.stats.snapshot()
        queue.extract_min()
        probes = queue.stats.delta_since(before).reads
        assert probes == 4001  # 0..4000 inclusive

    def test_monotone_floor_accelerates_wfq_service(self):
        queue = BinaryCAMQueue(tag_range=4096)
        queue.insert(10)
        queue.extract_min()
        queue.insert(12)
        before = queue.stats.snapshot()
        queue.extract_min()
        assert queue.stats.delta_since(before).reads == 3  # 10, 11, 12

    def test_non_monotone_insert_resets_floor(self):
        queue = BinaryCAMQueue(tag_range=4096)
        queue.insert(100)
        queue.extract_min()
        queue.insert(5)  # behind the floor
        tag, _ = queue.extract_min()
        assert tag == 5


class TestTernaryCAM:
    def test_probe_count_is_word_width(self):
        """Table I: TCAM minimum search = W masked probes."""
        queue = TernaryCAMQueue(word_bits=12)
        for value in (3000, 17, 512):
            queue.insert(value)
        before = queue.stats.snapshot()
        queue.extract_min()
        assert queue.stats.delta_since(before).reads == 12

    def test_width_validation(self):
        queue = TernaryCAMQueue(word_bits=8)
        with pytest.raises(ConfigurationError):
            queue.insert(256)


class TestCalendarQueue:
    def test_resizes_under_load(self):
        queue = CalendarQueue(days=4, day_width=8, resize=True)
        for value in range(50):
            queue.insert(value)
        assert queue.days > 4

    def test_no_resize_when_disabled(self):
        queue = CalendarQueue(days=4, day_width=8, resize=False)
        for value in range(50):
            queue.insert(value)
        assert queue.days == 4

    def test_exactness_within_day_windows(self):
        queue = CalendarQueue(days=64, day_width=1, resize=False)
        values = [40, 3, 60, 3]
        for value in values:
            queue.insert(value)
        assert queue.drain() == sorted(values)


class TestTCQ:
    def test_grid_dimensions(self):
        queue = TwoDimensionalCalendarQueue(tag_range=4096)
        assert queue.columns == 64
        assert queue.rows == 64

    def test_service_probes_bounded_by_row_plus_column(self):
        """Table I: O(sqrt(R)) — one row scan + one column scan."""
        queue = TwoDimensionalCalendarQueue(tag_range=4096)
        queue.insert(4095)
        before = queue.stats.snapshot()
        queue.extract_min()
        probes = queue.stats.delta_since(before).reads
        assert probes <= queue.rows + queue.columns

    def test_delay_degradation_is_measured(self):
        """The paper: TCQ 'produces a degradation of the delay
        guarantees' — same-bucket FIFO inversions are counted."""
        queue = TwoDimensionalCalendarQueue(tag_range=4096)
        queue.insert(40)
        queue.insert(35)  # same fine bucket region
        queue.extract_min()
        queue.extract_min()
        assert queue.sorting_errors >= 0  # counter exists and is consistent


class TestLFVC:
    def test_bitmap_scan_bounded(self):
        queue = LFVCQueue(tag_range=4096, quantum=4)
        queue.insert(4095)
        before = queue.stats.snapshot()
        queue.extract_min()
        probes = queue.stats.delta_since(before).reads
        assert probes <= queue.group_count + queue.group_size

    def test_quantization_errors_counted(self):
        queue = LFVCQueue(tag_range=4096, quantum=64)
        queue.insert(50)
        queue.insert(10)  # same quantum bucket, smaller, later
        queue.extract_min()
        assert queue.sorting_errors == 1


class TestShiftRegister:
    def test_constant_time_but_bounded_capacity(self):
        queue = ShiftRegisterPriorityQueue(capacity=4)
        for value in (3, 1, 2, 0):
            queue.insert(value)
        with pytest.raises(ConfigurationError):
            queue.insert(9)
        assert queue.drain() == [0, 1, 2, 3]

    def test_access_cost_is_constant(self):
        queue = ShiftRegisterPriorityQueue(capacity=2048)
        rng = random.Random(3)
        costs = []
        for index in range(1000):
            before = queue.stats.snapshot()
            queue.insert(rng.randrange(4096))
            costs.append(queue.stats.delta_since(before).total)
        assert max(costs) == min(costs) == 1

    def test_hardware_cost_is_capacity(self):
        assert ShiftRegisterPriorityQueue(capacity=512).cell_count == 512


class TestVanEmdeBoas:
    def test_universe_validation(self):
        queue = VanEmdeBoasQueue(word_bits=8)
        with pytest.raises(ConfigurationError):
            queue.insert(256)

    def test_loglog_access_growth(self):
        """vEB accesses grow far slower than linearly with N."""
        small = VanEmdeBoasQueue(word_bits=12)
        big = VanEmdeBoasQueue(word_bits=12)
        rng = random.Random(5)
        for _ in range(32):
            small.insert(rng.randrange(4096))
        for _ in range(2048):
            big.insert(rng.randrange(4096))
        small_cost = small.stats.total / 32
        big_cost = big.stats.total / 2048
        assert big_cost < small_cost * 3  # nowhere near 64x

    def test_delete_path_maintains_min(self):
        queue = VanEmdeBoasQueue(word_bits=12)
        for value in (100, 50, 200, 50):
            queue.insert(value)
        assert queue.extract_min()[0] == 50
        assert queue.extract_min()[0] == 50
        assert queue.peek_min() == 100
