"""Tests for the Table II estimator — shape checks, not micron matching."""

import pytest

from repro.core.matching import RippleMatcher
from repro.core.words import PAPER_FORMAT, WordFormat
from repro.silicon import (
    UMC_130NM,
    estimate_sort_retrieve,
    render_table,
    scaling_sweep,
)


class TestPaperConfiguration:
    def test_register_and_sram_bits_match_architecture(self):
        estimate = estimate_sort_retrieve()
        assert estimate.register_bits == 272  # tree levels 0-1
        # level 2 (4 kbit) + 4096-entry x 24-bit translation table
        assert estimate.sram_bits == 4096 + 4096 * 24

    def test_memory_block_count_matches_fig12(self):
        """Fig. 12: 32 small tree blocks + 8 translation-table blocks."""
        estimate = estimate_sort_retrieve()
        assert estimate.memory_blocks == 40

    def test_clock_in_paper_class(self):
        """The paper's throughput implies ~143 MHz; the FPGA matcher ran
        at 154 MHz.  The estimate must land in that class."""
        estimate = estimate_sort_retrieve()
        assert 120.0 <= estimate.clock_mhz <= 170.0

    def test_throughput_reproduces_section_iv(self):
        estimate = estimate_sort_retrieve()
        assert estimate.packets_per_second == pytest.approx(35.8e6, rel=0.10)
        assert estimate.line_rate_gbps_at_140b == pytest.approx(40.0, rel=0.10)

    def test_power_is_logic_dominated(self):
        """Section IV: 'the power consumption of the memory blocks is
        comparatively low, with the majority due to the lookup logic and
        associated interconnect'."""
        estimate = estimate_sort_retrieve()
        assert estimate.power_logic_mw > estimate.power_memory_mw

    def test_area_is_memory_dominated(self):
        """Fig. 12's floorplan is dominated by the memory blocks."""
        estimate = estimate_sort_retrieve()
        assert estimate.area_memory_mm2 > estimate.area_logic_mm2

    def test_totals_are_sums(self):
        estimate = estimate_sort_retrieve()
        assert estimate.area_total_mm2 == pytest.approx(
            estimate.area_logic_mm2 + estimate.area_memory_mm2
        )
        assert estimate.power_total_mw == pytest.approx(
            estimate.power_logic_mw + estimate.power_memory_mw
        )


class TestScaling:
    def test_15_bit_variant_grows_translation_table(self):
        """Section III-A: the 15-bit option needs a 32k-entry table."""
        sweep = scaling_sweep((12, 15))
        assert sweep[15].sram_bits > sweep[12].sram_bits * 4

    def test_wider_formats_cost_more_area(self):
        sweep = scaling_sweep((12, 16, 20))
        areas = [sweep[bits].area_total_mm2 for bits in (12, 16, 20)]
        assert areas == sorted(areas)

    def test_matcher_choice_affects_clock(self):
        fast = estimate_sort_retrieve()
        slow = estimate_sort_retrieve(matcher_factory=RippleMatcher)
        assert fast.clock_mhz > slow.clock_mhz

    def test_deeper_tree_trades_memory_for_depth(self):
        deep = estimate_sort_retrieve(WordFormat(levels=6, literal_bits=2))
        flat = estimate_sort_retrieve(WordFormat(levels=3, literal_bits=4))
        # Same 12-bit range: the binary-ish tree stores more tree bits
        # but the translation table dominates both.
        assert deep.sram_bits >= flat.sram_bits


class TestRendering:
    def test_render_contains_key_rows(self):
        text = render_table(estimate_sort_retrieve())
        assert "Clock (MHz)" in text
        assert "Line rate @140B" in text
        assert UMC_130NM.name in text
