"""Tests for the external tag-storage memory models."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.silicon.memory_timing import (
    ACCESSES_PER_OPERATION,
    EXTERNAL_SRAM,
    QDRII_SRAM,
    RLDRAM,
    MemoryTechnology,
    compare_technologies,
    required_random_cycle_ns,
    storage_throughput,
)


class TestStorageThroughput:
    def test_single_port_pays_four_accesses(self):
        result = storage_throughput(EXTERNAL_SRAM)
        assert result.operation_time_ns == pytest.approx(
            ACCESSES_PER_OPERATION * EXTERNAL_SRAM.random_cycle_ns
        )

    def test_dual_port_halves_the_splice(self):
        """QDR separate read/write ports overlap adjacent operations."""
        result = storage_throughput(QDRII_SRAM)
        assert result.operation_time_ns == pytest.approx(
            2 * QDRII_SRAM.random_cycle_ns
        )

    def test_qdrii_sustains_the_40g_target(self):
        """The development direction the paper names: QDRII keeps the
        storage off the critical path at 40 Gb/s."""
        result = storage_throughput(QDRII_SRAM)
        assert result.line_rate_gbps_at_140b > 40.0

    def test_rldram_trades_speed_for_capacity(self):
        fast = storage_throughput(QDRII_SRAM)
        big = storage_throughput(RLDRAM)
        assert big.line_rate_gbps_at_140b < fast.line_rate_gbps_at_140b
        assert big.links_per_device > 5 * fast.links_per_device

    def test_compare_covers_all(self):
        table = compare_technologies()
        assert len(table) == 3

    def test_invalid_cycle_rejected(self):
        broken = MemoryTechnology(
            name="broken", random_cycle_ns=0.0, dual_port=False,
            capacity_mbit=1,
        )
        with pytest.raises(ConfigurationError):
            storage_throughput(broken)


class TestRequiredCycle:
    def test_inverts_the_chain(self):
        """At QDRII's achieved rate, the required cycle equals its own."""
        achieved = storage_throughput(QDRII_SRAM).line_rate_gbps_at_140b
        needed = required_random_cycle_ns(achieved, dual_port=True)
        assert needed == pytest.approx(QDRII_SRAM.random_cycle_ns)

    def test_terabit_demands_subnanosecond_cycles(self):
        """The conclusion's 'future terabit QoS router' scaling: even
        dual-port storage needs sub-ns random cycles at 1 Tb/s/140 B —
        quantifying how far the claim stretches."""
        needed = required_random_cycle_ns(1000.0, dual_port=True)
        assert needed < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_random_cycle_ns(0.0)
        with pytest.raises(ConfigurationError):
            required_random_cycle_ns(10.0, mean_packet_bytes=0.0)
