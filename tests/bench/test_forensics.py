"""The bench harness's forensic reference trace: deterministic,
framed, and diffable against a fresh run of the same workload."""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

from repro.bench.perf import (
    _SCHEMA,
    REFERENCE_TRACE_OPS,
    record_reference_trace,
    reference_trace_path,
)
from repro.obs.diff import diff_traces
from repro.obs.exporters import read_trace


class TestReferenceTracePath:
    def test_derives_from_baseline_name(self):
        assert (
            reference_trace_path("BENCH_sort_retrieve.json")
            == "BENCH_sort_retrieve.trace.jsonl"
        )
        assert reference_trace_path("odd.name") == "odd.name.trace.jsonl"


class TestRecordReferenceTrace:
    def test_framed_and_deterministic(self, tmp_path):
        path = tmp_path / "ref.trace.jsonl"
        events, header = record_reference_trace(str(path), seed=11, ops=400)
        assert header["seed"] == 11
        assert header["mode"] == "per_op"
        assert header["purpose"] == "bench_reference"

        document = read_trace(str(path))
        assert document.header == header
        assert document.dropped == 0
        assert document.missing == 0
        assert len(document.events) == len(events)

        again, _ = record_reference_trace(seed=11, ops=400)
        assert [e.to_dict() for e in again] == [
            e.to_dict() for e in events
        ]

    def test_fresh_run_diffs_clean_against_the_reference(self, tmp_path):
        path = tmp_path / "ref.trace.jsonl"
        record_reference_trace(str(path), seed=3, ops=400)
        reference = read_trace(str(path))
        events, header = record_reference_trace(seed=3, ops=400)
        diff = diff_traces(
            reference.events,
            events,
            header_a=reference.header,
            header_b=header,
        )
        assert diff.aligned
        assert all(
            delta["accesses"] == 0 for delta in diff.kind_deltas().values()
        )


class TestCommittedBaseline:
    def test_baseline_is_current_schema_with_reference_trace(self):
        assert _SCHEMA == 7
        baseline_path = REPO_ROOT / "BENCH_sort_retrieve.json"
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert baseline["schema"] == 7
        document = read_trace(reference_trace_path(str(baseline_path)))
        assert document.header is not None
        assert document.header["seed"] == baseline["seed"]
        assert document.header["ops"] == REFERENCE_TRACE_OPS
        assert document.dropped == 0
        assert document.missing == 0
