"""The bench suite's timer dynamic-update phase."""

from repro.bench.perf import MIN_TIMED_WALL_SECONDS, _bench_timer, check_against_baseline


def test_timer_phase_structure_and_parity():
    summary, scenarios = _bench_timer(1_500, 20060101)
    assert summary["name"] == "timer_churn"
    assert summary["pattern"] == "churn"
    assert summary["events"] == 1_500
    # Every armed timer is accounted for across the verbs.
    assert summary["armed"] > 0
    assert summary["armed"] >= summary["cancelled"] + summary["fired"]
    # Both engines ran, identical behaviour asserted inside the phase.
    assert summary["served_orders_identical"] is True
    assert summary["accounting_identical"] is True
    assert summary["speedup"] > 0.0
    names = [scenario["name"] for scenario in scenarios]
    assert names == [
        "timer_churn_gate:dynamic",
        "timer_churn_turbo:dynamic",
    ]
    gate, turbo = scenarios
    # Deterministic metrics match exactly between the engines.
    assert gate["cycles_per_op"] == turbo["cycles_per_op"]
    assert gate["accesses_per_op"] == turbo["accesses_per_op"]
    assert gate["ops"] == turbo["ops"]
    assert gate["events"] == turbo["events"] == 1_500
    assert "head_cache_hits" in turbo


def _timer_document(speedup, seconds=MIN_TIMED_WALL_SECONDS):
    return {
        "preset": "smoke",
        "scenarios": [],
        "timer": {
            "speedup": speedup,
            "gate": {"seconds": seconds},
            "turbo": {"seconds": seconds},
        },
    }


def test_baseline_check_flags_timer_speedup_regression():
    baseline = _timer_document(3.0)
    current = _timer_document(1.5)
    problems = check_against_baseline(current, baseline)
    assert any("timer-churn turbo speedup" in problem for problem in problems)
    assert not check_against_baseline(baseline, baseline)


def test_baseline_check_fences_subsecond_timer_timings():
    # Wall-clock comparisons below the timing fence are noise, not
    # regressions: the check must stay silent however bad the ratio.
    baseline = _timer_document(3.0, seconds=0.01)
    current = _timer_document(0.5, seconds=0.01)
    assert not check_against_baseline(current, baseline)
