"""The bench suite's fabric scale-out phase."""

from repro.bench.perf import (
    FABRIC_SHARD_SWEEP,
    _bench_fabric,
    check_against_baseline,
    make_flow_ops,
)


def test_flow_ops_shape():
    ops = make_flow_ops(1_000, 42, flows=32)
    assert len(ops) == 1_000
    pushes = [op for op in ops if op[0] == "push"]
    assert pushes and all(0 <= op[2] < 32 for op in pushes)
    # Deterministic per seed.
    assert ops == make_flow_ops(1_000, 42, flows=32)
    assert ops != make_flow_ops(1_000, 43, flows=32)


def test_fabric_phase_reports_sweep_and_speedup():
    summary, scenarios = _bench_fabric(1_500, 20060101)
    assert [entry["shards"] for entry in summary["sweep"]] == list(
        FABRIC_SHARD_SWEEP
    )
    assert summary["one_shard_order_identical"] is True
    # One shard adds no modeled parallelism...
    assert summary["sweep"][0]["modeled_speedup"] == 1.0
    # ...wider fabrics shrink the makespan.
    speedups = [entry["modeled_speedup"] for entry in summary["sweep"]]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0
    # Single-circuit scenario + one per sweep size.
    assert len(scenarios) == 1 + len(FABRIC_SHARD_SWEEP)


def test_baseline_check_flags_fabric_speedup_regression():
    baseline = {
        "preset": "smoke",
        "scenarios": [],
        "fabric": {"modeled_speedup": 10.0, "max_shards": 16},
    }
    current = {
        "preset": "smoke",
        "scenarios": [],
        "fabric": {"modeled_speedup": 5.0, "max_shards": 16},
    }
    problems = check_against_baseline(current, baseline)
    assert any("fabric modeled speedup" in problem for problem in problems)
    assert not check_against_baseline(baseline, baseline)
