"""Pairwise differential parity across the gate, turbo, and vector engines.

The engine contract (DESIGN.md §15) splits in two: served order,
payloads, slot addresses, results, errors, and logical snapshots must be
identical across engines, while cycle counts and per-structure access
counters are modeled per-engine.  These tests drive every engine pair
through the same randomized op streams — including remove-by-handle,
retag, and checkpoint/restore — comparing the portable half op for op
and stripping the modeled half from snapshots before comparing them.
"""

import itertools
import random

import pytest

from repro.bench.perf import make_flow_ops
from repro.core.engine import make_circuit, numpy_or_none
from repro.core.words import PAPER_FORMAT
from repro.fabric.fabric import ScheduleFabric
from repro.net.hardware_store import HardwareTagStore

ENGINES = ("gate", "turbo", "vector")
PAIRS = list(itertools.combinations(ENGINES, 2))
CAPACITY = 256

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy is not installed"
)


def pair_params():
    out = []
    for left, right in PAIRS:
        marks = [needs_numpy] if "vector" in (left, right) else []
        out.append(pytest.param(left, right, marks=marks, id=f"{left}-{right}"))
    return out


def normalized_state(state):
    """Portable snapshot: drop modeled cycles and access counters."""
    out = dict(state)
    out.pop("cycles", None)
    if isinstance(out.get("config"), dict):
        config = dict(out["config"])
        for key in ("turbo", "engine", "mode"):  # engine identity markers
            config.pop(key, None)
        out["config"] = config
    for key in ("tree", "translation", "storage"):
        if key in out and isinstance(out[key], dict):
            section = dict(out[key])
            section.pop("stats", None)
            out[key] = section
    return out


def apply_op(circuit, op, served, results):
    kind = op[0]
    try:
        if kind == "insert":
            results.append(("addr", circuit.insert(op[1], op[2])))
        elif kind == "dequeue":
            tag = circuit.dequeue_min()
            served.append((tag.tag, tag.payload, tag.address))
        elif kind == "insdeq":
            tag, address = circuit.insert_and_dequeue(op[1], op[2])
            served.append((tag.tag, tag.payload, tag.address))
            results.append(("addr", address))
        elif kind == "ibatch":
            results.append(("batch", tuple(circuit.insert_batch(op[1], op[2]))))
        elif kind == "dbatch":
            for tag in circuit.dequeue_batch(op[1]):
                served.append((tag.tag, tag.payload, tag.address))
        elif kind == "remove":
            tag = circuit.remove(op[1])
            results.append(("removed", tag.tag, tag.payload, tag.address))
        elif kind == "retag":
            results.append(("retag", circuit.retag(op[1], op[2])))
        elif kind == "mixed":
            for tag in circuit.run_mixed(op[1]):
                served.append((tag.tag, tag.payload, tag.address))
    except Exception as error:  # errors are part of the portable contract
        results.append(("err", type(error).__name__, str(error)))


def next_op(rng, reference, step, base):
    """One randomized op, shaped by the reference engine's live state."""
    space = PAPER_FORMAT.capacity
    base = (base + rng.randrange(3)) % space
    tag = (base + rng.randrange(40)) % space
    payload = rng.choice([None, f"p{step}"])
    roll = rng.random()
    if roll < 0.35:
        return ("insert", tag, payload), base
    if roll < 0.50 and reference.count + 8 < CAPACITY - 6:
        tags = []
        cursor = tag
        for _ in range(rng.randrange(1, 8)):
            tags.append(cursor)
            cursor = (cursor + rng.randrange(3)) % space
        rng.shuffle(tags)
        return ("ibatch", tags, [f"b{step}.{i}" for i in range(len(tags))]), base
    if roll < 0.62:
        return ("dequeue",), base
    if roll < 0.70:
        return ("dbatch", rng.randrange(0, 6)), base
    if roll < 0.78 and reference.count:
        return ("insdeq", tag, payload), base
    if roll < 0.86:
        live = [address for _, address in reference.storage.walk()]
        if live:
            return ("remove", rng.choice(live)), base
        return ("insert", tag, payload), base
    if roll < 0.94:
        live = [address for _, address in reference.storage.walk()]
        if live:
            return ("retag", rng.choice(live), tag), base
        return ("insert", tag, payload), base
    stream = []
    cursor = tag
    for _ in range(rng.randrange(1, 6)):
        if rng.random() < 0.6:
            stream.append(("insert", cursor, f"m{step}"))
            cursor = (cursor + 1) % space
        else:
            stream.append(("dequeue",))
    return ("mixed", stream), base


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize("left,right", pair_params())
def test_engines_agree_op_for_op(left, right, seed):
    rng = random.Random(seed)
    circuits = [
        make_circuit(PAPER_FORMAT, mode=mode, capacity=CAPACITY, modular=True)
        for mode in (left, right)
    ]
    base = 0
    for step in range(300):
        op, base = next_op(rng, circuits[0], step, base)
        outputs = []
        for circuit in circuits:
            served, results = [], []
            apply_op(circuit, op, served, results)
            outputs.append((served, results))
        assert outputs[0] == outputs[1], f"step {step}: {op}"
        assert circuits[0].count == circuits[1].count
        assert circuits[0].peek_min() == circuits[1].peek_min()
        if step % 97 == 0:
            assert normalized_state(circuits[0].to_state()) == normalized_state(
                circuits[1].to_state()
            )


@pytest.mark.parametrize("seed", [11])
@pytest.mark.parametrize("left,right", pair_params())
def test_checkpoint_restores_across_engines(left, right, seed):
    """A snapshot from one engine resumes exactly in another."""
    rng = random.Random(seed)
    source = make_circuit(PAPER_FORMAT, mode=left, capacity=CAPACITY, modular=True)
    base = 0
    for step in range(150):
        op, base = next_op(rng, source, step, base)
        apply_op(source, op, [], [])
    state = source.to_state()

    resumed = make_circuit(PAPER_FORMAT, mode=right, capacity=CAPACITY, modular=True)
    resumed.load_state(state)
    assert normalized_state(resumed.to_state()) == normalized_state(state)
    resumed.check_invariants()

    for step in range(150, 300):
        op, base = next_op(rng, source, step, base)
        outputs = []
        for circuit in (source, resumed):
            served, results = [], []
            apply_op(circuit, op, served, results)
            outputs.append((served, results))
        assert outputs[0] == outputs[1], f"step {step}: {op}"
    assert normalized_state(source.to_state()) == normalized_state(
        resumed.to_state()
    )


@pytest.mark.parametrize("seed", [3, 17])
def test_one_shard_fabric_service_order_identical_across_engines(seed):
    """shards=1 fabric serves the same events under every engine."""
    ops = make_flow_ops(2_000, seed)
    runs = {}
    for mode in ENGINES:
        if mode == "vector" and numpy_or_none() is None:
            continue
        fabric = ScheduleFabric(shards=1, granularity=8.0, mode=mode)
        served = []
        for op in ops:
            if op[0] == "push":
                fabric.push(op[1], op[2])
            else:
                served.append(fabric.pop_min())
        runs[mode] = served
    baseline = runs["gate"]
    for mode, served in runs.items():
        assert served == baseline, f"{mode} fabric diverged from gate"


@pytest.mark.parametrize("mode", ["turbo", pytest.param("vector", marks=needs_numpy)])
def test_store_service_order_identical_across_engines(mode, seed=29):
    """HardwareTagStore batched drains agree with the gate engine."""
    ops = make_flow_ops(2_000, seed)
    stores = [
        HardwareTagStore(granularity=8.0, fast_mode=True, mode=engine)
        for engine in ("gate", mode)
    ]
    outputs = []
    for store in stores:
        served = []
        pending = []
        pops = 0
        for op in ops:
            if op[0] == "push":
                if pops:
                    served.extend(store.pop_batch(pops))
                    pops = 0
                pending.append((op[1], op[2]))
            else:
                if pending:
                    store.push_batch(pending)
                    pending = []
                pops += 1
        if pending:
            store.push_batch(pending)
        if pops:
            served.extend(store.pop_batch(pops))
        outputs.append(served)
    assert outputs[0] == outputs[1]
