"""Checkpoint/restore fidelity for the circuit and the tag store.

The contract shard migration relies on: a snapshot restored elsewhere
must serve the exact sequence the original would have served, and a
traced continuation must emit the exact event stream — not just the
same totals — because trace forensics diff restored runs against
originals operation by operation.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.perf import make_mixed_ops
from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT
from repro.net.hardware_store import HardwareTagStore
from repro.obs.tracer import Tracer


def event_fingerprint(event):
    """Everything observable about one event except emission identity.

    Slot addresses are *included*: a faithful restore reproduces the
    storage layout exactly, so even the address-bearing attrs match.
    """
    deltas = {
        name: (stats.reads, stats.writes)
        for name, stats in sorted(event.deltas.items())
    }
    return (event.kind, event.name, tuple(sorted(event.attrs.items())), deltas)


def test_store_snapshot_resumes_with_identical_service_and_trace():
    """5k-op soak: snapshot at the midpoint, restore, and require the
    continued service order AND the continued event stream to match."""
    ops = make_mixed_ops(5_000, 20060101)
    split = len(ops) // 2
    store = HardwareTagStore(granularity=8.0)
    for op in ops[:split]:
        if op[0] == "push":
            store.push(op[1], op[2])
        else:
            store.pop_min()

    # Canonicalize through JSON — checkpoints cross process boundaries.
    state = json.loads(json.dumps(store.to_state()))
    restored = HardwareTagStore.from_state(state)

    tracer_a = Tracer(buffer_size=200_000)
    tracer_b = Tracer(buffer_size=200_000)
    store.attach_tracer(tracer_a)
    restored.attach_tracer(tracer_b)

    served_a, served_b = [], []
    for op in ops[split:]:
        if op[0] == "push":
            store.push(op[1], op[2])
            restored.push(op[1], op[2])
        else:
            served_a.append(store.pop_min())
            served_b.append(restored.pop_min())

    assert served_a == served_b
    assert store.operations == restored.operations
    assert store.cycles == restored.cycles
    events_a = [event_fingerprint(e) for e in tracer_a.events()]
    events_b = [event_fingerprint(e) for e in tracer_b.events()]
    assert events_a == events_b


def test_circuit_snapshot_preserves_drain_order():
    # The bare circuit enforces at-or-above-minimum inserts (clamping
    # is the HardwareTagStore layer), so feed it a sorted load.
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=256)
    for tag in sorted([9, 3, 3, 200, 77, 15, 3, 9]):
        circuit.insert(tag)
    circuit.dequeue_min()
    state = json.loads(json.dumps(circuit.to_state()))
    restored = TagSortRetrieveCircuit.from_state(state)
    drained_a = [circuit.dequeue_min() for _ in range(circuit.count)]
    drained_b = [restored.dequeue_min() for _ in range(restored.count)]
    assert drained_a == drained_b


@settings(max_examples=40, deadline=None)
@given(
    tags=st.lists(
        st.integers(min_value=0, max_value=PAPER_FORMAT.capacity // 2 - 1),
        min_size=1,
        max_size=60,
    ),
    drains=st.integers(min_value=0, max_value=20),
)
def test_circuit_roundtrip_property(tags, drains):
    """Any reachable circuit state survives snapshot → JSON → restore
    with an identical remaining service order."""
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=128)
    for tag in sorted(tags):
        circuit.insert(tag)
    for _ in range(min(drains, circuit.count)):
        circuit.dequeue_min()
    state = json.loads(json.dumps(circuit.to_state()))
    restored = TagSortRetrieveCircuit.from_state(state)
    assert restored.count == circuit.count
    remaining = circuit.count
    assert [circuit.dequeue_min() for _ in range(remaining)] == [
        restored.dequeue_min() for _ in range(remaining)
    ]
