"""Tests for the gate-level matcher netlist."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import reference_search
from repro.core.matching.netlist import (
    Netlist,
    build_matcher_netlist,
    netlist_search,
)
from repro.hwsim.errors import ConfigurationError


class TestNetlistPrimitives:
    def test_and_or_not(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.mark_output("and", netlist.add_gate("AND", a, b))
        netlist.mark_output("or", netlist.add_gate("OR", a, b))
        netlist.mark_output("na", netlist.add_gate("NOT", a))
        out = netlist.evaluate({"a": True, "b": False})
        assert out == {"and": False, "or": True, "na": False}

    def test_depth_counts_gate_levels(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        first = netlist.add_gate("AND", a, b)
        second = netlist.add_gate("OR", first, a)
        netlist.mark_output("out", second)
        assert netlist.depth() == 2

    def test_not_is_free_depth(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        netlist.mark_output("out", netlist.add_gate("NOT", a))
        assert netlist.depth() == 0

    def test_validation(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.add_gate("XANDX", a, a)
        with pytest.raises(ConfigurationError):
            netlist.add_gate("NOT", a, a)
        with pytest.raises(ConfigurationError):
            netlist.add_gate("AND", a)
        with pytest.raises(ConfigurationError):
            netlist.evaluate({})


@pytest.mark.parametrize("topology", ["ripple", "tree"])
class TestMatcherNetlist:
    def test_exhaustive_small_width(self, topology):
        width = 5
        netlist = build_matcher_netlist(width, topology=topology)
        for mask in range(1 << width):
            for target in range(width):
                got = netlist_search(netlist, width, mask, target)
                want = reference_search(mask, width, target)
                assert got == (want.primary, want.backup), (mask, target)

    def test_sampled_16bit(self, topology):
        width = 16
        netlist = build_matcher_netlist(width, topology=topology)
        rng = random.Random(7)
        for _ in range(150):
            mask = rng.getrandbits(width)
            target = rng.randrange(width)
            got = netlist_search(netlist, width, mask, target)
            want = reference_search(mask, width, target)
            assert got == (want.primary, want.backup)

    def test_none_flag(self, topology):
        width = 8
        netlist = build_matcher_netlist(width, topology=topology)
        inputs = {f"m{i}": False for i in range(width)}
        inputs.update({f"t{i}": True for i in range(width)})
        inputs["m7"] = True
        inputs["t7"] = True
        outputs = netlist.evaluate(inputs)
        assert not outputs["none"]
        inputs["m7"] = False
        assert netlist.evaluate(inputs)["none"]


class TestStructuralCosts:
    def test_ripple_depth_is_linear(self):
        for width in (8, 16, 32, 64):
            netlist = build_matcher_netlist(width, topology="ripple")
            # serial suffix-OR chain: exactly width + 2 gate levels
            assert netlist.depth() == width + 2

    def test_tree_depth_is_logarithmic(self):
        depths = {
            width: build_matcher_netlist(width, topology="tree").depth()
            for width in (8, 16, 32, 64)
        }
        # Doubling the width adds one OR level per suffix network.
        assert depths[64] - depths[32] == 2
        assert depths[16] - depths[8] == 2
        assert depths[64] <= 18

    def test_tree_beats_ripple_in_depth_costs_more_gates(self):
        """The fundamental Fig. 7/8 trade, measured structurally."""
        width = 32
        ripple = build_matcher_netlist(width, topology="ripple")
        tree = build_matcher_netlist(width, topology="tree")
        assert tree.depth() < ripple.depth()
        assert tree.gate_count() > ripple.gate_count()

    def test_structural_costs_track_analytic_models(self):
        """The netlist depths sit in the same class as the analytic
        Cost models: ripple-netlist ~ RippleMatcher's linear growth,
        tree-netlist ~ the look-ahead family's logarithmic growth."""
        from repro.core.matching import LookaheadMatcher, RippleMatcher

        width = 32
        ripple_netlist = build_matcher_netlist(width, topology="ripple")
        ratio = RippleMatcher(width).delay() / ripple_netlist.depth()
        assert 0.5 <= ratio <= 4.0  # same asymptotic class
        tree_netlist = build_matcher_netlist(width, topology="tree")
        assert tree_netlist.depth() < RippleMatcher(width).delay() / 3


@settings(max_examples=80, deadline=None)
@given(
    topology=st.sampled_from(["ripple", "tree"]),
    width=st.sampled_from([4, 8, 12]),
    data=st.data(),
)
def test_property_netlist_matches_reference(topology, width, data):
    mask = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    target = data.draw(st.integers(min_value=0, max_value=width - 1))
    netlist = build_matcher_netlist(width, topology=topology)
    got = netlist_search(netlist, width, mask, target)
    want = reference_search(mask, width, target)
    assert got == (want.primary, want.backup)
