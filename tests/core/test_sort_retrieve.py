"""Unit tests for the composed tag sort/retrieve circuit."""

import pytest

from repro.core.sort_retrieve import (
    FIXED_OP_CYCLES,
    TagSortRetrieveCircuit,
)
from repro.core.words import PAPER_FORMAT
from repro.hwsim.errors import (
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)


@pytest.fixture
def circuit():
    return TagSortRetrieveCircuit(PAPER_FORMAT, capacity=64)


@pytest.fixture
def pq_circuit():
    return TagSortRetrieveCircuit(
        PAPER_FORMAT, capacity=64, eager_marker_removal=True
    )


class TestBasicOperation:
    def test_sorted_service(self, circuit):
        for tag in (100, 150, 120, 150, 4000):
            circuit.insert(tag)
        served = [circuit.dequeue_min().tag for _ in range(5)]
        assert served == [100, 120, 150, 150, 4000]

    def test_peek_min_is_free(self, circuit):
        circuit.insert(77)
        before = circuit.total_stats().total
        assert circuit.peek_min() == 77
        assert circuit.total_stats().total == before

    def test_payloads_travel_with_tags(self, circuit):
        circuit.insert(10, payload="first")
        circuit.insert(20, payload="second")
        assert circuit.dequeue_min().payload == "first"
        assert circuit.dequeue_min().payload == "second"

    def test_empty_dequeue_raises(self, circuit):
        with pytest.raises(EmptyStructureError):
            circuit.dequeue_min()

    def test_count_tracking(self, circuit):
        assert circuit.is_empty
        circuit.insert(1)
        circuit.insert(2)
        assert circuit.count == 2
        circuit.dequeue_min()
        assert circuit.count == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TagSortRetrieveCircuit(PAPER_FORMAT, capacity=0)

    def test_modular_requires_deferred(self):
        with pytest.raises(ConfigurationError):
            TagSortRetrieveCircuit(
                PAPER_FORMAT, modular=True, eager_marker_removal=True
            )


class TestFixedTiming:
    def test_every_operation_costs_four_cycles(self, circuit):
        circuit.insert(10)
        circuit.insert(20)
        circuit.dequeue_min()
        circuit.insert_and_dequeue(30)
        assert circuit.operations == 4
        assert circuit.cycles == 4 * FIXED_OP_CYCLES

    def test_storage_traffic_fits_four_accesses_per_op(self, circuit):
        """The tag storage never exceeds the Fig. 9 budget of 4 accesses
        in any single operation."""
        from repro.hwsim.stats import OperationProbe

        probe = OperationProbe()
        tags = [10, 500, 300, 300, 2000, 2000, 2001, 4095]
        for tag in tags:
            with probe.operation(circuit.storage.stats):
                circuit.insert(tag)
        while not circuit.is_empty:
            with probe.operation(circuit.storage.stats):
                circuit.dequeue_min()
        assert probe.worst_case <= 4


class TestWfqInvariantEnforcement:
    def test_below_minimum_rejected_in_paper_mode(self, circuit):
        circuit.insert(100)
        with pytest.raises(ProtocolError):
            circuit.insert(99)

    def test_equal_to_minimum_accepted(self, circuit):
        circuit.insert(100)
        circuit.insert(100)
        assert circuit.count == 2

    def test_eager_mode_accepts_any_order(self, pq_circuit):
        pq_circuit.insert(100)
        pq_circuit.insert(5)
        assert pq_circuit.dequeue_min().tag == 5


class TestDeferredMarkers:
    def test_dequeue_leaves_marker_stale(self, circuit):
        circuit.insert(100)
        circuit.insert(200)
        circuit.dequeue_min()
        # The marker for 100 is still in the tree (deferred deletion)...
        assert circuit.tree.contains(100)
        # ...but can never be returned: any legal key >= 200 finds 200.
        assert circuit.tree.closest_at_most(250) == 200

    def test_stale_markers_flushed_on_reinit(self, circuit):
        """Draining the circuit and restarting at lower tags must flush
        stale markers (initialization mode)."""
        circuit.insert(3000)
        circuit.dequeue_min()
        circuit.insert(100)  # below the stale 3000 marker
        assert not circuit.tree.contains(3000)
        assert circuit.dequeue_min().tag == 100

    def test_eager_mode_removes_markers(self, pq_circuit):
        pq_circuit.insert(100)
        pq_circuit.insert(200)
        pq_circuit.dequeue_min()
        assert not pq_circuit.tree.contains(100)
        pq_circuit.check_invariants()

    def test_eager_duplicate_marker_survives_until_last(self, pq_circuit):
        pq_circuit.insert(100)
        pq_circuit.insert(100)
        pq_circuit.dequeue_min()
        assert pq_circuit.tree.contains(100)
        pq_circuit.dequeue_min()
        assert not pq_circuit.tree.contains(100)


class TestInsertAndDequeue:
    def test_combined_operation(self, circuit):
        circuit.insert(10)
        circuit.insert(30)
        served, _ = circuit.insert_and_dequeue(20)
        assert served.tag == 10
        assert [tag for tag, _ in circuit.storage.walk()] == [20, 30]

    def test_combined_on_empty_raises(self, circuit):
        with pytest.raises(EmptyStructureError):
            circuit.insert_and_dequeue(5)

    def test_combined_respects_invariant(self, circuit):
        circuit.insert(100)
        with pytest.raises(ProtocolError):
            circuit.insert_and_dequeue(50)

    def test_combined_single_element(self, circuit):
        circuit.insert(10)
        served, _ = circuit.insert_and_dequeue(12)
        assert served.tag == 10
        assert circuit.peek_min() == 12
        circuit.check_invariants()


class TestStaleSectionClearing:
    def test_clear_refuses_live_sections(self, circuit):
        circuit.insert(100)  # section 0
        with pytest.raises(ProtocolError):
            circuit.clear_stale_section(0)

    def test_clear_stale_section_counts(self, circuit):
        for tag in (10, 20, 300, 3000):
            circuit.insert(tag)
        for _ in range(3):
            circuit.dequeue_min()  # 10, 20, 300 go stale; 3000 stays live
        removed = circuit.clear_stale_section(0)
        assert removed == 2  # markers 10 and 20 (300 is in section 1)
        assert not circuit.tree.contains(10)
        assert circuit.tree.contains(3000)

    def test_registry_names_every_memory(self, circuit):
        names = set(circuit.registry.names())
        assert {"translation_table", "tag_storage"} <= names
        assert {"tree_level_0", "tree_level_1", "tree_level_2"} <= names
