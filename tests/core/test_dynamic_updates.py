"""Dynamic updates: remove-by-handle and retag on the circuit.

The paper's circuit only ever serves its minimum; a timer wheel or a
flow table also needs to *withdraw* (TCP retransmit cancelled by an ACK)
and *repin* (idle-expiry pushed back by traffic) entries that are not
the head.  These tests pin the handle lifecycle, the paper-faithful
access/cycle accounting of the unlink path, the marker discipline for
duplicate runs, and the batch-contract guarantees the same PR tightened
(raise-before-mutate on over-ask, validate-before-execute on mixed
streams, free-list conservation under churn).
"""

import random

import pytest

from repro.core.sort_retrieve import (
    FIXED_OP_CYCLES,
    TagSortRetrieveCircuit,
)
from repro.core.words import PAPER_FORMAT, WordFormat
from repro.hwsim.errors import (
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)

SMALL_FORMAT = WordFormat(levels=2, literal_bits=3)  # 6-bit, 64 values


def make_circuit(**kwargs):
    kwargs.setdefault("capacity", 64)
    kwargs.setdefault("eager_marker_removal", True)
    return TagSortRetrieveCircuit(SMALL_FORMAT, **kwargs)


class TestRemoveByHandle:
    def test_insert_returns_live_handle(self):
        circuit = make_circuit()
        handle = circuit.insert(17, payload="p")
        assert circuit.is_live_handle(handle)
        assert circuit.handle_tag(handle) == 17
        assert circuit.handle_payload(handle) == "p"
        assert circuit.live_handles == 1

    def test_remove_middle_entry_skips_service(self):
        circuit = make_circuit()
        handles = {tag: circuit.insert(tag) for tag in (10, 20, 30)}
        removed = circuit.remove(handles[20])
        assert removed.tag == 20
        assert [circuit.dequeue_min().tag for _ in range(2)] == [10, 30]
        assert circuit.count == 0

    def test_remove_head_entry(self):
        circuit = make_circuit()
        handles = {tag: circuit.insert(tag) for tag in (10, 20, 30)}
        removed = circuit.remove(handles[10])
        assert removed.tag == 10
        assert circuit.dequeue_min().tag == 20

    def test_remove_tail_entry(self):
        circuit = make_circuit()
        handles = {tag: circuit.insert(tag) for tag in (10, 20, 30)}
        assert circuit.remove(handles[30]).tag == 30
        assert [circuit.dequeue_min().tag for _ in range(2)] == [10, 20]

    def test_stale_handle_raises_without_mutation(self):
        circuit = make_circuit()
        handle = circuit.insert(5)
        circuit.remove(handle)
        reads = circuit.registry.total().reads
        with pytest.raises(ProtocolError):
            circuit.remove(handle)
        assert circuit.registry.total().reads == reads
        assert circuit.count == 0

    def test_served_handle_is_retired(self):
        circuit = make_circuit()
        handle = circuit.insert(5)
        circuit.dequeue_min()
        assert not circuit.is_live_handle(handle)
        with pytest.raises(ProtocolError):
            circuit.remove(handle)

    def test_head_removal_costs_fixed_cycles(self):
        circuit = make_circuit()
        handle = circuit.insert(3)
        circuit.insert(9)
        cycles = circuit.cycles
        circuit.remove(handle)
        assert circuit.cycles - cycles == FIXED_OP_CYCLES

    def test_remove_returns_slot_to_free_list(self):
        # Fresh slots come off the init counter (Fig. 10), so the empty
        # list only holds *returned* links: remove must thread exactly
        # one back on.
        circuit = make_circuit()
        handles = [circuit.insert(tag) for tag in (4, 8, 12)]
        assert circuit.free_list_depth == 0
        circuit.remove(handles[1])
        assert circuit.free_list_depth == 1
        circuit.check_invariants()

    def test_duplicate_run_marker_survives_partial_removal(self):
        # Two links of the same value: removing one must keep the value
        # findable (marker intact) until the last link goes.
        circuit = make_circuit()
        first = circuit.insert(21, payload="a")
        circuit.insert(21, payload="b")
        circuit.insert(40)
        circuit.remove(first)
        served = circuit.dequeue_min()
        assert (served.tag, served.payload) == (21, "b")
        assert circuit.dequeue_min().tag == 40
        circuit.check_invariants()

    def test_removing_last_link_clears_marker(self):
        circuit = make_circuit()
        handle = circuit.insert(21)
        circuit.insert(40)
        circuit.remove(handle)
        # 21's marker must be gone: the closest-match search from above
        # lands on 40, and a fresh insert of 21 works normally.
        assert circuit.dequeue_min().tag == 40
        circuit.insert(21)
        assert circuit.dequeue_min().tag == 21
        circuit.check_invariants()

    def test_drain_by_removal_only(self):
        circuit = make_circuit()
        handles = [circuit.insert(tag) for tag in (1, 2, 3, 4, 5)]
        for handle in handles:
            circuit.remove(handle)
        assert circuit.count == 0
        assert circuit.live_handles == 0
        circuit.check_invariants()
        # The circuit is reusable after a removal-only drain.
        circuit.insert(7)
        assert circuit.dequeue_min().tag == 7


class TestRetag:
    def test_retag_moves_entry_and_keeps_payload(self):
        circuit = make_circuit()
        handle = circuit.insert(30, payload="keep")
        circuit.insert(20)
        new_handle = circuit.retag(handle, 10)
        assert not circuit.is_live_handle(handle) or new_handle == handle
        assert circuit.handle_tag(new_handle) == 10
        served = circuit.dequeue_min()
        assert (served.tag, served.payload) == (10, "keep")

    def test_retag_costs_remove_plus_insert(self):
        circuit = make_circuit()
        handle = circuit.insert(8)
        circuit.insert(16)
        operations = circuit.operations
        circuit.retag(handle, 24)
        assert circuit.operations - operations == 2

    def test_retag_out_of_range_rejected_untouched(self):
        circuit = make_circuit()
        handle = circuit.insert(8)
        cycles = circuit.cycles
        with pytest.raises((ProtocolError, ConfigurationError)):
            circuit.retag(handle, SMALL_FORMAT.max_value + 1)
        assert circuit.cycles == cycles
        assert circuit.handle_tag(handle) == 8

    def test_retag_stale_handle_rejected(self):
        circuit = make_circuit()
        handle = circuit.insert(8)
        circuit.dequeue_min()
        with pytest.raises(ProtocolError):
            circuit.retag(handle, 12)

    def test_retag_churn_preserves_invariants(self):
        circuit = make_circuit(capacity=128)
        rng = random.Random(5)
        live = [circuit.insert(rng.randrange(64)) for _ in range(20)]
        for _ in range(60):
            victim = live.pop(rng.randrange(len(live)))
            live.append(circuit.retag(victim, rng.randrange(64)))
        circuit.check_invariants()
        served = [circuit.dequeue_min().tag for _ in range(circuit.count)]
        assert served == sorted(served)


class TestStateRoundtripWithHandles:
    def test_handles_survive_snapshot_restore(self):
        circuit = make_circuit()
        handles = {tag: circuit.insert(tag) for tag in (10, 20, 30)}
        state = circuit.to_state()
        restored = TagSortRetrieveCircuit.from_state(state)
        assert restored.live_handles == 3
        assert restored.handle_tag(handles[20]) == 20
        removed = restored.remove(handles[20])
        assert removed.tag == 20
        assert [restored.dequeue_min().tag for _ in range(2)] == [10, 30]
        restored.check_invariants()


class TestBatchContracts:
    """The batch-contract sweep: raise-before-mutate, validate-first."""

    def test_dequeue_batch_over_ask_raises_before_mutate(self):
        circuit = make_circuit()
        for tag in (3, 6, 9):
            circuit.insert(tag)
        cycles = circuit.cycles
        reads = circuit.registry.total().reads
        with pytest.raises(EmptyStructureError):
            circuit.dequeue_batch(4)
        # Nothing was served and nothing was charged: the contract is
        # all-or-nothing at both the circuit and storage layers.
        assert circuit.count == 3
        assert circuit.cycles == cycles
        assert circuit.registry.total().reads == reads
        assert [s.tag for s in circuit.dequeue_batch(3)] == [3, 6, 9]

    def test_storage_dequeue_batch_over_ask_raises_before_mutate(self):
        circuit = make_circuit()
        for tag in (3, 6, 9):
            circuit.insert(tag)
        depth = circuit.free_list_depth
        with pytest.raises(EmptyStructureError):
            circuit.storage.dequeue_batch(4)
        assert circuit.free_list_depth == depth
        assert circuit.count == 3

    def test_run_mixed_validates_stream_before_execution(self):
        circuit = make_circuit()
        baseline_state = circuit.to_state()
        with pytest.raises(ConfigurationError):
            circuit.run_mixed(
                [("insert", 5), ("dequeue",), ("defragment",)]
            )
        # The bad trailing op must leave the whole stream unapplied.
        assert circuit.to_state() == baseline_state
        assert circuit.count == 0

    def test_run_mixed_rejects_empty_operation(self):
        circuit = make_circuit()
        with pytest.raises(ConfigurationError):
            circuit.run_mixed([()])
        assert circuit.count == 0

    def test_run_mixed_with_dynamic_updates_matches_per_op(self):
        ops = [
            ("insert", 10, "a"),
            ("insert", 30, "b"),
            ("insert", 20, "c"),
            ("dequeue",),
            ("insert", 25, "d"),
            ("dequeue",),
            ("dequeue",),
        ]
        mixed = make_circuit()
        per_op = make_circuit()
        handle = None
        served_per_op = []
        for op in ops:
            if op[0] == "insert":
                address = per_op.insert(op[1], payload=op[2])
                if op[1] == 30:
                    handle = address
            else:
                served_per_op.append(per_op.dequeue_min())
        per_op.remove(handle)

        mixed_handles = {}
        for op in ops[:3]:
            mixed_handles[op[1]] = None  # addresses assigned in batch
        served_mixed = mixed.run_mixed(ops)
        # Same stream, same service: the batched/coalesced path and the
        # per-op path serve identical (tag, payload) sequences.
        assert [(s.tag, s.payload) for s in served_mixed] == [
            (s.tag, s.payload) for s in served_per_op
        ]

    def test_run_mixed_remove_and_retag_ops(self):
        circuit = make_circuit()
        h_10 = circuit.insert(10)
        h_20 = circuit.insert(20)
        circuit.insert(30)
        served = circuit.run_mixed(
            [
                ("remove", h_20),
                ("insert", 5),
                ("dequeue",),
                ("retag", h_10, 40),
                ("dequeue",),
                ("dequeue",),
            ]
        )
        assert [s.tag for s in served] == [5, 30, 40]
        circuit.check_invariants()


class TestFreeListConservation:
    """Fig. 10: every slot is live or free, under any churn mix."""

    @pytest.mark.parametrize("turbo", [False, True])
    def test_mixed_churn_conserves_slots(self, turbo):
        capacity = 128
        circuit = TagSortRetrieveCircuit(
            SMALL_FORMAT,
            capacity=capacity,
            eager_marker_removal=True,
            turbo=turbo,
        )
        rng = random.Random(11)
        live = []
        # count + free-list depth equals the init counter's high-water
        # mark: it may only grow (a fresh slot handed out), never shrink
        # (a shrink would mean a slot leaked on remove/retag/dequeue).
        allocated = circuit.count + circuit.free_list_depth
        for _ in range(600):
            roll = rng.random()
            if (roll < 0.45 and len(live) < 100) or not live:
                live.append(circuit.insert(rng.randrange(64)))
            elif roll < 0.65:
                circuit.remove(live.pop(rng.randrange(len(live))))
            elif roll < 0.80:
                victim = live.pop(rng.randrange(len(live)))
                live.append(circuit.retag(victim, rng.randrange(64)))
            else:
                served = circuit.dequeue_min()
                live.remove(served.address)
            # The conservation law holds after every single operation.
            total = circuit.count + circuit.free_list_depth
            assert allocated <= total <= capacity
            allocated = total
            assert circuit.live_handles == circuit.count
        circuit.check_invariants()

    def test_batch_and_per_op_paths_share_free_list(self):
        # The batched dequeue path and the per-op remove path recycle
        # through the same Fig. 10 empty list: six slots out, six back.
        circuit = make_circuit(capacity=64)
        handles = circuit.insert_batch([4, 8, 15, 16, 23, 42])
        allocated = circuit.count + circuit.free_list_depth
        assert allocated == 6
        circuit.remove(handles[2])
        assert circuit.count + circuit.free_list_depth == allocated
        circuit.dequeue_batch(2)
        assert circuit.count + circuit.free_list_depth == allocated
        circuit.remove(handles[4])
        circuit.dequeue_batch(circuit.count)
        assert circuit.count == 0
        assert circuit.free_list_depth == allocated
        circuit.check_invariants()
