"""Unit and property tests for the five closest-match circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    ALL_MATCHERS,
    DEFAULT_MATCHER,
    RippleMatcher,
    SelectLookaheadMatcher,
    SkipLookaheadMatcher,
    highest_set_bit,
    reference_search,
)
from repro.core.matching.select_lookahead import optimal_select_block
from repro.core.matching.skip_lookahead import optimal_skip_block
from repro.hwsim.errors import ConfigurationError

MATCHER_ITEMS = sorted(ALL_MATCHERS.items())


class TestReferenceModel:
    def test_exact_match(self):
        result = reference_search(0b0100, 4, 2)
        assert result.primary == 2
        assert result.backup is None

    def test_next_smallest(self):
        result = reference_search(0b0001, 4, 3)
        assert result.primary == 0

    def test_miss(self):
        result = reference_search(0b1000, 4, 2)
        assert result.primary is None
        assert result.backup is None

    def test_backup_is_second_highest(self):
        # bits {0, 2, 3}, target 3 -> primary 3, backup 2
        result = reference_search(0b1101, 4, 3)
        assert result.primary == 3
        assert result.backup == 2

    def test_fig4_third_level_node(self):
        """Fig. 4 step 3: node holds literals {01, 11}; searching 10
        returns the next smallest, 01."""
        node = (1 << 0b01) | (1 << 0b11)
        result = reference_search(node, 4, 0b10)
        assert result.primary == 0b01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reference_search(0b1111, 4, 4)
        with pytest.raises(ConfigurationError):
            reference_search(0b10000, 4, 2)
        with pytest.raises(ConfigurationError):
            reference_search(1, 0, 0)


class TestHighestSetBit:
    def test_positions(self):
        assert highest_set_bit(0b0001, 4) == 0
        assert highest_set_bit(0b1010, 4) == 3
        assert highest_set_bit(0, 4) is None

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            highest_set_bit(0b10000, 4)


@pytest.mark.parametrize("name,cls", MATCHER_ITEMS)
class TestAllCircuitsAgree:
    def test_exhaustive_4bit(self, name, cls):
        matcher = cls(4)
        for mask in range(16):
            for target in range(4):
                got = matcher.search(mask, target)
                want = reference_search(mask, 4, target)
                assert (got.primary, got.backup) == (want.primary, want.backup)

    def test_exhaustive_paper_node_sampled(self, name, cls):
        """16-bit nodes (the silicon width), sampled masks."""
        matcher = cls(16)
        for mask in (0, 1, 0x8000, 0xFFFF, 0xA5A5, 0x0F0F, 0x4001):
            for target in range(16):
                got = matcher.search(mask, target)
                want = reference_search(mask, 16, target)
                assert (got.primary, got.backup) == (want.primary, want.backup)

    def test_validation(self, name, cls):
        matcher = cls(8)
        with pytest.raises(ConfigurationError):
            matcher.search(0, 8)
        with pytest.raises(ConfigurationError):
            matcher.search(1 << 8, 0)
        with pytest.raises(ConfigurationError):
            cls(1)

    def test_cost_is_positive(self, name, cls):
        cost = cls(16).cost()
        assert cost.delay > 0
        assert cost.area > 0


@settings(max_examples=300)
@given(
    name=st.sampled_from([name for name, _ in MATCHER_ITEMS]),
    width_exp=st.integers(min_value=2, max_value=7),
    data=st.data(),
)
def test_property_matches_reference(name, width_exp, data):
    """Every circuit at every power-of-two width equals the reference."""
    width = 1 << width_exp
    mask = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    target = data.draw(st.integers(min_value=0, max_value=width - 1))
    matcher = ALL_MATCHERS[name](width)
    got = matcher.search(mask, target)
    want = reference_search(mask, width, target)
    assert (got.primary, got.backup) == (want.primary, want.backup)


class TestFig7DelayShape:
    """The delay curves of Fig. 7."""

    WIDTHS = (8, 16, 32, 64, 128)

    def test_ripple_is_linear(self):
        delays = [RippleMatcher(w).delay() for w in self.WIDTHS]
        # doubling the width roughly doubles the delay
        for earlier, later in zip(delays, delays[1:]):
            assert later / earlier == pytest.approx(2.0, rel=0.25)

    def test_select_lookahead_never_loses(self):
        """Ref. [13]: select & look-ahead is the fastest option at every
        width in the sweep."""
        for width in self.WIDTHS:
            select_delay = SelectLookaheadMatcher(width).delay()
            for name, cls in MATCHER_ITEMS:
                assert select_delay <= cls(width).delay() + 1e-9, (
                    f"{name} beats select_lookahead at {width} bits"
                )

    def test_all_accelerated_beat_ripple_at_width(self):
        for name, cls in MATCHER_ITEMS:
            if name == "ripple":
                continue
            assert cls(64).delay() < RippleMatcher(64).delay()

    def test_delays_grow_with_width(self):
        for name, cls in MATCHER_ITEMS:
            delays = [cls(w).delay() for w in self.WIDTHS]
            assert delays == sorted(delays)


class TestFig8AreaShape:
    """The area curves of Fig. 8."""

    def test_ripple_is_cheapest(self):
        for name, cls in MATCHER_ITEMS:
            if name == "ripple":
                continue
            assert RippleMatcher(64).area_luts() <= cls(64).area_luts()

    def test_select_is_cheapest_accelerated_option(self):
        """Ref. [13]: select & look-ahead is also the most hardware
        efficient of the accelerated circuits."""
        select_area = SelectLookaheadMatcher(64).area_luts()
        for name, cls in MATCHER_ITEMS:
            if name in ("ripple", "select_lookahead"):
                continue
            assert select_area <= cls(64).area_luts()

    def test_areas_grow_with_width(self):
        for name, cls in MATCHER_ITEMS:
            areas = [cls(w).area_luts() for w in (8, 16, 32, 64, 128)]
            assert areas == sorted(areas)


class TestBlockSizing:
    def test_skip_block_is_sqrt_scaled(self):
        assert optimal_skip_block(8) == 2
        assert optimal_skip_block(32) == 4
        assert optimal_skip_block(128) == 8

    def test_select_block_is_sqrt_scaled(self):
        assert optimal_select_block(8) == 4
        assert optimal_select_block(32) == 8
        assert optimal_select_block(128) == 16

    def test_default_matcher_is_select(self):
        assert DEFAULT_MATCHER is SelectLookaheadMatcher

    def test_skip_matcher_records_block(self):
        assert SkipLookaheadMatcher(32).block_bits == 4
