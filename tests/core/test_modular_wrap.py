"""Tests for the cyclical tag space (paper Fig. 6) — modular mode."""

import pytest

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT, WordFormat
from repro.hwsim.errors import ProtocolError

SMALL = WordFormat(levels=2, literal_bits=3)  # 64-value space, 8 sections


def advance(circuit, tags, serve_all=True):
    """Insert raw tags, clearing sections as a scheduler would."""
    for tag in tags:
        circuit.insert(tag)
    if serve_all:
        while not circuit.is_empty:
            circuit.dequeue_min()


class TestModularOrdering:
    def test_wrapped_values_sort_after_old_lap(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        for tag in (60, 62, 63):
            circuit.insert(tag)
        # Clear section 0 (raw 0..7) and insert wrapped tags.
        circuit.clear_stale_section(0)
        circuit.insert(1)
        circuit.insert(3)
        served = [circuit.dequeue_min().tag for _ in range(5)]
        assert served == [60, 62, 63, 1, 3]
        circuit.check_invariants()

    def test_wrap_insert_between_existing_wrapped(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        circuit.insert(60)
        circuit.clear_stale_section(0)
        circuit.insert(5)
        circuit.insert(2)  # between 60 and 5 in logical order
        served = [circuit.dequeue_min().tag for _ in range(3)]
        assert served == [60, 2, 5]

    def test_sequence_number_guard(self):
        """A tag more than half the space behind the minimum is rejected
        (the wrapped window would be ambiguous)."""
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        circuit.insert(10)
        with pytest.raises(ProtocolError):
            # (50 - 10) % 64 = 40 >= 32: logically "behind".
            circuit.insert(50)

    def test_forward_half_space_is_accepted(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        circuit.insert(10)
        circuit.insert((10 + 31) % 64)  # just inside the window
        assert circuit.count == 2


class TestSectionLifecycle:
    def test_sections_behind_min_are_clearable(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        advance(circuit, [2, 5, 9], serve_all=False)
        circuit.dequeue_min()  # 2
        circuit.dequeue_min()  # 5: section 0 now stale
        removed = circuit.clear_stale_section(0)
        assert removed == 2
        assert circuit.peek_min() == 9

    def test_clearing_live_section_refused(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        circuit.insert(2)
        with pytest.raises(ProtocolError):
            circuit.clear_stale_section(0)

    def test_multiple_laps(self):
        """Drive several complete laps around the tag space with live
        tags crossing every wrap boundary."""
        circuit = TagSortRetrieveCircuit(SMALL, capacity=32, modular=True)
        current = 0
        circuit.insert(0)
        for step in range(300):
            # keep two tags live; advance by 3 raw units each step
            nxt = (current + 3) % 64
            section_ahead = nxt // 8
            if nxt < current:  # wrapped: clear the sections we re-enter
                pass
            # Clear the section we are about to enter if it only holds
            # stale markers (mimics the scheduler's frontier).
            if section_ahead != current // 8:
                try:
                    circuit.clear_stale_section(section_ahead)
                except ProtocolError:
                    pass  # still live — fine
            circuit.insert(nxt)
            served = circuit.dequeue_min()
            current = nxt
            if step % 25 == 0:
                circuit.check_invariants()
        circuit.check_invariants()


class TestHardwareStoreWrap:
    """The HardwareTagStore drives the same machinery from float tags."""

    def test_long_monotone_stream_wraps_cleanly(self):
        from repro.net.hardware_store import HardwareTagStore

        store = HardwareTagStore(fmt=PAPER_FORMAT, granularity=1.0, capacity=64)
        served = []
        tag = 0.0
        for step in range(5000):
            tag += 7.3
            store.push(tag, step)
            if len(store) > 8:
                served.append(store.pop_min()[0])
        served.extend(store.pop_min()[0] for _ in range(len(store)))
        assert served == sorted(served)
        assert store.sections_cleared > 0  # the space wrapped
        store.circuit.check_invariants()

    def test_span_overflow_reported(self):
        from repro.net.hardware_store import HardwareTagStore

        store = HardwareTagStore(fmt=SMALL, granularity=1.0, capacity=64)
        store.push(1.0, 0)
        with pytest.raises(ProtocolError):
            store.push(40.0, 1)  # span 39 >= 32

    def test_clamping_of_behind_min_tags(self):
        from repro.net.hardware_store import HardwareTagStore

        store = HardwareTagStore(fmt=PAPER_FORMAT, granularity=1.0, capacity=64)
        store.push(100.0, 0)
        store.push(90.0, 1)  # behind the minimum: clamped, not rejected
        assert store.clamped_inserts == 1
        first = store.pop_min()
        second = store.pop_min()
        # FCFS within the clamped quantum: the original 100 went first.
        assert first[1] == 0
        assert second[1] == 1
