"""Gate-vs-turbo equivalence for the access-fused turbo engine.

The turbo engine promises *exact* parity with the gate-accurate model:
identical served order, identical cycle and per-structure access
accounting, identical structure state — only the Python work to get
there is fused.  These tests drive both engines with the same
WFQ-legal operation streams (a ``heapq`` shadow keeps every generated
tag ahead of the live minimum) and compare everything observable.
"""

import heapq
import random

import pytest

from repro.core.sort_retrieve import ServedTag, TagSortRetrieveCircuit
from repro.core.tree import MultiBitTree
from repro.core.words import PAPER_FORMAT
from repro.obs.tracer import Tracer


def _registry_snapshot(circuit):
    """Per-structure (reads, writes) — the exact-parity accounting unit."""
    return {
        name: (stats.reads, stats.writes)
        for name, stats in circuit.registry.snapshot_all().items()
    }


def make_wfq_ops(count, seed, *, drift=48):
    """A WFQ-legal op stream for the *non-modular* circuit.

    A ``heapq`` shadow tracks the live minimum so every generated tag is
    clamped to ``max(candidate, current_min)`` — the monotonicity rule
    the circuit enforces — and capped at the word format's maximum.
    """
    rng = random.Random(seed)
    top = PAPER_FORMAT.max_value
    shadow = []
    ops = []
    vt = 0
    while len(ops) < count:
        roll = rng.random()
        if not shadow or (roll < 0.55 and vt < top):
            vt = min(top, vt + rng.randint(0, 6))
            floor = shadow[0] if shadow else 0
            tag = min(top, max(vt + rng.randint(0, drift), floor))
            ops.append(("insert", tag))
            heapq.heappush(shadow, tag)
        elif roll < 0.90 or len(shadow) < 2:
            ops.append(("dequeue",))
            heapq.heappop(shadow)
        else:
            floor = shadow[0]
            tag = min(top, max(floor + rng.randint(0, drift), floor))
            ops.append(("replace", tag))
            heapq.heappop(shadow)
            heapq.heappush(shadow, tag)
    return ops


def _drive(circuit, ops):
    served = []
    for op in ops:
        if op[0] == "insert":
            circuit.insert(op[1], payload=("p", op[1]))
        elif op[0] == "dequeue":
            served.append(circuit.dequeue_min())
        else:
            head, _ = circuit.insert_and_dequeue(op[1], payload=("r", op[1]))
            served.append(head)
    return served


def _fresh(**kwargs):
    return TagSortRetrieveCircuit(PAPER_FORMAT, capacity=1024, **kwargs)


@pytest.mark.parametrize("seed", [1, 17, 20060101])
def test_turbo_parity_full_observables(seed):
    """Served order, cycles, and per-structure accounting all identical."""
    ops = make_wfq_ops(1500, seed)
    gate, turbo = _fresh(), _fresh(turbo=True)
    gate_served = _drive(gate, ops)
    turbo_served = _drive(turbo, ops)
    assert gate_served == turbo_served  # tags, payloads, and addresses
    assert turbo.cycles == gate.cycles
    assert turbo.operations == gate.operations
    assert _registry_snapshot(turbo) == _registry_snapshot(gate)
    assert turbo.peek_min() == gate.peek_min()
    assert turbo.count == gate.count
    # The whole structure state matches, not just the outputs.
    gate_state, turbo_state = gate.to_state(), turbo.to_state()
    assert gate_state["config"].pop("turbo") is False
    assert turbo_state["config"].pop("turbo") is True
    assert turbo_state == gate_state
    turbo.check_invariants()


def test_turbo_drains_identically():
    ops = make_wfq_ops(800, 5)
    gate, turbo = _fresh(), _fresh(turbo=True)
    _drive(gate, ops)
    _drive(turbo, ops)
    while not gate.is_empty:
        assert turbo.dequeue_min() == gate.dequeue_min()
    assert turbo.is_empty
    assert _registry_snapshot(turbo) == _registry_snapshot(gate)


def test_head_cache_hits_on_head_local_ops():
    circuit = _fresh(turbo=True)
    circuit.insert(100)
    circuit.insert(200)
    assert circuit.head_cache_hits == 0
    # Inserting at the current minimum is the cache's bread and butter.
    circuit.insert(100)
    assert circuit.head_cache_hits == 1
    # A head-local replace hits too.
    circuit.insert_and_dequeue(100)
    assert circuit.head_cache_hits == 2
    # A non-head insert walks the trie instead.
    circuit.insert(150)
    assert circuit.head_cache_hits == 2


def test_head_cache_invalidated_when_tree_clears():
    circuit = _fresh(turbo=True)
    circuit.insert(10)
    circuit.insert(10)  # memoizes nothing untraced, but counts the hit
    assert circuit.head_cache_hits == 1
    circuit.dequeue_min()
    circuit.dequeue_min()
    # Storage drained: the next insert flushes stale markers and must
    # drop any memoized head path with them.
    circuit.insert(5)
    assert circuit._head_cache_tag is None
    assert circuit.peek_min() == 5
    circuit.check_invariants()


def test_turbo_toggle_mid_stream_preserves_parity():
    ops = make_wfq_ops(1000, 23)
    reference = _fresh()
    toggled = _fresh()
    ref_served = _drive(reference, ops)
    served = _drive(toggled, ops[:400])
    toggled.turbo = True
    assert toggled.turbo is True
    served += _drive(toggled, ops[400:700])
    toggled.turbo = False
    served += _drive(toggled, ops[700:])
    assert served == ref_served
    assert toggled.cycles == reference.cycles
    assert _registry_snapshot(toggled) == _registry_snapshot(reference)


def test_turbo_engine_choice_survives_checkpoint_crossing():
    """A gate checkpoint restores into a turbo host and vice versa."""
    ops = make_wfq_ops(900, 31)
    gate, turbo = _fresh(), _fresh(turbo=True)
    _drive(gate, ops[:500])
    _drive(turbo, ops[:500])
    # Cross-load: each engine resumes from the *other* engine's snapshot.
    crossed_turbo = _fresh(turbo=True)
    crossed_turbo.load_state(gate.to_state())
    crossed_gate = _fresh()
    crossed_gate.load_state(turbo.to_state())
    tail = ops[500:]
    want = _drive(gate, tail)
    assert _drive(crossed_turbo, tail) == want
    assert _drive(crossed_gate, tail) == want
    assert crossed_turbo.cycles == gate.cycles
    assert _registry_snapshot(crossed_turbo) == _registry_snapshot(gate)
    # from_state honors the snapshot's engine flag.
    revived = TagSortRetrieveCircuit.from_state(turbo.to_state())
    assert revived.turbo is True


def test_traced_turbo_matches_traced_gate_event_for_event():
    ops = make_wfq_ops(600, 41)
    gate_tracer, turbo_tracer = Tracer(), Tracer()
    gate = _fresh(tracer=gate_tracer)
    turbo = _fresh(turbo=True, tracer=turbo_tracer)
    assert _drive(turbo, ops) == _drive(gate, ops)
    gate_events = gate_tracer.events()
    turbo_events = turbo_tracer.events()
    assert len(turbo_events) == len(gate_events)
    for mine, theirs in zip(turbo_events, gate_events):
        assert mine.kind == theirs.kind
        assert mine.name == theirs.name
        assert mine.deltas == theirs.deltas
        assert mine.attrs == theirs.attrs
    assert _registry_snapshot(turbo) == _registry_snapshot(gate)


def test_served_tag_is_immutable_and_hashable():
    tag = ServedTag(tag=7, payload="x", address=3)
    with pytest.raises(AttributeError):
        tag.tag = 8
    assert tag == ServedTag(tag=7, payload="x", address=3)
    assert hash(tag) == hash(ServedTag(tag=7, payload="x", address=3))
    assert tag != ServedTag(tag=7, payload="x", address=4)


# ----------------------------------------------------------------------
# tree-level kernels


def test_closest_fast_matches_search_fast_and_charges_identically():
    rng = random.Random(99)
    values = sorted(rng.sample(range(PAPER_FORMAT.capacity), 200))
    lean, probed = (
        MultiBitTree(PAPER_FORMAT),
        MultiBitTree(PAPER_FORMAT),
    )
    for value in values:
        lean.insert_marker_fast(value)
        probed.insert_marker_fast(value)
    for key in range(0, PAPER_FORMAT.capacity, 7):
        lean_reads = [lean.level_stats(i).reads for i in range(3)]
        probed_reads = [probed.level_stats(i).reads for i in range(3)]
        outcome = probed.search_fast(key)
        closest = lean.closest_fast(key)
        assert closest == outcome.result
        assert lean.last_outcome is None  # the lean path allocates nothing
        # Identical per-level read accounting on both variants.
        assert [
            lean.level_stats(i).reads - lean_reads[i] for i in range(3)
        ] == [
            probed.level_stats(i).reads - probed_reads[i] for i in range(3)
        ]


def test_fast_marker_insert_matches_gate_insert():
    gate, fast = MultiBitTree(PAPER_FORMAT), MultiBitTree(PAPER_FORMAT)
    rng = random.Random(3)
    for value in rng.sample(range(PAPER_FORMAT.capacity), 300):
        assert fast.insert_marker_fast(value) == gate.insert_marker(value)
    assert fast.to_state() == gate.to_state()
    for name in ("search", "search_fast"):
        for key in rng.sample(range(PAPER_FORMAT.capacity), 64):
            assert getattr(fast, name)(key).result == gate.search(key).result
