"""Property-based tests for dynamic updates (hypothesis).

Random interleavings of insert / dequeue / remove / retag are executed
on three engines — gate-accurate per-op, turbo per-op, and the batched
path (coalesced ``insert_batch``/``dequeue_batch`` runs with per-op
dynamic updates, the same shape :meth:`run_mixed` produces) — and on a
plain reference model (a list with FCFS tie-breaking).  Every engine
must serve the same (tag, payload) sequence; gate and turbo must also
agree on exact cycle counts and per-registry access totals, because the
turbo engine fuses accesses without changing what the paper's circuit
would have charged.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import WordFormat

SMALL_FORMAT = WordFormat(levels=2, literal_bits=3)  # 6-bit, 64 values

TAGS = st.integers(min_value=0, max_value=SMALL_FORMAT.max_value)
INDICES = st.integers(min_value=0, max_value=2**20)


@st.composite
def dynamic_streams(draw):
    """Random insert/dequeue/remove/retag interleavings.

    remove/retag carry a raw index that is resolved against the live
    entry list (``index % len(live)``) at execution time, so the same
    abstract stream names the same entries on every engine.
    """
    kinds = st.sampled_from(
        ("insert", "insert", "insert", "dequeue", "remove", "retag")
    )
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=70))):
        kind = draw(kinds)
        if kind == "insert":
            ops.append(("insert", draw(TAGS)))
        elif kind == "dequeue":
            ops.append(("dequeue",))
        elif kind == "remove":
            ops.append(("remove", draw(INDICES)))
        else:
            ops.append(("retag", draw(INDICES), draw(TAGS)))
    return ops


def reference_run(ops):
    """Execute the stream on a plain list model with FCFS ties.

    Entries are ``[tag, arrival, payload]``; payload is the insert
    sequence number, which uniquely identifies each logical entry.
    """
    live = []
    served = []
    seq = 0
    arrival = 0
    for op in ops:
        if op[0] == "insert":
            live.append([op[1], arrival, seq])
            seq += 1
            arrival += 1
        elif op[0] == "dequeue":
            if not live:
                continue
            entry = min(live, key=lambda e: (e[0], e[1]))
            live.remove(entry)
            served.append((entry[0], entry[2]))
        elif op[0] == "remove":
            if not live:
                continue
            live.pop(op[1] % len(live))
        else:  # retag: remove + reinsert => fresh arrival, same payload
            if not live:
                continue
            index = op[1] % len(live)
            live[index] = [op[2], arrival, live[index][2]]
            arrival += 1
    rest = sorted(live, key=lambda e: (e[0], e[1]))
    return served, [(entry[0], entry[2]) for entry in rest]


def engine_run(ops, *, turbo=False, batched=False):
    """Execute the stream on a real circuit; return parity evidence."""
    circuit = TagSortRetrieveCircuit(
        SMALL_FORMAT, capacity=128, eager_marker_removal=True, turbo=turbo
    )
    live = []  # handles in insertion order (retag replaces in place)
    served = []
    seq = 0
    pending_inserts = []
    pending_dequeues = 0

    def flush():
        nonlocal pending_inserts, pending_dequeues
        if pending_inserts:
            live.extend(
                circuit.insert_batch(
                    [tag for tag, _ in pending_inserts],
                    [payload for _, payload in pending_inserts],
                )
            )
            pending_inserts = []
        if pending_dequeues:
            for tag in circuit.dequeue_batch(pending_dequeues):
                served.append((tag.tag, tag.payload))
                live.remove(tag.address)
            pending_dequeues = 0

    def available():
        return len(live) + len(pending_inserts) - pending_dequeues

    for op in ops:
        if op[0] == "insert":
            if batched:
                if pending_dequeues:
                    flush()
                pending_inserts.append((op[1], seq))
            else:
                live.append(circuit.insert(op[1], seq))
            seq += 1
        elif op[0] == "dequeue":
            if available() == 0:
                continue
            if batched:
                if pending_inserts:
                    flush()
                pending_dequeues += 1
            else:
                tag = circuit.dequeue_min()
                served.append((tag.tag, tag.payload))
                live.remove(tag.address)
        elif op[0] == "remove":
            flush()
            if not live:
                continue
            circuit.remove(live.pop(op[1] % len(live)))
        else:  # retag
            flush()
            if not live:
                continue
            index = op[1] % len(live)
            live[index] = circuit.retag(live[index], op[2])
    flush()
    circuit.check_invariants()
    assert circuit.live_handles == circuit.count == len(live)
    rest = [
        (tag.tag, tag.payload)
        for tag in (circuit.dequeue_min() for _ in range(circuit.count))
    ]
    total = circuit.registry.total()
    return {
        "served": served,
        "rest": rest,
        "cycles": circuit.cycles,
        "operations": circuit.operations,
        "accesses": (total.reads, total.writes),
    }


@settings(max_examples=150, deadline=None)
@given(ops=dynamic_streams())
def test_gate_engine_matches_reference_model(ops):
    expected_served, expected_rest = reference_run(ops)
    gate = engine_run(ops)
    assert gate["served"] == expected_served
    assert gate["rest"] == expected_rest


@settings(max_examples=150, deadline=None)
@given(ops=dynamic_streams())
def test_turbo_engine_exact_parity_with_gate(ops):
    """Turbo fuses accesses but must not change *what* is charged:
    identical service order, cycle count, and read/write totals."""
    gate = engine_run(ops)
    turbo = engine_run(ops, turbo=True)
    assert turbo["served"] == gate["served"]
    assert turbo["rest"] == gate["rest"]
    assert turbo["cycles"] == gate["cycles"]
    assert turbo["operations"] == gate["operations"]
    assert turbo["accesses"] == gate["accesses"]


@settings(max_examples=150, deadline=None)
@given(ops=dynamic_streams())
def test_batched_engine_serves_identically(ops):
    """Coalescing insert/dequeue runs into batches (with dynamic
    updates flushing in stream order) must preserve service order —
    batches amortize overhead, they never reorder."""
    gate = engine_run(ops)
    batched = engine_run(ops, batched=True)
    assert batched["served"] == gate["served"]
    assert batched["rest"] == gate["rest"]


@settings(max_examples=100, deadline=None)
@given(ops=dynamic_streams())
def test_handle_accounting_is_exact_under_churn(ops):
    """Every inserted entry is accounted for exactly once: served,
    removed, or still live at the end."""
    circuit = TagSortRetrieveCircuit(
        SMALL_FORMAT, capacity=128, eager_marker_removal=True
    )
    live = []
    inserted = served = removed = 0
    for op in ops:
        if op[0] == "insert":
            live.append(circuit.insert(op[1]))
            inserted += 1
        elif op[0] == "dequeue":
            if not live:
                continue
            live.remove(circuit.dequeue_min().address)
            served += 1
        elif op[0] == "remove":
            if not live:
                continue
            circuit.remove(live.pop(op[1] % len(live)))
            removed += 1
        else:
            if not live:
                continue
            index = op[1] % len(live)
            live[index] = circuit.retag(live[index], op[2])
    assert inserted == served + removed + circuit.count
    assert circuit.live_handles == circuit.count
    circuit.check_invariants()
