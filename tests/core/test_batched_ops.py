"""Batched fast-path engine: equivalence with per-op circuit operation.

The contract of :meth:`TagSortRetrieveCircuit.insert_batch`,
:meth:`dequeue_batch` and :meth:`run_mixed`: identical service order,
identical cycle/operation accounting, identical invariants — only the
bookkeeping cost is amortized.  These tests pin that contract down,
including the fast-mode shadow bypass and the atomic-failure semantics
that distinguish the batched paths from a per-op loop.
"""

import random

import pytest

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT, WordFormat
from repro.hwsim.errors import (
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)

SMALL = WordFormat(levels=2, literal_bits=2)


def drain(circuit):
    return [circuit.dequeue_min() for _ in range(circuit.count)]


class TestInsertBatch:
    def test_service_order_matches_per_op(self):
        rng = random.Random(5)
        tags = [rng.randrange(PAPER_FORMAT.capacity) for _ in range(300)]
        reference = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=512)
        minimum = min(tags)
        # Per-op requires the WFQ monotone property; feed sorted.
        for tag in sorted(tags):
            reference.insert(tag, payload=("p", tag))
        batched = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=512)
        batched.insert_batch(sorted(tags), [("p", t) for t in sorted(tags)])
        assert batched.cycles == reference.cycles
        assert batched.operations == reference.operations
        batched.check_invariants()
        served_ref = [(s.tag, s.payload) for s in drain(reference)]
        served_new = [(s.tag, s.payload) for s in drain(batched)]
        assert served_new == served_ref

    def test_unsorted_input_is_stable_sorted(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=16)
        circuit.insert(0)  # anchor the window minimum
        circuit.insert_batch([9, 3, 9, 3], ["a", "b", "c", "d"])
        circuit.check_invariants()
        served = [(s.tag, s.payload) for s in drain(circuit)]
        # Equal tags keep their submission (FCFS) order.
        assert served == [(0, None), (3, "b"), (3, "d"), (9, "a"), (9, "c")]

    def test_addresses_align_with_input_order(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=16)
        circuit.insert(0)
        addresses = circuit.insert_batch([7, 2, 5], ["x", "y", "z"])
        assert len(addresses) == 3
        by_address = {
            entry.address: (entry.tag, entry.payload)
            for entry in drain(circuit)
        }
        assert by_address[addresses[0]] == (7, "x")
        assert by_address[addresses[1]] == (2, "y")
        assert by_address[addresses[2]] == (5, "z")

    def test_rejected_batch_leaves_circuit_untouched(self):
        circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=16)
        circuit.insert(100)
        before = (circuit.count, circuit.cycles, circuit.operations)
        with pytest.raises(ProtocolError):
            # 50 violates the WFQ monotone invariant mid-batch; the
            # per-op loop would have inserted 200 first.
            circuit.insert_batch([200, 50])
        assert (circuit.count, circuit.cycles, circuit.operations) == before
        circuit.check_invariants()
        assert [s.tag for s in drain(circuit)] == [100]

    def test_capacity_checked_before_any_insert(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=4)
        circuit.insert(1)
        with pytest.raises(CapacityError):
            circuit.insert_batch([2, 3, 4, 5])
        assert circuit.count == 1

    def test_payload_length_mismatch(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8)
        with pytest.raises(ConfigurationError):
            circuit.insert_batch([1, 2], ["only-one"])

    def test_empty_batch_is_noop(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8)
        assert circuit.insert_batch([]) == []
        assert circuit.count == 0 and circuit.cycles == 0

    def test_eager_mode_falls_back_to_per_op(self):
        circuit = TagSortRetrieveCircuit(
            SMALL, capacity=8, eager_marker_removal=True
        )
        circuit.insert_batch([5, 1, 3])
        circuit.check_invariants()
        assert [s.tag for s in drain(circuit)] == [1, 3, 5]

    def test_modular_behind_window_rejected(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8, modular=True)
        circuit.insert(10)
        with pytest.raises(ProtocolError, match="behind the window"):
            # Wrapped distance from the minimum exceeds half the space.
            circuit.insert_batch([(10 + SMALL.capacity // 2) % SMALL.capacity])


class TestDequeueBatch:
    def test_matches_repeated_dequeue_min(self):
        make = lambda: TagSortRetrieveCircuit(PAPER_FORMAT, capacity=64)
        tags = sorted(random.Random(3).randrange(4096) for _ in range(40))
        a, b = make(), make()
        a.insert_batch(tags)
        b.insert_batch(tags)
        per_op = [(s.tag, s.address) for s in (b.dequeue_min() for _ in tags)]
        batch = [(s.tag, s.address) for s in a.dequeue_batch(len(tags))]
        assert batch == per_op
        assert a.cycles == b.cycles and a.operations == b.operations
        a.check_invariants()

    def test_freed_addresses_recycle_identically(self):
        """Interleaving batch dequeues with inserts reuses the same
        storage slots as the per-op discipline (LIFO free list)."""
        make = lambda: TagSortRetrieveCircuit(PAPER_FORMAT, capacity=8)
        a, b = make(), make()
        for circuit in (a, b):
            circuit.insert_batch([10, 20, 30, 40])
        a.dequeue_batch(3)
        for _ in range(3):
            b.dequeue_min()
        addr_a = a.insert_batch([50, 60, 70])
        addr_b = [b.insert(tag) for tag in (50, 60, 70)]
        assert addr_a == addr_b

    def test_validation(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8)
        circuit.insert(1)
        with pytest.raises(ConfigurationError):
            circuit.dequeue_batch(-1)
        with pytest.raises(EmptyStructureError):
            circuit.dequeue_batch(2)
        assert circuit.dequeue_batch(0) == []
        assert circuit.count == 1


class TestRunMixedParity:
    @pytest.mark.parametrize("fast", [False, True])
    def test_randomized_parity(self, fast):
        """run_mixed serves exactly what a per-op loop serves, at the
        same cycle cost, across seeds, in both verification modes."""
        for seed in range(8):
            rng = random.Random(seed)
            operations = []
            tag, live = 0, 0
            for _ in range(300):
                if live and rng.random() < 0.45:
                    operations.append(("dequeue",))
                    live -= 1
                else:
                    tag = min(PAPER_FORMAT.max_value, tag + rng.randrange(40))
                    operations.append(("insert", tag, f"p{len(operations)}"))
                    live += 1
            reference = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=512)
            ref_served = []
            for op in operations:
                if op[0] == "insert":
                    reference.insert(op[1], op[2])
                else:
                    ref_served.append(reference.dequeue_min())
            batched = TagSortRetrieveCircuit(
                PAPER_FORMAT, capacity=512, fast_mode=fast
            )
            served = batched.run_mixed(operations)
            assert [(s.tag, s.payload) for s in served] == [
                (s.tag, s.payload) for s in ref_served
            ]
            assert batched.cycles == reference.cycles
            assert batched.operations == reference.operations
            batched.check_invariants()


class TestFastMode:
    def test_toggle_rebuilds_shadow(self):
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=32, fast_mode=True
        )
        circuit.insert_batch([5, 5, 9, 40])
        circuit.check_invariants()  # shadow comparison skipped
        circuit.fast_mode = False
        circuit.check_invariants()  # shadow rebuilt from storage walk
        circuit.insert(50)
        circuit.check_invariants()
        assert [s.tag for s in drain(circuit)] == [5, 5, 9, 40, 50]

    def test_section_guard_active_without_shadow(self):
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=32, modular=True, fast_mode=True
        )
        circuit.insert(3)
        with pytest.raises(ProtocolError, match="live tags"):
            circuit.clear_stale_section(0)


class TestFlushStaleMarkers:
    def test_refuses_with_live_tags(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8)
        circuit.insert(3)
        with pytest.raises(ProtocolError):
            circuit.flush_stale_markers()

    def test_wipes_markers_after_drain(self):
        circuit = TagSortRetrieveCircuit(SMALL, capacity=8)
        circuit.insert_batch([3, 7])
        circuit.dequeue_batch(2)
        assert not circuit.tree.is_empty  # deferred removal left markers
        circuit.flush_stale_markers()
        assert circuit.tree.is_empty
