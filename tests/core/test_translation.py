"""Unit tests for the translation table, including the Fig. 11 walkthrough."""

import pytest

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.translation import TranslationTable
from repro.core.words import PAPER_FORMAT
from repro.hwsim.errors import ConfigurationError


class TestTranslationTable:
    def test_sizing_matches_word_format(self, paper_format):
        table = TranslationTable(paper_format)
        assert table.entries == 4096

    def test_record_and_lookup(self, paper_format):
        table = TranslationTable(paper_format)
        table.record(100, 7)
        assert table.lookup(100) == 7
        assert table.lookup(101) is None

    def test_record_overwrites_with_newest(self, paper_format):
        """Fig. 11: the entry always tracks the most recent duplicate."""
        table = TranslationTable(paper_format)
        table.record(5, 3)
        table.record(5, 9)
        assert table.lookup(5) == 9

    def test_invalidate(self, paper_format):
        table = TranslationTable(paper_format)
        table.record(5, 3)
        table.invalidate(5)
        assert table.lookup(5) is None

    def test_conditional_invalidate(self, paper_format):
        table = TranslationTable(paper_format)
        table.record(5, 3)
        assert not table.invalidate_if_points_to(5, 99)
        assert table.lookup(5) == 3
        assert table.invalidate_if_points_to(5, 3)
        assert table.lookup(5) is None

    def test_value_validation(self, paper_format):
        table = TranslationTable(paper_format)
        with pytest.raises(ConfigurationError):
            table.record(4096, 0)
        with pytest.raises(ConfigurationError):
            table.record(5, -1)
        with pytest.raises(ConfigurationError):
            table.lookup(-1)

    def test_access_accounting(self, paper_format):
        table = TranslationTable(paper_format)
        table.record(1, 1)
        table.lookup(1)
        assert table.stats.writes == 1
        assert table.stats.reads == 1


class TestFig11Walkthrough:
    """Inserting duplicate tag values through the full circuit:

    Step 1: a second '5' goes in after the existing '5' and the table
    repoints to the newest.  Step 2: a '6' lands after the newest '5'.
    """

    def test_duplicates_keep_fcfs_and_table_tracks_newest(self):
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=16, eager_marker_removal=True
        )
        first_five = circuit.insert(5, payload="five-1")
        second_five = circuit.insert(5, payload="five-2")
        assert first_five != second_five
        assert circuit.translation.lookup(5) == second_five

        six = circuit.insert(6, payload="six")
        # The 6 must sit after the *newest* 5 in the list.
        tags_in_order = [tag for tag, _ in circuit.storage.walk()]
        assert tags_in_order == [5, 5, 6]
        addresses = [address for _, address in circuit.storage.walk()]
        assert addresses == [first_five, second_five, six]

        # Service order: FCFS among the duplicates.
        assert circuit.dequeue_min().payload == "five-1"
        assert circuit.dequeue_min().payload == "five-2"
        assert circuit.dequeue_min().payload == "six"

    def test_search_result_always_valid_with_duplicates(self):
        """'Any result from the search tree will always be valid since
        the corresponding entry in the translation table will always
        indicate the most recently added of any duplicate value.'"""
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=32, eager_marker_removal=True
        )
        for _ in range(5):
            circuit.insert(7)
        circuit.insert(8)
        circuit.check_invariants()
        served = [circuit.dequeue_min().tag for _ in range(6)]
        assert served == [7, 7, 7, 7, 7, 8]
