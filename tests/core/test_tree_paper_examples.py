"""The exact worked examples of paper Figs. 4 and 5.

The figures use a 6-bit/2-bit-literal tree storing the tag markers
001001, 110101, and 110111.
"""

import pytest

from repro.core.tree import MultiBitTree
from repro.core.words import FIGURE_FORMAT

STORED = (0b001001, 0b110101, 0b110111)


@pytest.fixture
def figure_tree():
    tree = MultiBitTree(FIGURE_FORMAT)
    for value in STORED:
        tree.insert_marker(value)
    return tree


class TestFig4:
    """Incoming tag 110110: the search walks 11 -> 01 -> (10 misses,
    next smallest is 01) and returns 110101."""

    def test_closest_match(self, figure_tree):
        outcome = figure_tree.search(0b110110)
        assert outcome.result == 0b110101

    def test_path_follows_figure(self, figure_tree):
        outcome = figure_tree.search(0b110110)
        assert outcome.path_literals == [0b11, 0b01, 0b01]
        assert not outcome.used_backup
        assert not outcome.exact

    def test_insert_after_search_updates_one_node(self, figure_tree):
        """Fig. 4's final step: writing the new marker 110110 touches
        only the third-level node (value 0111 there afterwards)."""
        before = figure_tree.total_stats().writes
        figure_tree.insert_marker(0b110110)
        assert figure_tree.total_stats().writes - before == 1
        # The level-2 node under prefix 1101 now holds literals
        # {01, 10, 11} = bit pattern 1110.
        node = figure_tree._levels[2].peek(0b1101)
        assert node == 0b1110

    def test_exact_match_when_value_present(self, figure_tree):
        outcome = figure_tree.search(0b110101)
        assert outcome.result == 0b110101
        assert outcome.exact


class TestFig5:
    """Searching 110100 fails at the third level (point A); the backup
    path (point B) is taken and, following the largest literals, returns
    the next lowest stored value."""

    def test_search_uses_backup(self, figure_tree):
        outcome = figure_tree.search(0b110100)
        assert outcome.used_backup
        assert outcome.fail_level == 2

    def test_result_is_next_lowest_value(self, figure_tree):
        # Stored values below 110100: only 001001 (110101 > 110100).
        outcome = figure_tree.search(0b110100)
        assert outcome.result == 0b001001

    def test_level1_has_no_backup_so_root_supplies_it(self, figure_tree):
        """In Fig. 5's second level there is 'only one literal in that
        particular node', so the backup comes from the level above."""
        outcome = figure_tree.search(0b110100)
        # The backup descends from the root literal 00 following maximum
        # bits: 00 -> 10 -> 01.
        assert outcome.path_literals == [0b00, 0b10, 0b01]

    def test_point_c_variant(self):
        """Fig. 5 point C: were literals 00 and 10 both present in the
        second level, the level-1 backup would be used instead."""
        tree = MultiBitTree(FIGURE_FORMAT)
        for value in STORED:
            tree.insert_marker(value)
        tree.insert_marker(0b110011)  # adds literal 00 beside 01 in level 1
        outcome = tree.search(0b110100)
        assert outcome.used_backup
        # Backup now stays under the 11 root literal.
        assert outcome.result == 0b110011
        assert outcome.path_literals[0] == 0b11


class TestInitializationMode:
    """'Unless the tree is empty, in which case it will enter an
    initialization mode where only a write to the tree is necessary.'"""

    def test_empty_tree_search_fails_cleanly(self):
        tree = MultiBitTree(FIGURE_FORMAT)
        outcome = tree.search(0b110100)
        assert outcome.result is None
        assert outcome.used_backup

    def test_first_insert_writes_whole_path(self):
        tree = MultiBitTree(FIGURE_FORMAT)
        before = tree.total_stats().writes
        tree.insert_marker(0b110101)
        assert tree.total_stats().writes - before == FIGURE_FORMAT.levels
