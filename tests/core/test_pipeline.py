"""Tests for the cycle-accurate two-stage pipeline model."""

import heapq
import random

import pytest

from repro.core.pipeline import (
    OPERATION_LATENCY_CYCLES,
    STAGE_CYCLES,
    PipelinedSortRetrieve,
)
from repro.core.words import PAPER_FORMAT
from repro.hwsim.errors import ConfigurationError


class TestThroughput:
    def test_one_operation_per_four_cycles_steady_state(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=512)
        for tag in range(0, 400, 4):
            pipeline.submit_insert(tag)
        pipeline.run_until_drained()
        assert pipeline.steady_state_cycles_per_operation() == pytest.approx(
            STAGE_CYCLES
        )

    def test_drain_time_scales_with_operations(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=512)
        count = 100
        for tag in range(count):
            pipeline.submit_insert(min(tag, 4095))
        cycles = pipeline.run_until_drained()
        # N ops: latency of the first + 4 cycles per subsequent op.
        assert cycles == OPERATION_LATENCY_CYCLES + STAGE_CYCLES * (count - 1)

    def test_single_operation_latency(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=512)
        pipeline.submit_insert(42)
        pipeline.run_until_drained()
        assert pipeline.operation_latencies() == [OPERATION_LATENCY_CYCLES]

    def test_first_in_line_latency_is_fixed(self):
        """The fixed-time claim: independent of occupancy, an operation
        issued into an idle pipeline retires in exactly 8 cycles."""
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=4096)
        # Preload heavily.
        for tag in range(0, 2000, 2):
            pipeline.submit_insert(tag)
        pipeline.run_until_drained()
        # Now the structure holds 1000 tags; issue one op into the idle
        # pipeline and measure.
        pipeline.submit_insert(3999)
        pipeline.run_until_drained()
        assert (
            pipeline.operation_latencies()[-1] == OPERATION_LATENCY_CYCLES
        )


class TestPortDiscipline:
    def test_no_port_double_booking_under_full_load(self):
        """tick() raises if the schedule ever double-books a single-port
        memory; a long full-throughput run must stay clean."""
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=4096)
        for tag in range(0, 1200, 3):
            pipeline.submit_insert(tag)
        pipeline.run_until_drained()  # would raise on a conflict
        assert len(pipeline.retired) == 400

    def test_port_traces_cover_the_schedule(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=64)
        pipeline.submit_insert(7)
        pipeline.run_until_drained()
        trace = pipeline.retired[0].port_trace
        assert trace[:4] == [
            "A0:tree_regs",
            "A1:tree_sram",
            "A2:translation",
            "A3:translation",
        ]
        assert trace[4:] == [
            "B0:storage",
            "B1:storage",
            "B2:storage",
            "B3:storage",
        ]

    def test_stages_overlap(self):
        """While op i is in the splice stage, op i+1 occupies the lookup
        stage: both port families are claimed in the same cycle."""
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=64)
        pipeline.submit_insert(10)
        pipeline.submit_insert(20)
        for _ in range(STAGE_CYCLES):
            pipeline.tick()
        # Cycle 4: op0 enters stage B, op1 enters stage A.
        pipeline.tick()
        assert "storage" in pipeline._ports_this_cycle
        assert any(
            port.startswith("tree") for port in pipeline._ports_this_cycle
        )
        pipeline.run_until_drained()


class TestFunctionalEquivalence:
    def test_pipeline_matches_heap_model(self):
        rng = random.Random(4)
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=1024)
        model = []
        sequence = 0
        expected = []  # (kind, expected tag or None) in submission order
        for _ in range(300):
            if model and rng.random() < 0.4:
                pipeline.submit_dequeue()
                expected.append(("dequeue", heapq.heappop(model)[0]))
            else:
                value = rng.randrange(4096)
                pipeline.submit_insert(value, payload=sequence)
                heapq.heappush(model, (value, sequence))
                expected.append(("insert", None))
                sequence += 1
        pipeline.run_until_drained()
        assert len(pipeline.retired) == len(expected)
        for op_record, (kind, expected_tag) in zip(pipeline.retired, expected):
            if kind == "dequeue":
                assert op_record.result.tag == expected_tag
        pipeline.circuit.check_invariants()

    def test_insert_dequeue_combined(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=64)
        pipeline.submit_insert(10)
        pipeline.submit_insert(30)
        pipeline.submit_insert_dequeue(20)
        pipeline.run_until_drained()
        combined = pipeline.retired[-1]
        assert combined.result.tag == 10
        assert pipeline.circuit.peek_min() == 20

    def test_drain_guard(self):
        pipeline = PipelinedSortRetrieve(PAPER_FORMAT, capacity=64)
        pipeline.submit_insert(1)
        with pytest.raises(ConfigurationError):
            pipeline.run_until_drained(max_cycles=0)
