"""Unit and property tests for the multi-bit search tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import ALL_MATCHERS
from repro.core.tree import MultiBitTree, TreeInvariantError
from repro.core.words import FIGURE_FORMAT, PAPER_FORMAT, WordFormat
from repro.hwsim.errors import ConfigurationError


def reference_closest(values, key):
    """Oracle: largest stored value <= key, or None."""
    candidates = [v for v in values if v <= key]
    return max(candidates) if candidates else None


class TestMarkers:
    def test_insert_and_contains(self, paper_format):
        tree = MultiBitTree(paper_format)
        assert tree.insert_marker(100)
        assert tree.contains(100)
        assert not tree.contains(101)
        assert tree.marker_count == 1

    def test_duplicate_insert_returns_false(self, paper_format):
        tree = MultiBitTree(paper_format)
        assert tree.insert_marker(5)
        assert not tree.insert_marker(5)
        assert tree.marker_count == 1

    def test_remove_restores_absence(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(7)
        assert tree.remove_marker(7)
        assert not tree.contains(7)
        assert tree.is_empty

    def test_remove_missing_returns_false(self, paper_format):
        tree = MultiBitTree(paper_format)
        assert not tree.remove_marker(9)

    def test_remove_prunes_only_empty_ancestors(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(0x100)
        tree.insert_marker(0x101)  # shares two levels with 0x100
        tree.remove_marker(0x101)
        assert tree.contains(0x100)
        tree.check_invariants()

    def test_insert_writes_only_missing_nodes(self, paper_format):
        """Fig. 4 step 4: adding a value on an existing path updates one
        node only."""
        tree = MultiBitTree(paper_format)
        tree.insert_marker(0b110101_0000 >> 4 << 4)  # establish a path
        before = tree.total_stats().writes
        # Same first two literals, new third literal: only the leaf node
        # needs a write.
        tree.insert_marker((0b110101_0000 >> 4 << 4) | 1)
        assert tree.total_stats().writes - before == 1

    def test_clear_all(self, paper_format):
        tree = MultiBitTree(paper_format)
        for value in (1, 2, 1000, 4095):
            tree.insert_marker(value)
        tree.clear_all()
        assert tree.is_empty
        tree.check_invariants()


class TestSearch:
    def test_exact_match(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(1234)
        outcome = tree.search(1234)
        assert outcome.result == 1234
        assert outcome.exact
        assert not outcome.used_backup

    def test_empty_tree_returns_none(self, paper_format):
        tree = MultiBitTree(paper_format)
        assert tree.closest_at_most(4095) is None

    def test_no_smaller_value_returns_none(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(3000)
        assert tree.closest_at_most(2999) is None

    def test_search_depth_is_bounded_by_level_count(self, paper_format):
        """The paper's fixed lookup time: at most L sequential node reads
        on the primary path regardless of occupancy (fewer when the
        primary path fails early and the parallel backup finishes), and
        the backup adds at most L-1 parallel reads."""
        tree = MultiBitTree(paper_format)
        for value in range(0, 4096, 37):
            tree.insert_marker(value)
        for key in range(0, 4096, 97):
            outcome = tree.search(key)
            assert 1 <= outcome.sequential_node_reads <= paper_format.levels
            assert outcome.parallel_node_reads <= paper_format.levels - 1
        # A fully successful primary path reads exactly L nodes.
        outcome = tree.search(0)  # 0 is stored: exact match all the way
        assert outcome.sequential_node_reads == paper_format.levels

    def test_randomized_against_oracle(self, paper_format, rng):
        tree = MultiBitTree(paper_format)
        stored = set()
        for _ in range(300):
            value = rng.randrange(4096)
            tree.insert_marker(value)
            stored.add(value)
        for _ in range(500):
            key = rng.randrange(4096)
            assert tree.closest_at_most(key) == reference_closest(stored, key)

    def test_randomized_with_removals(self, paper_format, rng):
        tree = MultiBitTree(paper_format)
        stored = set()
        for _ in range(800):
            if stored and rng.random() < 0.4:
                victim = rng.choice(sorted(stored))
                tree.remove_marker(victim)
                stored.discard(victim)
            else:
                value = rng.randrange(4096)
                tree.insert_marker(value)
                stored.add(value)
            if rng.random() < 0.05:
                tree.check_invariants()
            key = rng.randrange(4096)
            assert tree.closest_at_most(key) == reference_closest(stored, key)

    @pytest.mark.parametrize("name", sorted(ALL_MATCHERS))
    def test_all_matcher_circuits_give_same_searches(self, name, rng):
        tree = MultiBitTree(PAPER_FORMAT, matcher_factory=ALL_MATCHERS[name])
        stored = set()
        for _ in range(150):
            value = rng.randrange(4096)
            tree.insert_marker(value)
            stored.add(value)
        for key in range(0, 4096, 61):
            assert tree.closest_at_most(key) == reference_closest(stored, key)

    def test_min_max_marked(self, paper_format):
        tree = MultiBitTree(paper_format)
        assert tree.min_marked() is None
        for value in (300, 5, 4000):
            tree.insert_marker(value)
        assert tree.min_marked() == 5
        assert tree.max_marked() == 4000

    def test_marked_values_sorted_walk(self, paper_format):
        tree = MultiBitTree(paper_format)
        values = [9, 1, 500, 4095, 256]
        for value in values:
            tree.insert_marker(value)
        assert tree.marked_values() == sorted(values)


class TestBackupPath:
    def test_backup_reads_are_parallel(self, figure_format):
        """The backup search costs bandwidth but not latency."""
        tree = MultiBitTree(figure_format)
        for value in (0b001001, 0b110101, 0b110111):
            tree.insert_marker(value)
        outcome = tree.search(0b110100)
        assert outcome.used_backup
        assert outcome.fail_level == 2
        assert outcome.sequential_node_reads == figure_format.levels
        assert outcome.parallel_node_reads > 0

    def test_backup_from_two_levels_up(self):
        """If the parent node has no backup bit, the node two levels up
        supplies it (Section III-A)."""
        fmt = WordFormat(levels=3, literal_bits=2)
        tree = MultiBitTree(fmt)
        tree.insert_marker(0b00_11_10)  # gives the root a low branch
        tree.insert_marker(0b11_01_11)  # single chain: no level-1 backup
        # Searching 11_01_00 fails at level 2; level 1 has only one
        # literal, so the backup comes from the root.
        assert tree.closest_at_most(0b11_01_00) == 0b00_11_10

    def test_deepest_backup_is_preferred(self):
        fmt = WordFormat(levels=3, literal_bits=2)
        tree = MultiBitTree(fmt)
        tree.insert_marker(0b00_11_11)
        tree.insert_marker(0b11_00_11)
        tree.insert_marker(0b11_10_01)
        # Search 11_10_00: level-2 fails; the deepest backup (level 1,
        # literal 00) wins over the root backup (00).
        assert tree.closest_at_most(0b11_10_00) == 0b11_00_11


class TestSectionClearing:
    def test_clear_section_removes_markers(self, paper_format):
        tree = MultiBitTree(paper_format)
        # Section 0 covers values 0..255.
        for value in (3, 200, 255, 256, 1000):
            tree.insert_marker(value)
        removed = tree.clear_root_section(0)
        assert removed == 3
        assert tree.marked_values() == [256, 1000]
        tree.check_invariants()

    def test_clear_empty_section_is_noop(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(1000)
        assert tree.clear_root_section(0) == 0

    def test_clear_section_validates_literal(self, paper_format):
        tree = MultiBitTree(paper_format)
        with pytest.raises(ConfigurationError):
            tree.clear_root_section(16)

    def test_cleared_section_is_reusable(self, paper_format):
        tree = MultiBitTree(paper_format)
        for value in (10, 20, 300):
            tree.insert_marker(value)
        tree.clear_root_section(0)
        tree.insert_marker(15)
        assert tree.closest_at_most(17) == 15
        tree.check_invariants()


class TestInvariantDetection:
    def test_detects_orphan_bit(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(100)
        # Corrupt: set a root bit with no child subtree.
        root = tree._levels[0].peek(0)
        tree._levels[0].poke(0, root | (1 << 15))
        with pytest.raises(TreeInvariantError):
            tree.check_invariants()

    def test_detects_count_mismatch(self, paper_format):
        tree = MultiBitTree(paper_format)
        tree.insert_marker(100)
        tree._count = 2
        with pytest.raises(TreeInvariantError):
            tree.check_invariants()


@settings(max_examples=150, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=4095), min_size=0, max_size=60
    ),
    keys=st.lists(
        st.integers(min_value=0, max_value=4095), min_size=1, max_size=20
    ),
)
def test_property_closest_match_oracle(values, keys):
    """closest_at_most always equals the brute-force oracle."""
    tree = MultiBitTree(PAPER_FORMAT)
    for value in values:
        tree.insert_marker(value)
    stored = set(values)
    for key in keys:
        assert tree.closest_at_most(key) == reference_closest(stored, key)


@settings(max_examples=100, deadline=None)
@given(
    fmt_shape=st.sampled_from([(2, 2), (3, 2), (2, 4), (4, 3), (6, 1)]),
    data=st.data(),
)
def test_property_all_shapes(fmt_shape, data):
    """The search is shape-independent: any (levels, literal_bits)."""
    levels, literal_bits = fmt_shape
    fmt = WordFormat(levels=levels, literal_bits=literal_bits)
    values = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=fmt.max_value),
            min_size=0,
            max_size=30,
        )
    )
    key = data.draw(st.integers(min_value=0, max_value=fmt.max_value))
    tree = MultiBitTree(fmt)
    for value in values:
        tree.insert_marker(value)
    assert tree.closest_at_most(key) == reference_closest(set(values), key)
    tree.check_invariants()
