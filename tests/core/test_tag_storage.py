"""Unit tests for the tag storage memory (Figs. 9 and 10)."""

import pytest

from repro.core.tag_storage import StorageCorruptionError, TagStorageMemory
from repro.hwsim.errors import (
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
)


class TestFig9Insert:
    """Inserting tag 16 between 15 and 17 costs two reads + two writes."""

    def test_insert_between_links(self):
        memory = TagStorageMemory(8)
        a15 = memory.insert_first(15)
        a17 = memory.insert_after(a15, 17)
        before = memory.stats.snapshot()
        a16 = memory.insert_after(a15, 16)
        delta = memory.stats.delta_since(before)
        # One predecessor read + two writes; the free slot came from the
        # init counter (register), so the "find free location" step needs
        # no memory read yet.
        assert delta.writes == 2
        assert delta.reads <= 2
        assert [tag for tag, _ in memory.walk()] == [15, 16, 17]
        assert {a15, a16, a17} == {0, 1, 2}
        memory.check_invariants()

    def test_insert_costs_two_reads_two_writes_from_empty_list(self):
        """Once the counter is exhausted the full Fig. 9 sequence runs:
        read free location, read predecessor, write both."""
        memory = TagStorageMemory(4)
        memory.insert_first(10)
        for tag in (20, 30, 40):
            memory.insert_after(memory.walk()[-1][1], tag)  # exhaust counter
        memory.dequeue_min()  # frees a slot onto the empty list
        before = memory.stats.snapshot()
        memory.insert_after(memory.head_address, 25)
        delta = memory.stats.delta_since(before)
        assert delta.reads == 2
        assert delta.writes == 2

    def test_insert_order_violation_detected(self):
        memory = TagStorageMemory(8)
        a20 = memory.insert_first(20)
        with pytest.raises(ConfigurationError):
            memory.insert_after(a20, 10)

    def test_duplicate_tags_fcfs(self):
        memory = TagStorageMemory(8)
        a = memory.insert_first(5)
        b = memory.insert_after(a, 5)
        memory.insert_after(b, 5)
        tags = [tag for tag, _ in memory.walk()]
        assert tags == [5, 5, 5]
        served = [memory.dequeue_min()[2] for _ in range(3)]
        assert served == [0, 1, 2]  # arrival order


class TestFig10EmptyList:
    """Twelve locations, nine allocated, four served: the counter reads 9
    and the empty list holds the four served slots."""

    def test_counter_and_empty_list_state(self):
        memory = TagStorageMemory(12)
        head = memory.insert_first(0)
        for tag in range(1, 9):
            memory.insert_after(
                memory.walk()[-1][1], tag
            )
        for _ in range(4):
            memory.dequeue_min()
        assert memory.count == 5
        assert memory.allocations_remaining_in_counter == 3
        assert sorted(memory.empty_list_addresses()) == [0, 1, 2, 3]
        memory.check_invariants()

    def test_next_allocation_uses_counter_first(self):
        memory = TagStorageMemory(12)
        memory.insert_first(0)
        for tag in range(1, 9):
            memory.insert_after(memory.walk()[-1][1], tag)
        for _ in range(4):
            memory.dequeue_min()
        # Counter reads 9: the next tag lands at address 9.
        address = memory.insert_after(memory.walk()[-1][1], 100)
        assert address == 9

    def test_empty_list_reused_after_counter_exhausts(self):
        memory = TagStorageMemory(3)
        head = memory.insert_first(1)
        memory.insert_after(head, 2)
        memory.insert_after(memory.walk()[-1][1], 3)
        tag, _, freed = memory.dequeue_min()
        assert tag == 1
        address = memory.insert_after(memory.walk()[-1][1], 9)
        assert address == freed
        memory.check_invariants()


class TestCapacityAndEmpty:
    def test_capacity_error(self):
        memory = TagStorageMemory(2)
        head = memory.insert_first(1)
        memory.insert_after(head, 2)
        with pytest.raises(CapacityError):
            memory.insert_after(head, 3)

    def test_dequeue_empty(self):
        memory = TagStorageMemory(2)
        with pytest.raises(EmptyStructureError):
            memory.dequeue_min()

    def test_insert_first_requires_empty(self):
        memory = TagStorageMemory(2)
        memory.insert_first(1)
        with pytest.raises(ConfigurationError):
            memory.insert_first(2)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TagStorageMemory(0)


class TestHeadRegisters:
    def test_min_tag_tracks_head(self):
        memory = TagStorageMemory(8)
        memory.insert_first(50)
        assert memory.min_tag == 50
        memory.insert_at_head(40)
        assert memory.min_tag == 40
        memory.dequeue_min()
        assert memory.min_tag == 50

    def test_insert_at_head_validation(self):
        memory = TagStorageMemory(8)
        memory.insert_first(10)
        with pytest.raises(ConfigurationError):
            memory.insert_at_head(11)

    def test_dequeue_gives_tag_payload_address(self):
        memory = TagStorageMemory(8)
        memory.insert_first(10, payload="pkt")
        tag, payload, address = memory.dequeue_min()
        assert (tag, payload, address) == (10, "pkt", 0)
        assert memory.is_empty


class TestReplaceMin:
    """Simultaneous insert + dequeue (Section III-C)."""

    def test_reuses_departing_slot(self):
        memory = TagStorageMemory(4)
        head = memory.insert_first(10)
        memory.insert_after(head, 20)
        served_tag, _, served_address, new_address = memory.replace_min(
            memory.head_address, 15
        )
        assert served_tag == 10
        assert new_address == served_address  # slot reuse
        assert [tag for tag, _ in memory.walk()] == [15, 20]
        memory.check_invariants()

    def test_four_access_budget(self):
        memory = TagStorageMemory(8)
        head = memory.insert_first(10)
        memory.insert_after(head, 20)
        memory.insert_after(memory.walk()[-1][1], 30)
        before = memory.stats.snapshot()
        memory.replace_min(memory.walk()[1][1], 25)
        delta = memory.stats.delta_since(before)
        assert delta.total <= 4

    def test_replace_on_single_element(self):
        memory = TagStorageMemory(4)
        memory.insert_first(10)
        served_tag, _, _, _ = memory.replace_min(None, 12)
        assert served_tag == 10
        assert [tag for tag, _ in memory.walk()] == [12]
        memory.check_invariants()

    def test_new_tag_becomes_head(self):
        memory = TagStorageMemory(4)
        head = memory.insert_first(10)
        memory.insert_after(head, 30)
        memory.replace_min(None, 20)
        assert memory.min_tag == 20
        memory.check_invariants()

    def test_empty_raises(self):
        memory = TagStorageMemory(4)
        with pytest.raises(EmptyStructureError):
            memory.replace_min(None, 5)


class TestInvariantChecks:
    def test_detects_stale_next_tag(self):
        memory = TagStorageMemory(4)
        head = memory.insert_first(10)
        memory.insert_after(head, 20)
        link = memory._memory.peek(head)
        link.next_tag = 99
        with pytest.raises(StorageCorruptionError):
            memory.check_invariants()

    def test_modular_mode_allows_one_wrap(self):
        memory = TagStorageMemory(8, modular=True)
        head = memory.insert_first(4000)
        a = memory.insert_after(head, 4090)
        memory.insert_after(a, 5)  # wrapped: logically after 4090
        memory.check_invariants()
        assert [tag for tag, _ in memory.walk()] == [4000, 4090, 5]

    def test_modular_mode_rejects_double_wrap(self):
        memory = TagStorageMemory(8, modular=True)
        head = memory.insert_first(4000)
        a = memory.insert_after(head, 5)
        b = memory.insert_after(a, 3000)
        memory.insert_after(b, 2)  # second descent: corrupt
        with pytest.raises(StorageCorruptionError):
            memory.check_invariants()
