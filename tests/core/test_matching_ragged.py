"""Non-power-of-two node widths: ragged final blocks in every matcher.

The block-structured circuits (look-ahead groups, skip blocks, select
blocks) all have a partial final block when the width is not a multiple
of their block size; these tests pin that corner.
"""

import random

import pytest

from repro.core.matching import ALL_MATCHERS, reference_search

RAGGED_WIDTHS = (5, 7, 11, 13, 17, 23, 33, 100)


@pytest.mark.parametrize("name", sorted(ALL_MATCHERS))
@pytest.mark.parametrize("width", RAGGED_WIDTHS)
class TestRaggedWidths:
    def test_matches_reference(self, name, width):
        matcher = ALL_MATCHERS[name](width)
        rng = random.Random(width * 1000 + len(name))
        for _ in range(120):
            mask = rng.getrandbits(width)
            target = rng.randrange(width)
            got = matcher.search(mask, target)
            want = reference_search(mask, width, target)
            assert (got.primary, got.backup) == (want.primary, want.backup)

    def test_top_bit_corner(self, name, width):
        """The highest bit lives in the ragged final block."""
        matcher = ALL_MATCHERS[name](width)
        top = width - 1
        mask = 1 << top
        result = matcher.search(mask, top)
        assert result.primary == top
        assert result.backup is None
        result = matcher.search(mask, top - 1) if top else None
        if result is not None:
            assert result.primary is None

    def test_costs_are_finite_and_monotone_with_width(self, name, width):
        matcher = ALL_MATCHERS[name](width)
        bigger = ALL_MATCHERS[name](width + 16)
        assert 0 < matcher.delay() <= bigger.delay() + 1e-9
        assert 0 < matcher.cost().area <= bigger.cost().area + 1e-9
