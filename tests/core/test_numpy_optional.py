"""numpy as a graceful optional dependency.

Every vectorized entry point — ``--mode vector`` and strict bulk
traffic synthesis — must surface a missing numpy as one clear
:class:`ConfigurationError` naming the feature and a remedy, never a
bare ImportError from inside an array kernel.  Non-strict bulk
synthesis falls back to the per-packet path instead.

The absence is simulated by clearing the cached probe in
``repro.core.engine`` plus the module-level mirrors in the traffic
modules, so these tests run whether or not numpy is installed.
"""

import pytest

from repro.core import engine
from repro.core.engine import make_circuit
from repro.core.words import PAPER_FORMAT
from repro.hwsim.errors import ConfigurationError
from repro.net.hardware_store import HardwareTagStore
from repro.traffic import generators, packet_sizes
from repro.traffic.generators import OnOffArrivals, PoissonArrivals, bulk_trace
from repro.traffic.packet_sizes import FixedSize


@pytest.fixture
def no_numpy(monkeypatch):
    """Make every numpy probe in the tree report 'not installed'."""
    monkeypatch.setattr(engine, "_NUMPY", None)
    monkeypatch.setattr(generators, "np", None)
    monkeypatch.setattr(packet_sizes, "np", None)


def test_vector_mode_raises_one_clear_configuration_error(no_numpy):
    with pytest.raises(ConfigurationError) as excinfo:
        make_circuit(PAPER_FORMAT, mode="vector", capacity=64)
    message = str(excinfo.value)
    assert "numpy" in message
    assert "--mode gate" in message  # the remedy is spelled out


def test_vector_store_raises_configuration_error(no_numpy):
    with pytest.raises(ConfigurationError, match="numpy"):
        HardwareTagStore(granularity=8.0, mode="vector")


def test_scalar_engines_unaffected_by_missing_numpy(no_numpy):
    for mode in ("gate", "turbo"):
        circuit = make_circuit(PAPER_FORMAT, mode=mode, capacity=64)
        circuit.insert(5, "a")
        assert circuit.dequeue_min().tag == 5


def test_strict_bulk_synthesis_raises_configuration_error(no_numpy):
    flow = PoissonArrivals(1, 1000.0, FixedSize(140), seed=7)
    with pytest.raises(ConfigurationError, match="numpy"):
        flow.packets_bulk(16, strict=True)
    with pytest.raises(ConfigurationError, match="numpy"):
        bulk_trace([flow], 16, strict=True)


def test_bulk_synthesis_falls_back_to_per_packet_stream(no_numpy):
    bulk = PoissonArrivals(1, 1000.0, FixedSize(140), seed=7)
    scalar = PoissonArrivals(1, 1000.0, FixedSize(140), seed=7)
    # Packet ids are a global counter; compare the synthesized fields.
    def fields(packets):
        return [(p.flow_id, p.size_bytes, p.arrival_time) for p in packets]

    assert fields(bulk.packets_bulk(32)) == fields(scalar.packets(32))


def test_strict_bulk_rejects_processes_with_no_vectorized_form():
    # Independent of numpy availability: on-off has no bulk form, so the
    # strict contract refuses it instead of silently degrading.
    flow = OnOffArrivals(1, 1000.0, FixedSize(140), seed=7)
    with pytest.raises(ConfigurationError, match="no vectorized form"):
        flow.packets_bulk(16, strict=True)
