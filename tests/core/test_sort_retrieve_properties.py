"""Property-based tests for the sort/retrieve circuit (hypothesis).

Three properties drive everything the paper claims about correctness:

1. as a general priority queue (eager mode) the circuit is
   behaviour-equivalent to a reference heap with FCFS tie-breaking;
2. under WFQ-legal workloads (paper mode) service is the sorted order of
   the inserted multiset;
3. internal invariants (list order, translation pointers, marker/tag
   consistency) survive arbitrary legal operation interleavings.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import PAPER_FORMAT, WordFormat

SMALL_FORMAT = WordFormat(levels=2, literal_bits=3)  # 6-bit, 64 values


@st.composite
def operation_sequences(draw):
    """Random interleavings of inserts (value) and dequeues (None)."""
    return draw(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=SMALL_FORMAT.max_value),
                st.none(),
            ),
            min_size=1,
            max_size=80,
        )
    )


@settings(max_examples=200, deadline=None)
@given(operations=operation_sequences())
def test_eager_mode_equals_reference_heap(operations):
    circuit = TagSortRetrieveCircuit(
        SMALL_FORMAT, capacity=128, eager_marker_removal=True
    )
    model = []
    sequence = 0
    for op in operations:
        if op is None:
            if not model:
                continue
            expected_tag, _ = heapq.heappop(model)
            assert circuit.dequeue_min().tag == expected_tag
        else:
            circuit.insert(op)
            heapq.heappush(model, (op, sequence))
            sequence += 1
    circuit.check_invariants()
    remaining = [circuit.dequeue_min().tag for _ in range(circuit.count)]
    expected = [heapq.heappop(model)[0] for _ in range(len(model))]
    assert remaining == expected


@settings(max_examples=200, deadline=None)
@given(
    increments=st.lists(
        st.integers(min_value=0, max_value=15), min_size=1, max_size=60
    ),
    dequeue_pattern=st.lists(st.booleans(), min_size=0, max_size=60),
)
def test_paper_mode_serves_sorted_under_wfq_workload(
    increments, dequeue_pattern
):
    """WFQ-legal workload: each new tag is current-min + a non-negative
    increment.  Within every busy period, service is the sorted multiset
    of that period's inserts (a fresh period may legally restart at lower
    values once the circuit drains — initialization mode)."""
    circuit = TagSortRetrieveCircuit(SMALL_FORMAT, capacity=128)
    pattern = iter(dequeue_pattern + [False] * len(increments))
    periods = [{"inserted": [], "served": []}]
    for increment in increments:
        base = circuit.peek_min()
        if base is None:
            base = 0
            if periods[-1]["inserted"]:
                periods.append({"inserted": [], "served": []})
        tag = min(base + increment, SMALL_FORMAT.max_value)
        circuit.insert(tag)
        periods[-1]["inserted"].append(tag)
        if next(pattern) and not circuit.is_empty:
            periods[-1]["served"].append(circuit.dequeue_min().tag)
    while not circuit.is_empty:
        periods[-1]["served"].append(circuit.dequeue_min().tag)
    for period in periods:
        assert period["served"] == sorted(period["inserted"])
    circuit.check_invariants()


@settings(max_examples=100, deadline=None)
@given(
    tags=st.lists(
        st.integers(min_value=0, max_value=4095), min_size=1, max_size=40
    )
)
def test_fcfs_for_duplicates(tags):
    """Equal tags must depart in arrival order (Section III-C)."""
    circuit = TagSortRetrieveCircuit(
        PAPER_FORMAT, capacity=64, eager_marker_removal=True
    )
    for order, tag in enumerate(tags):
        circuit.insert(tag, payload=order)
    served = [circuit.dequeue_min() for _ in range(len(tags))]
    for earlier, later in zip(served, served[1:]):
        if earlier.tag == later.tag:
            assert earlier.payload < later.payload


@settings(max_examples=100, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.booleans(),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_combined_insert_dequeue_property(operations):
    """insert_and_dequeue atomically serves the pre-insert minimum and
    then stores the new tag — equivalent to a heap pop followed by a
    push, with FCFS tie-breaking."""
    import heapq

    combined = TagSortRetrieveCircuit(SMALL_FORMAT, capacity=128)
    model = []
    sequence = 0
    combined.insert(0)
    heapq.heappush(model, (0, sequence))
    for increment, use_combined in operations:
        base = combined.peek_min() or 0
        tag = min(base + increment, SMALL_FORMAT.max_value)
        if use_combined and not combined.is_empty:
            served, _ = combined.insert_and_dequeue(tag)
            expected_tag, _ = heapq.heappop(model)
            assert served.tag == expected_tag
        else:
            combined.insert(tag)
        sequence += 1
        heapq.heappush(model, (tag, sequence))
    rest = [combined.dequeue_min().tag for _ in range(combined.count)]
    expected_rest = [heapq.heappop(model)[0] for _ in range(len(model))]
    assert rest == expected_rest
    combined.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    increments=st.lists(
        st.integers(min_value=0, max_value=200), min_size=5, max_size=80
    )
)
def test_full_invariant_suite_under_churn(increments):
    """Paper-mode churn with periodic deep invariant verification."""
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=256)
    step = 0
    for increment in increments:
        base = circuit.peek_min() or 0
        tag = min(base + increment, PAPER_FORMAT.max_value)
        circuit.insert(tag)
        step += 1
        if step % 3 == 0 and circuit.count > 1:
            circuit.dequeue_min()
        if step % 7 == 0:
            circuit.check_invariants()
    circuit.check_invariants()
