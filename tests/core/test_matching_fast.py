"""Differential tests: ``search_fast`` against every topology's ``search``.

The bit-parallel kernel (``MatchingCircuit.search_fast``) must compute
exactly the function each of the five structural implementations
computes — primary *and* backup — over the full ``(word_mask, target)``
space, at every supported width, including the empty-word and all-ones
edge cases.  These tests are the parity contract the turbo engine leans
on: the fused hot paths call the kernel instead of the per-bit walk, so
any divergence here would silently corrupt turbo scheduling decisions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import ALL_MATCHERS, reference_search
from repro.hwsim.errors import ConfigurationError

MATCHER_ITEMS = sorted(ALL_MATCHERS.items())

# Widths chosen to hit ragged (non-power-of-two) blocks in the
# skip/select topologies as well as the paper's silicon width (16).
WIDTHS = (2, 3, 4, 5, 7, 8, 12, 16, 31, 64)


@pytest.mark.parametrize("name,cls", MATCHER_ITEMS)
def test_fast_kernel_exhaustive_small_widths(name, cls):
    """Exhaustive equivalence for every mask/target at widths <= 5."""
    for width in (2, 3, 4, 5):
        matcher = cls(width)
        for mask in range(1 << width):
            for target in range(width):
                slow = matcher.search(mask, target)
                fast = matcher.search_fast(mask, target)
                assert (fast.primary, fast.backup) == (
                    slow.primary,
                    slow.backup,
                ), f"{name} w={width} mask={mask:#x} target={target}"


@pytest.mark.parametrize("name,cls", MATCHER_ITEMS)
@pytest.mark.parametrize("width", WIDTHS)
def test_fast_kernel_edge_masks(name, cls, width):
    """Empty word and all-ones word at every supported width."""
    matcher = cls(width)
    full = (1 << width) - 1
    for target in range(width):
        empty = matcher.search_fast(0, target)
        assert empty.primary is None and empty.backup is None
        assert matcher.search(0, target) == empty
        dense = matcher.search_fast(full, target)
        assert dense == matcher.search(full, target)
        # Dense word: primary is always the target itself, backup the
        # literal just below it (None only at literal 0).
        assert dense.primary == target
        assert dense.backup == (target - 1 if target else None)


@settings(max_examples=400)
@given(
    name=st.sampled_from([name for name, _ in MATCHER_ITEMS]),
    width=st.sampled_from(WIDTHS),
    data=st.data(),
)
def test_fast_kernel_differential(name, width, data):
    """Random (word_mask, target): fast == structural == golden model."""
    mask = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    target = data.draw(st.integers(min_value=0, max_value=width - 1))
    matcher = ALL_MATCHERS[name](width)
    fast = matcher.search_fast(mask, target)
    slow = matcher.search(mask, target)
    want = reference_search(mask, width, target)
    assert (fast.primary, fast.backup) == (slow.primary, slow.backup)
    assert (fast.primary, fast.backup) == (want.primary, want.backup)


@pytest.mark.parametrize("name,cls", MATCHER_ITEMS)
def test_fast_kernel_validates_like_search(name, cls):
    matcher = cls(8)
    with pytest.raises(ConfigurationError):
        matcher.search_fast(0, 8)
    with pytest.raises(ConfigurationError):
        matcher.search_fast(0, -1)
    with pytest.raises(ConfigurationError):
        matcher.search_fast(1 << 8, 0)
    with pytest.raises(ConfigurationError):
        matcher.search_fast(-1, 0)
