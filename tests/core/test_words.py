"""Unit tests for word/literal slicing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.words import FIGURE_FORMAT, PAPER_FORMAT, WordFormat
from repro.hwsim.errors import ConfigurationError


class TestWordFormat:
    def test_paper_format_dimensions(self):
        assert PAPER_FORMAT.word_bits == 12
        assert PAPER_FORMAT.branching_factor == 16
        assert PAPER_FORMAT.node_bits == 16
        assert PAPER_FORMAT.max_value == 4095
        assert PAPER_FORMAT.capacity == 4096

    def test_figure_format_dimensions(self):
        assert FIGURE_FORMAT.word_bits == 6
        assert FIGURE_FORMAT.branching_factor == 4

    def test_fig4_literal_slicing(self):
        """The Fig. 4 walkthrough: 110110 -> literals 11, 01, 10."""
        assert FIGURE_FORMAT.literals(0b110110) == [0b11, 0b01, 0b10]

    def test_literal_at(self):
        assert FIGURE_FORMAT.literal_at(0b110110, 0) == 0b11
        assert FIGURE_FORMAT.literal_at(0b110110, 1) == 0b01
        assert FIGURE_FORMAT.literal_at(0b110110, 2) == 0b10

    def test_combine_roundtrip_examples(self):
        for value in (0, 1, 0b110101, 0b111111):
            literals = FIGURE_FORMAT.literals(value)
            assert FIGURE_FORMAT.combine(literals) == value

    def test_prefix_value(self):
        assert FIGURE_FORMAT.prefix_value(0b110110, 0) == 0
        assert FIGURE_FORMAT.prefix_value(0b110110, 1) == 0b11
        assert FIGURE_FORMAT.prefix_value(0b110110, 2) == 0b1101
        assert FIGURE_FORMAT.prefix_value(0b110110, 3) == 0b110110

    def test_value_validation(self):
        with pytest.raises(ConfigurationError):
            PAPER_FORMAT.check_value(-1)
        with pytest.raises(ConfigurationError):
            PAPER_FORMAT.check_value(4096)
        with pytest.raises(ConfigurationError):
            PAPER_FORMAT.check_value("12")  # type: ignore[arg-type]

    def test_invalid_formats(self):
        with pytest.raises(ConfigurationError):
            WordFormat(levels=0, literal_bits=4)
        with pytest.raises(ConfigurationError):
            WordFormat(levels=3, literal_bits=0)

    def test_combine_validation(self):
        with pytest.raises(ConfigurationError):
            FIGURE_FORMAT.combine([1, 2])  # wrong length
        with pytest.raises(ConfigurationError):
            FIGURE_FORMAT.combine([1, 2, 4])  # literal out of range

    @given(st.integers(min_value=0, max_value=4095))
    def test_roundtrip_property(self, value):
        assert PAPER_FORMAT.combine(PAPER_FORMAT.literals(value)) == value

    @given(st.integers(min_value=0, max_value=4095))
    def test_literals_are_in_range(self, value):
        for literal in PAPER_FORMAT.literals(value):
            assert 0 <= literal < PAPER_FORMAT.branching_factor

    @given(
        st.integers(min_value=0, max_value=4095),
        st.integers(min_value=0, max_value=4095),
    )
    def test_ordering_matches_lexicographic_literals(self, a, b):
        """Tag order equals lexicographic literal order — the property
        the tree's top-down closest-match search relies on."""
        assert (a < b) == (PAPER_FORMAT.literals(a) < PAPER_FORMAT.literals(b))
