"""Unit tests for the eq. (2)/(3) sizing math."""

import pytest

from repro.core.sizing import (
    budget_for,
    level_memory_bits,
    mixed_width_tree_bits,
    sweep_configurations,
    total_tree_bits,
    translation_table_entries,
    worst_case_node_searches,
)
from repro.core.words import PAPER_FORMAT, WordFormat
from repro.hwsim.errors import ConfigurationError


class TestEquation2:
    def test_level_memory_matches_paper(self):
        """Eq. (2) at the silicon config: 16, 256, 4096 bits per level."""
        assert level_memory_bits(0, 16) == 16
        assert level_memory_bits(1, 16) == 256
        assert level_memory_bits(2, 16) == 4096

    def test_binary_tree_levels(self):
        assert level_memory_bits(0, 2) == 2
        assert level_memory_bits(3, 2) == 16

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            level_memory_bits(-1, 16)
        with pytest.raises(ConfigurationError):
            level_memory_bits(0, 1)


class TestEquation3:
    def test_total_matches_paper(self):
        """272 register bits + 4096 SRAM bits = 4368 total."""
        assert total_tree_bits(3, 16) == 16 + 256 + 4096

    def test_multibit_beats_binary_on_memory(self):
        """Section III-A: a multi-bit tree needs less memory than a
        binary tree covering the same 12-bit range."""
        multibit = total_tree_bits(3, 16)
        binary = total_tree_bits(12, 2)
        assert multibit < binary

    def test_multibit_beats_binary_on_depth(self):
        assert worst_case_node_searches(3) < worst_case_node_searches(12)


class TestTranslationTable:
    def test_paper_config_needs_4096_entries(self):
        assert translation_table_entries(3, 16) == 4096

    def test_15_bit_variant_needs_32k(self):
        """Section III-A: 32-bit nodes / 15-bit words -> 32k entries."""
        assert translation_table_entries(3, 32) == 32 * 1024


class TestBudget:
    def test_paper_budget(self):
        budget = budget_for(PAPER_FORMAT, register_levels=2)
        assert budget.register_bits == 272
        assert budget.sram_bits == 4096
        assert budget.total_bits == 4368
        assert budget.translation_entries == 4096
        assert budget.word_bits == 12

    def test_register_level_bounds(self):
        with pytest.raises(ConfigurationError):
            budget_for(PAPER_FORMAT, register_levels=4)

    def test_all_register_budget(self):
        budget = budget_for(
            WordFormat(levels=2, literal_bits=2), register_levels=2
        )
        assert budget.sram_bits == 0


class TestSweep:
    def test_sweep_covers_all_factorizations(self):
        budgets = sweep_configurations(12)
        shapes = {(b.fmt.levels, b.fmt.literal_bits) for b in budgets}
        assert (12, 1) in shapes  # binary
        assert (3, 4) in shapes  # the paper's choice
        assert (1, 12) in shapes  # flat bitmap
        assert (2, 6) in shapes

    def test_flat_bitmap_has_one_level_but_big_node(self):
        budgets = {b.fmt.levels: b for b in sweep_configurations(12)}
        assert budgets[1].total_bits == 4096  # one 4096-bit node

    def test_binary_is_the_most_expensive_shape(self):
        """Section III-A: wider nodes need *less* total memory — the
        binary factorization tops the storage ranking while the flat
        bitmap bottoms it; the paper's 3-level shape sits near the flat
        minimum while keeping nodes searchable in one match."""
        budgets = sorted(sweep_configurations(12), key=lambda b: b.fmt.levels)
        totals = [b.total_bits for b in budgets]  # flat ... binary
        assert totals == sorted(totals)
        assert max(totals) == totals[-1]  # binary (12 levels) costs most


class TestMixedWidth:
    def test_equal_width_equivalence(self):
        assert mixed_width_tree_bits([16, 16, 16]) == total_tree_bits(3, 16)

    def test_unequal_widths(self):
        # An 8-32-16 tree covers 2^12 values with a different profile.
        assert mixed_width_tree_bits([8, 32, 16]) == 8 + 8 * 32 + 256 * 16

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            mixed_width_tree_bits([])
        with pytest.raises(ConfigurationError):
            mixed_width_tree_bits([16, 1])
