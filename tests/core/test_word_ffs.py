"""Differential suite for the word primitives in ``core/words.py``.

Three layers are pinned to each other:

* the scalar helpers (``ffs_word``/``fls_word``/``popcount_word``)
  against bit-by-bit reference loops,
* the array helpers (``ffs_array``/``popcount_array``) against the
  scalars, element for element (skipped when numpy is absent),
* the helpers against ``search_fast``: a floor search reimplemented
  from ``fls_word``/``ffs_word`` over the tree's node words must reach
  the same answer as the matcher's inlined bit-twiddling, and the
  ffs-walk minimum must equal ``min`` over the marked set.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import numpy_or_none
from repro.core.tree import MultiBitTree
from repro.core.words import (
    FIGURE_FORMAT,
    PAPER_FORMAT,
    ffs_array,
    ffs_word,
    fls_word,
    popcount_array,
    popcount_word,
)
from repro.hwsim.errors import ConfigurationError

np = numpy_or_none()
needs_numpy = pytest.mark.skipif(np is None, reason="numpy is not installed")

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


def reference_ffs(word: int) -> int:
    for index in range(word.bit_length()):
        if (word >> index) & 1:
            return index
    return -1


def reference_fls(word: int) -> int:
    for index in reversed(range(word.bit_length())):
        if (word >> index) & 1:
            return index
    return -1


def reference_popcount(word: int) -> int:
    return sum((word >> index) & 1 for index in range(word.bit_length()))


@given(WORDS)
def test_ffs_word_matches_reference(word):
    assert ffs_word(word) == reference_ffs(word)


@given(WORDS)
def test_fls_word_matches_reference(word):
    assert fls_word(word) == reference_fls(word)


@given(WORDS)
def test_popcount_word_matches_reference(word):
    assert popcount_word(word) == reference_popcount(word)


@pytest.mark.parametrize("helper", [ffs_word, fls_word, popcount_word])
def test_scalar_helpers_reject_negative_words(helper):
    with pytest.raises(ConfigurationError):
        helper(-1)


@needs_numpy
@given(st.lists(st.integers(min_value=0, max_value=(1 << 62) - 1), min_size=1, max_size=64))
def test_ffs_array_matches_scalar(words):
    out = ffs_array(words, np)
    assert out.tolist() == [ffs_word(word) for word in words]


@needs_numpy
@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=64))
def test_popcount_array_matches_scalar_including_top_bit(words):
    # Build the uint64 array explicitly so top-bit-set bitmap words are
    # exercised (plain asarray would overflow int64 on them).
    lanes = np.array(words, dtype=np.uint64)
    out = popcount_array(lanes, np, bits=64)
    assert out.tolist() == [popcount_word(word) for word in words]


@needs_numpy
@given(st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=64))
def test_popcount_array_node_width_matches_scalar(words):
    out = popcount_array(words, np)
    assert out.tolist() == [popcount_word(word) for word in words]


@needs_numpy
def test_popcount_array_rejects_wide_words():
    with pytest.raises(ConfigurationError):
        popcount_array([1], np, bits=65)


# ----------------------------------------------------------------------
# Differential against the matcher's bit-twiddling.


def floor_via_words(tree, fmt, key):
    """Reimplement the Fig. 5 floor search from the word helpers.

    Walks the node words with ``fls_word`` under the same ≤-mask the
    matcher applies, recording the deepest backup branch; once the path
    diverges below the key, every remaining level takes the highest
    marked literal.  Independent of ``search_fast``'s inlined tricks.
    """
    branching = fmt.branching_factor
    prefix = 0
    backup = None  # (level, prefix, literal) of the deepest usable detour
    diverged = False
    for level in range(fmt.levels):
        word = tree._levels[level].peek(prefix)
        target = fmt.literal_at(key, level) if not diverged else branching - 1
        masked = word & ((2 << target) - 1)
        if masked == 0:
            if backup is None:
                return None
            level, prefix, literal = backup
            backup = None
            diverged = True
            prefix = prefix * branching + literal
            value = prefix
            for lower in range(level + 1, fmt.levels):
                word = tree._levels[lower].peek(prefix)
                literal = fls_word(word)
                prefix = prefix * branching + literal
                value = prefix
            return value
        literal = fls_word(masked)
        if literal != target:
            diverged = True
        elif not diverged:
            below = masked & ~(1 << literal)
            if below:
                backup = (level, prefix, fls_word(below))
        prefix = prefix * branching + literal
    return prefix


def min_via_ffs_walk(tree, fmt):
    """Smallest marked value, by taking ``ffs_word`` at every level."""
    prefix = 0
    for level in range(fmt.levels):
        word = tree._levels[level].peek(prefix)
        literal = ffs_word(word)
        if literal < 0:
            return None
        prefix = prefix * fmt.branching_factor + literal
    return prefix


@settings(max_examples=60)
@given(
    values=st.sets(st.integers(min_value=0, max_value=PAPER_FORMAT.max_value), min_size=1, max_size=64),
    keys=st.lists(st.integers(min_value=0, max_value=PAPER_FORMAT.max_value), min_size=1, max_size=16),
)
def test_word_walk_agrees_with_search_fast_paper_format(values, keys):
    tree = MultiBitTree(PAPER_FORMAT)
    for value in values:
        tree.insert_marker(value)
    assert min_via_ffs_walk(tree, PAPER_FORMAT) == min(values)
    for key in keys:
        expected = max((value for value in values if value <= key), default=None)
        outcome = tree.search_fast(key)
        assert outcome.result == expected
        assert floor_via_words(tree, PAPER_FORMAT, key) == expected


@settings(max_examples=60)
@given(
    values=st.sets(st.integers(min_value=0, max_value=FIGURE_FORMAT.max_value), min_size=1, max_size=16),
    keys=st.lists(st.integers(min_value=0, max_value=FIGURE_FORMAT.max_value), min_size=1, max_size=8),
)
def test_word_walk_agrees_with_search_fast_figure_format(values, keys):
    tree = MultiBitTree(FIGURE_FORMAT)
    for value in values:
        tree.insert_marker(value)
    assert min_via_ffs_walk(tree, FIGURE_FORMAT) == min(values)
    for key in keys:
        expected = max((value for value in values if value <= key), default=None)
        outcome = tree.search_fast(key)
        assert outcome.result == expected
        assert floor_via_words(tree, FIGURE_FORMAT, key) == expected
