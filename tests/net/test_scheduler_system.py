"""Integration tests for the full Fig. 1 hardware WFQ system."""

import pytest

from repro.net import HardwareWFQSystem, out_of_order_service
from repro.net.scheduler_system import DEFAULT_CLOCK_HZ
from repro.sched import Packet, WFQScheduler, simulate
from repro.traffic import voip_video_data_mix


def build_system(scenario, **kwargs):
    system = HardwareWFQSystem(scenario.rate_bps, **kwargs)
    for flow_id, weight in scenario.weights.items():
        system.add_flow(flow_id, weight)
    return system


class TestHardwareWFQSystem:
    def test_delivers_all_packets(self):
        scenario = voip_video_data_mix(packets_per_flow=100, seed=1)
        system = build_system(scenario)
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)
        assert system.dropped == 0
        system.store.circuit.check_invariants()

    def test_close_to_software_wfq_when_fine(self):
        """With a fine quantum the hardware system tracks software WFQ:
        identical per-flow FIFO service, near-identical delays, and its
        extra tag-order inversions are attributable to the clamped
        (behind-minimum) inserts the paper's monotonicity assumption
        glosses over."""
        scenario = voip_video_data_mix(packets_per_flow=60, seed=2)
        hardware = build_system(scenario, granularity=128.0)
        software = WFQScheduler(scenario.rate_bps)
        for flow_id, weight in scenario.weights.items():
            software.add_flow(flow_id, weight)
        hw_result = simulate(hardware, scenario.clone_trace())
        sw_result = simulate(software, scenario.clone_trace())
        hw_inv = out_of_order_service(hw_result)
        sw_inv = out_of_order_service(sw_result)
        # Exact WFQ itself serves out of tag order when small tags arrive
        # late; the hardware adds at most one inversion per clamp.
        assert hw_inv <= sw_inv + hardware.store.clamped_inserts
        hw_mean = sum(p.delay for p in hw_result.packets) / len(
            hw_result.packets
        )
        sw_mean = sum(p.delay for p in sw_result.packets) / len(
            sw_result.packets
        )
        assert hw_mean == pytest.approx(sw_mean, rel=0.15)

    def test_coarse_quantum_increases_inversions(self):
        scenario = voip_video_data_mix(packets_per_flow=150, seed=3)
        fine = build_system(scenario, granularity=128.0)
        coarse = build_system(scenario, granularity=8192.0)
        fine_inv = out_of_order_service(
            simulate(fine, scenario.clone_trace())
        )
        coarse_inv = out_of_order_service(
            simulate(coarse, scenario.clone_trace())
        )
        assert coarse_inv >= fine_inv

    def test_auto_granularity_from_weights(self):
        scenario = voip_video_data_mix(packets_per_flow=10, seed=4)
        system = build_system(scenario)
        assert system.store.granularity > 0
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)

    def test_buffer_overflow_drops(self):
        scenario = voip_video_data_mix(packets_per_flow=200, seed=5)
        system = build_system(scenario, buffer_capacity=16)
        simulate(system, scenario.clone_trace())
        assert system.dropped > 0

    def test_circuit_cycle_accounting(self):
        scenario = voip_video_data_mix(packets_per_flow=50, seed=6)
        system = build_system(scenario)
        simulate(system, scenario.clone_trace())
        operations = system.store.operations
        assert operations == 2 * len(scenario.trace)  # insert + dequeue
        assert system.store.cycles == 4 * operations
        assert system.circuit_busy_seconds == pytest.approx(
            system.store.cycles / DEFAULT_CLOCK_HZ
        )


class TestThroughputClaims:
    """Section IV numbers from the cycle model."""

    def test_35_8_mpps(self):
        system = HardwareWFQSystem(10e6)
        assert system.sustained_packets_per_second() == pytest.approx(
            35.8e6, rel=0.01
        )

    def test_40_gbps_at_140_bytes(self):
        system = HardwareWFQSystem(10e6)
        rate = system.sustained_line_rate_bps(140)
        assert rate == pytest.approx(40e9, rel=0.02)

    def test_factor_4_over_state_of_the_art(self):
        """The paper: 5-10 Gb/s commercial parts -> ~4x improvement."""
        system = HardwareWFQSystem(10e6)
        rate_gbps = system.sustained_line_rate_bps(140) / 1e9
        assert rate_gbps / 10.0 >= 4.0

    def test_mean_size_validation(self):
        system = HardwareWFQSystem(10e6)
        with pytest.raises(Exception):
            system.sustained_line_rate_bps(0)
