"""Integration tests for the full Fig. 1 hardware WFQ system."""

import pytest

from repro.net import HardwareWFQSystem, out_of_order_service
from repro.net.scheduler_system import DEFAULT_CLOCK_HZ
from repro.sched import Packet, WFQScheduler, simulate
from repro.traffic import voip_video_data_mix


def build_system(scenario, **kwargs):
    system = HardwareWFQSystem(scenario.rate_bps, **kwargs)
    for flow_id, weight in scenario.weights.items():
        system.add_flow(flow_id, weight)
    return system


class TestHardwareWFQSystem:
    def test_delivers_all_packets(self):
        scenario = voip_video_data_mix(packets_per_flow=100, seed=1)
        system = build_system(scenario)
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)
        assert system.dropped == 0
        system.store.circuit.check_invariants()

    def test_close_to_software_wfq_when_fine(self):
        """With a fine quantum the hardware system tracks software WFQ:
        identical per-flow FIFO service, near-identical delays, and its
        extra tag-order inversions are attributable to the clamped
        (behind-minimum) inserts the paper's monotonicity assumption
        glosses over."""
        scenario = voip_video_data_mix(packets_per_flow=60, seed=2)
        hardware = build_system(scenario, granularity=128.0)
        software = WFQScheduler(scenario.rate_bps)
        for flow_id, weight in scenario.weights.items():
            software.add_flow(flow_id, weight)
        hw_result = simulate(hardware, scenario.clone_trace())
        sw_result = simulate(software, scenario.clone_trace())
        hw_inv = out_of_order_service(hw_result)
        sw_inv = out_of_order_service(sw_result)
        # Exact WFQ itself serves out of tag order when small tags arrive
        # late; the hardware adds at most one inversion per clamp.
        assert hw_inv <= sw_inv + hardware.store.clamped_inserts
        hw_mean = sum(p.delay for p in hw_result.packets) / len(
            hw_result.packets
        )
        sw_mean = sum(p.delay for p in sw_result.packets) / len(
            sw_result.packets
        )
        assert hw_mean == pytest.approx(sw_mean, rel=0.15)

    def test_coarse_quantum_increases_inversions(self):
        scenario = voip_video_data_mix(packets_per_flow=150, seed=3)
        fine = build_system(scenario, granularity=128.0)
        coarse = build_system(scenario, granularity=8192.0)
        fine_inv = out_of_order_service(
            simulate(fine, scenario.clone_trace())
        )
        coarse_inv = out_of_order_service(
            simulate(coarse, scenario.clone_trace())
        )
        assert coarse_inv >= fine_inv

    def test_auto_granularity_from_weights(self):
        scenario = voip_video_data_mix(packets_per_flow=10, seed=4)
        system = build_system(scenario)
        assert system.store.granularity > 0
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)

    def test_buffer_overflow_drops(self):
        scenario = voip_video_data_mix(packets_per_flow=200, seed=5)
        system = build_system(scenario, buffer_capacity=16)
        simulate(system, scenario.clone_trace())
        assert system.dropped > 0

    def test_circuit_cycle_accounting(self):
        scenario = voip_video_data_mix(packets_per_flow=50, seed=6)
        system = build_system(scenario)
        simulate(system, scenario.clone_trace())
        operations = system.store.operations
        assert operations == 2 * len(scenario.trace)  # insert + dequeue
        assert system.store.cycles == 4 * operations
        assert system.circuit_busy_seconds == pytest.approx(
            system.store.cycles / DEFAULT_CLOCK_HZ
        )


class TestThroughputClaims:
    """Section IV numbers from the cycle model."""

    def test_35_8_mpps(self):
        system = HardwareWFQSystem(10e6)
        assert system.sustained_packets_per_second() == pytest.approx(
            35.8e6, rel=0.01
        )

    def test_40_gbps_at_140_bytes(self):
        system = HardwareWFQSystem(10e6)
        rate = system.sustained_line_rate_bps(140)
        assert rate == pytest.approx(40e9, rel=0.02)

    def test_factor_4_over_state_of_the_art(self):
        """The paper: 5-10 Gb/s commercial parts -> ~4x improvement."""
        system = HardwareWFQSystem(10e6)
        rate_gbps = system.sustained_line_rate_bps(140) / 1e9
        assert rate_gbps / 10.0 >= 4.0

    def test_mean_size_validation(self):
        system = HardwareWFQSystem(10e6)
        with pytest.raises(Exception):
            system.sustained_line_rate_bps(0)


class TestAutoGranularityFreezing:
    """Regression: the auto-sized tag quantum used to freeze at the
    first store access, so flows registered afterwards (especially
    light-weight ones) silently got a quantum derived from an
    incomplete weight table."""

    def expected_granularity(self, system, min_weight):
        worst = system.AUTO_GRANULARITY_MAX_BYTES * 8 / min_weight
        half_space = system._fmt.capacity // 2
        return system.AUTO_GRANULARITY_HEADROOM * worst / half_space

    def test_store_rederived_when_flow_registers_before_first_push(self):
        system = HardwareWFQSystem(1e6)
        system.add_flow(0, weight=1.0)
        # An early probe (e.g. a backlog check) instantiates the store
        # from the incomplete flow table.
        assert system.backlog == 0
        early = system.store.granularity
        assert early == pytest.approx(self.expected_granularity(system, 1.0))
        # Registering a lighter flow before any tag is live must resize.
        system.add_flow(1, weight=0.01)
        late = system.store.granularity
        assert late == pytest.approx(self.expected_granularity(system, 0.01))
        assert late > early

    def test_registration_after_live_tags_rejected(self):
        from repro.hwsim.errors import ConfigurationError

        system = HardwareWFQSystem(1e6)
        system.add_flow(0, weight=1.0)
        system.enqueue(Packet(0, 100, 0.0), now=0.0)
        with pytest.raises(ConfigurationError, match="already"):
            system.add_flow(1, weight=2.0)

    def test_registration_after_drain_still_rejected(self):
        """Even a drained store has frozen its quantum (tags already
        passed through it at the old granularity)."""
        from repro.hwsim.errors import ConfigurationError

        system = HardwareWFQSystem(1e6)
        system.add_flow(0, weight=1.0)
        system.enqueue(Packet(0, 100, 0.0), now=0.0)
        assert system.select_next(1.0) is not None
        assert system.backlog == 0
        with pytest.raises(ConfigurationError):
            system.add_flow(1, weight=2.0)

    def test_explicit_granularity_unaffected(self):
        system = HardwareWFQSystem(1e6, granularity=64.0)
        system.add_flow(0, weight=1.0)
        assert system.backlog == 0
        system.add_flow(1, weight=0.01)
        assert system.store.granularity == 64.0


class TestSystemBatchPaths:
    def test_batched_service_matches_per_op(self):
        scenario = voip_video_data_mix(packets_per_flow=60, seed=9)
        per_op = build_system(scenario)
        trace = scenario.clone_trace()
        for packet in trace:
            per_op.enqueue(packet, packet.arrival_time)
        served_ref = []
        while per_op.backlog:
            served_ref.append(per_op.select_next(1e9).packet_id)

        batched = build_system(scenario, fast_mode=True)
        admitted = batched.enqueue_batch(scenario.clone_trace())
        assert admitted == len(scenario.trace)
        served = [
            p.packet_id for p in batched.select_batch(batched.backlog, 1e9)
        ]
        assert served == served_ref
        assert batched.backlog == 0
        assert batched.store.cycles == per_op.store.cycles
        batched.store.circuit.check_invariants()

    def test_enqueue_batch_counts_drops(self):
        scenario = voip_video_data_mix(packets_per_flow=200, seed=5)
        system = build_system(scenario, buffer_capacity=16, fast_mode=True)
        admitted = system.enqueue_batch(scenario.clone_trace())
        assert system.dropped > 0
        assert admitted + system.dropped == len(scenario.trace)
        assert len(system.store) == admitted

    def test_select_batch_on_empty(self):
        system = HardwareWFQSystem(1e6)
        system.add_flow(0)
        assert system.select_batch(5, now=0.0) == []


class TestStateRoundtrip:
    def test_checkpoint_restore_continues_identical_service(self):
        """to_state/load_state resumes mid-schedule, exactly."""
        import json

        from repro.net.scheduler_system import HardwareWFQSystem

        def build():
            system = HardwareWFQSystem(10e6, granularity=512.0)
            system.add_flow(1, 0.5, guaranteed_rate_bps=5e6)
            system.add_flow(2, 0.3)
            return system

        system = build()
        now = 0.0
        for index in range(60):
            packet = Packet(
                flow_id=1 + index % 2,
                size_bytes=100 + index,
                arrival_time=now,
            )
            system.enqueue(packet, now)
            now += 1e-4
        for _ in range(20):
            system.select_next(now)
        state = json.loads(json.dumps(system.to_state()))
        restored = build()
        restored.load_state(state)
        assert restored.backlog == system.backlog
        assert restored.dropped == system.dropped
        # Both serve the identical remaining stream.
        while system.backlog:
            left = system.select_next(now)
            right = restored.select_next(now)
            assert right is not None
            assert (left.flow_id, left.size_bytes, left.finish_tag) == (
                right.flow_id,
                right.size_bytes,
                right.finish_tag,
            )

    def test_load_state_rejects_mismatched_link(self):
        import json

        from repro.hwsim.errors import ConfigurationError
        from repro.net.scheduler_system import HardwareWFQSystem

        system = HardwareWFQSystem(10e6, granularity=64.0)
        state = json.loads(json.dumps(system.to_state()))
        other = HardwareWFQSystem(20e6, granularity=64.0)
        with pytest.raises(ConfigurationError):
            other.load_state(state)
