"""Timer-wheel workload tests (``repro.net.timer``).

The wheel is the insert/cancel-heavy face of the circuit: most timers
never fire — they are cancelled or repinned — so these tests pin the
token lifecycle (tokens survive reset, die with cancel/fire), deadline
ordering of everything that does fire, timer conservation across all
three scenario families, store/fabric backend parity of the facade, and
the ``python -m repro timer`` CLI contract.
"""

import json

import pytest

from repro.fabric.fabric import ScheduleFabric
from repro.hwsim.errors import ProtocolError
from repro.net.hardware_store import HardwareTagStore
from repro.net.timer import (
    PATTERNS,
    TimerWheel,
    main,
    run_timer_soak,
)


def make_wheel(**kwargs):
    return TimerWheel(HardwareTagStore(**kwargs))


class TestTimerWheel:
    def test_arm_and_fire_in_deadline_order(self):
        # Arms stay at-or-above the live minimum — a behind-minimum arm
        # would be clamped up to it (Section III-A), tested separately.
        wheel = make_wheel()
        wheel.arm(10.0, "a")
        wheel.arm(30.0, "b")
        wheel.arm(20.0, "c")
        due = wheel.expire_until(25.0)
        assert [timer_id for _, timer_id in due] == ["a", "c"]
        assert [deadline for deadline, _ in due] == [10.0, 20.0]
        assert wheel.pending == 1
        assert wheel.fired == 2

    def test_expire_until_leaves_future_timers(self):
        wheel = make_wheel()
        wheel.arm(100.0, 1)
        assert wheel.expire_until(50.0) == []
        assert wheel.pending == 1

    def test_cancel_disarms_and_returns_id(self):
        wheel = make_wheel()
        token = wheel.arm(10.0, "rto-7")
        assert wheel.cancel(token) == "rto-7"
        assert wheel.pending == 0
        assert wheel.cancelled == 1
        assert wheel.expire_until(float("inf")) == []

    def test_cancel_spent_token_raises(self):
        wheel = make_wheel()
        token = wheel.arm(10.0, 1)
        wheel.cancel(token)
        with pytest.raises(ProtocolError):
            wheel.cancel(token)

    def test_fired_token_is_spent(self):
        wheel = make_wheel()
        token = wheel.arm(10.0, 1)
        wheel.expire_until(20.0)
        with pytest.raises(ProtocolError):
            wheel.cancel(token)
        with pytest.raises(ProtocolError):
            wheel.reset(token, 30.0)

    def test_reset_keeps_token_moves_deadline(self):
        wheel = make_wheel()
        token = wheel.arm(10.0, "flow")
        assert wheel.reset(token, 100.0) == token
        assert wheel.expire_until(50.0) == []
        assert wheel.expire_until(150.0) == [(100.0, "flow")]
        assert wheel.repinned == 1

    def test_token_survives_many_resets(self):
        wheel = make_wheel()
        token = wheel.arm(10.0, "flow")
        for deadline in (40.0, 70.0, 25.0, 90.0):
            assert wheel.reset(token, deadline) == token
        assert wheel.cancel(token) == "flow"

    def test_reset_can_pull_deadline_earlier(self):
        wheel = make_wheel()
        late = wheel.arm(100.0, "late")
        wheel.reset(late, 20.0)
        wheel.arm(50.0, "mid")
        due = wheel.expire_until(float("inf"))
        assert [timer_id for _, timer_id in due] == ["late", "mid"]
        assert [deadline for deadline, _ in due] == [20.0, 50.0]

    def test_behind_minimum_arm_clamps_to_head_quantum(self):
        # The circuit refuses to serve a tag behind its live minimum:
        # the store clamps it up to the minimum's quantum and serves it
        # FCFS there.  The wheel's effective-deadline ledger records the
        # lift, so the order check stays sound.
        wheel = make_wheel()
        wheel.arm(100.0, "head")
        wheel.arm(10.0, "late-arm")
        assert wheel.backend.clamped_inserts == 1
        due = wheel.expire_until(float("inf"))
        assert [timer_id for _, timer_id in due] == ["head", "late-arm"]
        assert wheel.fired_effective == [100.0, 100.0]

    def test_conservation_counters(self):
        wheel = make_wheel()
        tokens = [wheel.arm(10.0 * (i + 1), i) for i in range(6)]
        wheel.cancel(tokens[0])
        wheel.reset(tokens[1], 200.0)
        wheel.expire_until(45.0)  # fires tokens 2..3 (10 was cancelled)
        assert wheel.armed == 6
        assert wheel.armed == wheel.fired + wheel.cancelled + wheel.pending

    def test_fabric_backend_same_facade(self):
        wheel = TimerWheel(ScheduleFabric(shards=4))
        tokens = [wheel.arm(10.0 * (i + 1), i) for i in range(8)]
        wheel.cancel(tokens[3])
        wheel.reset(tokens[0], 500.0)
        due = wheel.expire_until(float("inf"))
        deadlines = [deadline for deadline, _ in due]
        assert deadlines == sorted(deadlines)
        assert wheel.armed == wheel.fired + wheel.cancelled + wheel.pending
        assert wheel.pending == 0


class TestScenarioFamilies:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_pattern_orders_and_conserves(self, pattern):
        run = run_timer_soak(pattern=pattern, events=1_500, seed=7)
        assert run.served_in_order
        assert run.conserved
        assert run.armed > 0
        assert run.fired + run.cancelled + run.pending == run.armed

    def test_churn_exercises_every_verb(self):
        run = run_timer_soak(pattern="churn", events=2_000, seed=11)
        assert run.cancelled > 0
        assert run.repinned > 0
        assert run.fired > 0

    def test_retransmit_acks_cancel_more_than_they_repin(self):
        # 80% of in-time ACKs cancel, 15% repin (backoff); with 256
        # connections many timers also fire before the next touch, so
        # the guaranteed shape is cancel >> repin, not cancel > fire.
        run = run_timer_soak(pattern="retransmit", events=3_000, seed=3)
        assert run.cancelled > run.repinned
        assert run.cancelled > 0 and run.fired > 0

    def test_expiry_is_repin_dominated(self):
        run = run_timer_soak(pattern="expiry", events=3_000, seed=3)
        assert run.repinned > run.fired

    def test_deterministic_per_seed(self):
        first = run_timer_soak(pattern="churn", events=1_000, seed=42)
        second = run_timer_soak(pattern="churn", events=1_000, seed=42)
        assert first.fired_deadlines == second.fired_deadlines
        assert first.cycles == second.cycles

    def test_gate_turbo_exact_parity(self):
        gate = run_timer_soak(pattern="churn", events=1_500, seed=9)
        turbo = run_timer_soak(
            pattern="churn", events=1_500, seed=9, turbo=True
        )
        assert turbo.fired_deadlines == gate.fired_deadlines
        assert turbo.cycles == gate.cycles
        assert turbo.operations == gate.operations
        assert (turbo.armed, turbo.cancelled, turbo.repinned) == (
            gate.armed,
            gate.cancelled,
            gate.repinned,
        )

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_fabric_backend_orders_and_conserves(self, pattern):
        run = run_timer_soak(pattern=pattern, events=1_500, seed=7, shards=4)
        assert run.served_in_order
        assert run.conserved

    def test_monitored_soak_is_clean(self):
        run = run_timer_soak(
            pattern="churn", events=1_000, seed=5, monitor=True
        )
        assert run.monitors is not None
        assert run.monitors.ok
        assert run.monitors.checked > 0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            run_timer_soak(pattern="nonesuch")

    def test_to_document_shape(self):
        run = run_timer_soak(pattern="churn", events=500, seed=1)
        document = run.to_document()
        assert document["workload"]["pattern"] == "churn"
        assert document["checks"] == {
            "served_in_order": True,
            "conserved": True,
        }
        assert document["timers"]["armed"] == run.armed


class TestCli:
    def test_text_report(self, capsys, tmp_path):
        assert main(["--events", "500", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "timer soak" in out
        assert "fired in deadline order: True" in out

    def test_json_output_file(self, tmp_path):
        target = tmp_path / "run.json"
        status = main(
            [
                "--pattern",
                "retransmit",
                "--events",
                "500",
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert status == 0
        document = json.loads(target.read_text())
        assert document["workload"]["pattern"] == "retransmit"
        assert document["checks"]["conserved"] is True

    def test_monitored_run_reports_suite(self, tmp_path):
        target = tmp_path / "run.json"
        status = main(
            [
                "--events",
                "500",
                "--monitor",
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert status == 0
        document = json.loads(target.read_text())
        assert document["monitors"]["ok"] is True
        assert document["monitors"]["violations"] == []

    def test_trace_sink_written(self, tmp_path):
        sink = tmp_path / "timer.jsonl"
        assert main(["--events", "300", "--trace", str(sink)]) == 0
        lines = sink.read_text().splitlines()
        assert lines, "trace file must not be empty"
        header = json.loads(lines[0])
        assert header["purpose"] == "timer_churn"

    def test_dispatch_through_repro_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["timer", "--events", "300"]) == 0
        assert "timer soak" in capsys.readouterr().out


class TestTimerLivePlane:
    def test_serve_attaches_live_plane_and_auditor(self):
        run = run_timer_soak(
            pattern="churn",
            events=2_000,
            seed=7,
            monitor=True,
            serve_port=0,
        )
        assert run.live is not None
        assert run.live["windows"] >= 1
        assert run.auditor is not None
        assert run.auditor.serves > 0
        document = run.to_document()
        assert "live" in document
        assert document["serve_audit"]["inversions"] == run.auditor.inversions
        assert "live plane" in run.report()

    def test_serve_over_sharded_backend(self):
        run = run_timer_soak(
            pattern="expiry", events=1_500, seed=3, shards=2, serve_port=0
        )
        assert run.live is not None
        assert run.conserved
