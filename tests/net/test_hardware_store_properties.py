"""Property-based tests for the hardware tag store (hypothesis).

The adapter must stay consistent under *any* tag stream a scheduler
could emit: drifting forward over many laps, jittering backward within
the window, regressing arbitrarily far (the case raw serial-number
comparison aliases), and draining to empty between busy periods.
"""

from hypothesis import given, settings, strategies as st

from repro.core.words import PAPER_FORMAT
from repro.net.hardware_store import HardwareTagStore


@st.composite
def tag_streams(draw):
    """A stream of (advance, pop?) steps; advances may be negative."""
    return draw(
        st.lists(
            st.tuples(
                st.one_of(
                    st.floats(min_value=0.0, max_value=50.0),
                    # occasional regressions, sometimes huge (aliasing)
                    st.floats(min_value=-5000.0, max_value=0.0),
                ),
                st.booleans(),
            ),
            min_size=1,
            max_size=250,
        )
    )


@settings(max_examples=120, deadline=None)
@given(stream=tag_streams())
def test_store_never_corrupts(stream):
    """Any advance/regress/pop interleaving leaves invariants intact and
    service monotone in unwrapped quanta (up to the clamp rule)."""
    store = HardwareTagStore(
        fmt=PAPER_FORMAT, granularity=1.0, capacity=512
    )
    tag = 0.0
    payload = 0
    popped = 0
    for advance, pop in stream:
        tag = max(0.0, tag + advance)
        store.push(tag, payload)
        payload += 1
        if pop and len(store):
            store.pop_min()
            popped += 1
    store.circuit.check_invariants()
    # Conservation: everything pushed is live or was popped.
    assert len(store) + popped == payload


@settings(max_examples=60, deadline=None)
@given(
    advances=st.lists(
        st.floats(min_value=0.1, max_value=40.0), min_size=10, max_size=300
    ),
    backlog=st.integers(min_value=1, max_value=16),
)
def test_monotone_stream_serves_in_order(advances, backlog):
    """With a strictly forward tag stream, pops come out sorted even
    across many wraps of the raw space."""
    store = HardwareTagStore(
        fmt=PAPER_FORMAT, granularity=1.0, capacity=64
    )
    tag = 0.0
    served = []
    for index, advance in enumerate(advances):
        tag += advance
        store.push(tag, index)
        if len(store) > backlog:
            served.append(store.pop_min()[0])
    while len(store):
        served.append(store.pop_min()[0])
    assert served == sorted(served)
    store.circuit.check_invariants()


def test_alias_regression_is_clamped_not_corrupting():
    """Regression > half the space aliases as 'forward' in raw terms;
    the unwrapped floor check must clamp it (regression test for the
    wraparound-tour bug)."""
    store = HardwareTagStore(fmt=PAPER_FORMAT, granularity=1.0, capacity=64)
    tag = 0.0
    for step in range(1800):
        tag += 4.0
        store.push(tag, step)
        if len(store) > 8:
            store.pop_min()
    before = store.clamped_inserts
    # Regress by ~3000 quanta: aliases forward under mod-4096 compare.
    store.push(tag - 3000.0, 9999)
    assert store.clamped_inserts == before + 1
    store.circuit.check_invariants()
    payloads = set()
    while len(store):
        payloads.add(store.pop_min()[1])
    assert 9999 in payloads  # the clamped tag was not lost
