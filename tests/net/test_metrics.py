"""Unit tests for QoS/fairness metrics."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.metrics import (
    DelayStats,
    gps_lag,
    jain_index,
    max_gps_lag,
    out_of_order_service,
    per_flow_delays,
    pg_bound_violations,
    throughput_shares,
    weighted_jain_index,
    worst_work_lead,
)
from repro.sched.base import SimulationResult
from repro.sched.gps import GpsDeparture
from repro.sched.packet import Packet


def departed(flow, size, arrive, depart, finish_tag=None, packet_id=None):
    kwargs = {}
    if packet_id is not None:
        kwargs["packet_id"] = packet_id
    packet = Packet(flow, size, arrive, **kwargs)
    packet.departure_time = depart
    packet.finish_tag = finish_tag
    return packet


class TestDelayStats:
    def test_basic_stats(self):
        packets = [departed(0, 100, 0.0, d) for d in (1.0, 2.0, 3.0, 10.0)]
        stats = DelayStats.of(packets)
        assert stats.count == 4
        assert stats.mean == pytest.approx(4.0)
        assert stats.worst == 10.0
        assert stats.p99 == 10.0

    def test_empty(self):
        stats = DelayStats.of([])
        assert stats.count == 0
        assert stats.worst == 0.0

    def test_per_flow_grouping(self):
        result = SimulationResult(
            packets=[
                departed(0, 100, 0.0, 1.0),
                departed(1, 100, 0.0, 5.0),
            ],
            finish_time=5.0,
        )
        delays = per_flow_delays(result)
        assert delays[0].worst == 1.0
        assert delays[1].worst == 5.0


class TestShares:
    def test_shares_sum_to_one(self):
        result = SimulationResult(
            packets=[
                departed(0, 300, 0.0, 1.0),
                departed(1, 100, 0.0, 2.0),
            ],
            finish_time=2.0,
        )
        shares = throughput_shares(result)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[0] == pytest.approx(0.75)

    def test_window_restriction(self):
        result = SimulationResult(
            packets=[
                departed(0, 100, 0.0, 1.0),
                departed(1, 100, 0.0, 9.0),
            ],
            finish_time=9.0,
        )
        shares = throughput_shares(result, start=0.0, end=5.0)
        assert shares == {0: 1.0}


class TestJain:
    def test_perfectly_fair(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_weighted_index_normalizes(self):
        shares = {0: 0.75, 1: 0.25}
        weights = {0: 0.75, 1: 0.25}
        assert weighted_jain_index(shares, weights) == pytest.approx(1.0)

    def test_missing_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_jain_index({0: 1.0}, {})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])


class TestGpsLag:
    def make(self):
        result = SimulationResult(
            packets=[
                departed(0, 100, 0.0, 2.0, packet_id=1000),
                departed(1, 100, 0.0, 5.0, packet_id=1001),
            ],
            finish_time=5.0,
        )
        gps = {
            1000: GpsDeparture(finish_tag=10.0, departure_time=1.5),
            1001: GpsDeparture(finish_tag=20.0, departure_time=4.9),
        }
        return result, gps

    def test_per_flow_lag(self):
        result, gps = self.make()
        lags = gps_lag(result, gps)
        assert lags[0] == pytest.approx(0.5)
        assert lags[1] == pytest.approx(0.1)
        assert max_gps_lag(result, gps) == pytest.approx(0.5)

    def test_pg_violations(self):
        result, gps = self.make()
        # Bound of 0.4 s: flow 0's lag (0.5 s) violates.
        violations = pg_bound_violations(
            result, gps, rate_bps=1000.0, max_packet_bytes=50.0
        )
        assert violations == 1


class TestOutOfOrder:
    def test_sorted_service_has_no_inversions(self):
        result = SimulationResult(
            packets=[
                departed(0, 100, 0.0, 1.0, finish_tag=10.0),
                departed(0, 100, 0.0, 2.0, finish_tag=20.0),
            ],
            finish_time=2.0,
        )
        assert out_of_order_service(result) == 0

    def test_inversion_counted(self):
        result = SimulationResult(
            packets=[
                departed(0, 100, 0.0, 1.0, finish_tag=20.0),
                departed(0, 100, 0.0, 2.0, finish_tag=10.0),
            ],
            finish_time=2.0,
        )
        assert out_of_order_service(result) == 1


def undelivered(flow, size, arrive, finish_tag=None):
    """A packet still queued (or dropped) when the simulation ended."""
    packet = Packet(flow, size, arrive)
    packet.finish_tag = finish_tag
    assert packet.departure_time is None
    return packet


class StubFluid:
    """Minimal stand-in for GPSFluidSimulator.work_at."""

    def __init__(self, rate_bits_per_s=1000.0):
        self.rate = rate_bits_per_s

    def work_at(self, flow_id, time_s):
        return self.rate * time_s


class TestUndeliveredPacketsFiltered:
    """Regression: both service-order metrics used to sort the full
    packet list by departure time, so one undelivered packet (its
    departure_time is None) crashed the sort with a TypeError."""

    def make(self):
        return SimulationResult(
            packets=[
                departed(0, 100, 0.0, 1.0, finish_tag=10.0),
                undelivered(1, 100, 0.5, finish_tag=15.0),
                departed(0, 100, 0.0, 2.0, finish_tag=20.0),
            ],
            finish_time=2.0,
        )

    def test_out_of_order_ignores_undelivered(self):
        assert out_of_order_service(self.make()) == 0

    def test_out_of_order_still_counts_real_inversions(self):
        result = self.make()
        result.packets[0].finish_tag = 30.0  # served first, biggest tag
        assert out_of_order_service(result) == 1

    def test_worst_work_lead_ignores_undelivered(self):
        leads = worst_work_lead(self.make(), StubFluid())
        # Only flow 0 received service; the queued flow-1 packet must
        # neither crash the sort nor contribute served bits.
        assert set(leads) == {0}
        assert leads[0] == pytest.approx(800 - 1000.0)

    def test_all_undelivered_is_empty_not_error(self):
        result = SimulationResult(
            packets=[undelivered(0, 100, 0.0), undelivered(1, 64, 0.1)],
            finish_time=1.0,
        )
        assert out_of_order_service(result) == 0
        assert worst_work_lead(result, StubFluid()) == {}
