"""Unit tests for the shared packet buffer."""

import pytest

from repro.hwsim.errors import CapacityError, ConfigurationError
from repro.net.buffer import SharedPacketBuffer
from repro.sched.packet import Packet


def make_packet(flow=0):
    return Packet(flow_id=flow, size_bytes=100, arrival_time=0.0)


class TestSharedPacketBuffer:
    def test_store_fetch_roundtrip(self):
        buffer = SharedPacketBuffer(4)
        packet = make_packet()
        pointer = buffer.store(packet)
        assert buffer.fetch(pointer) is packet
        assert buffer.occupancy == 0

    def test_pointers_are_reusable(self):
        buffer = SharedPacketBuffer(2)
        p1 = buffer.store(make_packet())
        buffer.fetch(p1)
        p2 = buffer.store(make_packet())
        assert p2 == p1  # freed slot reused

    def test_capacity_enforced(self):
        buffer = SharedPacketBuffer(2)
        buffer.store(make_packet())
        buffer.store(make_packet())
        with pytest.raises(CapacityError):
            buffer.store(make_packet())

    def test_try_store_counts_drops(self):
        buffer = SharedPacketBuffer(1)
        assert buffer.try_store(make_packet()) is not None
        assert buffer.try_store(make_packet()) is None
        assert buffer.drop_count == 1

    def test_fetch_validation(self):
        buffer = SharedPacketBuffer(2)
        with pytest.raises(ConfigurationError):
            buffer.fetch(5)
        with pytest.raises(ConfigurationError):
            buffer.fetch(0)  # unoccupied

    def test_double_fetch_rejected(self):
        buffer = SharedPacketBuffer(2)
        pointer = buffer.store(make_packet())
        buffer.fetch(pointer)
        with pytest.raises(ConfigurationError):
            buffer.fetch(pointer)

    def test_peak_occupancy(self):
        buffer = SharedPacketBuffer(4)
        pointers = [buffer.store(make_packet()) for _ in range(3)]
        for pointer in pointers:
            buffer.fetch(pointer)
        assert buffer.peak_occupancy == 3

    def test_accounting(self):
        buffer = SharedPacketBuffer(4)
        pointer = buffer.store(make_packet())
        buffer.fetch(pointer)
        assert buffer.stats.writes == 1
        assert buffer.stats.reads == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SharedPacketBuffer(0)


class TestOccupancyTelemetry:
    def test_high_watermark_tracks_peak_live_occupancy(self):
        buffer = SharedPacketBuffer(8)
        assert buffer.high_watermark == 0
        pointers = [buffer.store(make_packet()) for _ in range(5)]
        assert buffer.high_watermark == 5
        for pointer in pointers:
            buffer.fetch(pointer)
        # Draining never lowers the watermark.
        assert buffer.occupancy == 0
        assert buffer.high_watermark == 5
        buffer.store(make_packet())
        assert buffer.high_watermark == 5

    def test_mark_threshold_fraction(self):
        buffer = SharedPacketBuffer(100)
        assert buffer.mark_threshold(0.65) == 65
        assert buffer.mark_threshold(1.0) == 100
        # At least one slot, even for tiny buffers/fractions.
        assert SharedPacketBuffer(2).mark_threshold(0.1) == 1
        with pytest.raises(ConfigurationError):
            buffer.mark_threshold(0.0)
        with pytest.raises(ConfigurationError):
            buffer.mark_threshold(1.5)

    def test_try_store_reject_records_occupancy_read(self):
        """A refused try_store still books the occupancy check."""
        buffer = SharedPacketBuffer(1)
        buffer.try_store(make_packet())
        reads_before = buffer.stats.reads
        assert buffer.try_store(make_packet()) is None
        assert buffer.drop_count == 1
        assert buffer.stats.reads == reads_before + 1

    def test_state_roundtrip_preserves_telemetry(self):
        import json

        buffer = SharedPacketBuffer(4)
        pointers = [buffer.store(make_packet(flow=i)) for i in range(3)]
        buffer.fetch(pointers[0])
        buffer.try_store(make_packet())  # fits: occupancy 2/4
        state = json.loads(json.dumps(buffer.to_state()))
        restored = SharedPacketBuffer.from_state(state)
        assert restored.occupancy == buffer.occupancy
        assert restored.high_watermark == buffer.high_watermark
        assert restored.drop_count == buffer.drop_count
        # The restored buffer serves the same live pointers.
        assert restored.fetch(pointers[1]).flow_id == 1
