"""Turbo engine parity at the store and fabric layers.

The :class:`HardwareTagStore` adapter and the sharded fabric thread the
``turbo`` flag down to their circuits; everything observable — served
stream, wrap bookkeeping, per-structure accounting, snapshots — must
match the gate engine exactly on identical seeded workloads.
"""

import pytest

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.bench.perf import make_flow_ops
from repro.fabric.fabric import ScheduleFabric
from repro.net.hardware_store import HardwareTagStore

GRANULARITY = 8.0


def _registry_snapshot(store):
    return {
        name: (stats.reads, stats.writes)
        for name, stats in store.circuit.registry.snapshot_all().items()
    }


@pytest.mark.parametrize("seed", [3, 20060101])
def test_store_turbo_parity_per_op(seed):
    ops = make_mixed_ops(4_000, seed)
    gate = HardwareTagStore(granularity=GRANULARITY)
    turbo = HardwareTagStore(granularity=GRANULARITY, turbo=True)
    assert _drive_per_op(turbo, ops) == _drive_per_op(gate, ops)
    assert turbo.circuit.cycles == gate.circuit.cycles
    assert _registry_snapshot(turbo) == _registry_snapshot(gate)
    # Wrap-management registers agree too (sections cleared, clamps).
    assert turbo.sections_cleared == gate.sections_cleared
    assert turbo.markers_purged == gate.markers_purged
    assert turbo.clamped_inserts == gate.clamped_inserts


def test_store_turbo_parity_batched():
    ops = make_mixed_ops(4_000, 11)
    gate = HardwareTagStore(granularity=GRANULARITY, fast_mode=True)
    turbo = HardwareTagStore(
        granularity=GRANULARITY, fast_mode=True, turbo=True
    )
    assert _drive_batched(turbo, ops) == _drive_batched(gate, ops)
    assert turbo.circuit.cycles == gate.circuit.cycles
    assert _registry_snapshot(turbo) == _registry_snapshot(gate)


def test_store_describe_and_state_carry_engine():
    turbo = HardwareTagStore(granularity=GRANULARITY, turbo=True)
    assert turbo.describe()["turbo"] is True
    assert turbo.turbo is True
    _drive_per_op(turbo, make_mixed_ops(1_000, 7))
    revived = HardwareTagStore.from_state(turbo.to_state())
    assert revived.turbo is True
    # The revived store continues the exact service stream.
    twin = HardwareTagStore(granularity=GRANULARITY)
    _drive_per_op(twin, make_mixed_ops(1_000, 7))
    tail = make_mixed_ops(500, 8)
    assert _drive_per_op(revived, tail) == _drive_per_op(twin, tail)


@pytest.mark.parametrize("shards", [1, 4])
def test_fabric_turbo_parity(shards):
    ops = make_flow_ops(3_000, 17)
    gate = ScheduleFabric(shards=shards, granularity=GRANULARITY)
    turbo = ScheduleFabric(shards=shards, granularity=GRANULARITY, turbo=True)

    def drive(fabric):
        served = []
        for op in ops:
            if op[0] == "push":
                fabric.push(op[1], op[2])
            else:
                served.append(fabric.pop_min())
        return served

    assert drive(turbo) == drive(gate)
    for mine, theirs in zip(turbo.stores, gate.stores):
        assert mine.circuit.cycles == theirs.circuit.cycles
        assert _registry_snapshot(mine) == _registry_snapshot(theirs)


def test_fabric_state_roundtrip_keeps_turbo():
    fabric = ScheduleFabric(shards=2, granularity=GRANULARITY, turbo=True)
    fabric.push(10.0, 1)
    fabric.push(20.0, 2)
    state = fabric.to_state()
    assert state["turbo"] is True
    revived = ScheduleFabric.from_state(state)
    assert revived.turbo is True
    assert all(store.turbo for store in revived.stores)
    assert revived.pop_min() == fabric.pop_min()
