"""Tests for the dual-circuit WF²Q+ hardware system."""

import pytest

from repro.net import HardwareWF2QPlusSystem, HardwareWFQSystem
from repro.net.metrics import worst_work_lead
from repro.sched import (
    GPSFluidSimulator,
    Packet,
    WF2QPlusScheduler,
    simulate,
)
from repro.traffic import voip_video_data_mix


def build(cls, scenario, **kwargs):
    scheduler = cls(scenario.rate_bps, **kwargs)
    for flow_id, weight in scenario.weights.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


class TestBasicOperation:
    def test_delivers_everything(self):
        scenario = voip_video_data_mix(packets_per_flow=120, seed=4)
        system = build(HardwareWF2QPlusSystem, scenario)
        result = simulate(system, scenario.clone_trace())
        assert len(result.packets) == len(scenario.trace)
        assert system.dropped == 0
        system._calendar.circuit.check_invariants()
        system._service.circuit.check_invariants()

    def test_per_flow_fifo(self):
        scenario = voip_video_data_mix(packets_per_flow=100, seed=6)
        system = build(HardwareWF2QPlusSystem, scenario)
        result = simulate(system, scenario.clone_trace())
        for packets in result.by_flow().values():
            ids = [p.packet_id for p in packets]
            assert ids == sorted(ids)

    def test_close_to_software_wf2qplus(self):
        scenario = voip_video_data_mix(packets_per_flow=150, seed=8)
        hardware = build(HardwareWF2QPlusSystem, scenario)
        software = build(WF2QPlusScheduler, scenario)
        hw_result = simulate(hardware, scenario.clone_trace())
        sw_result = simulate(software, scenario.clone_trace())
        hw_mean = sum(p.delay for p in hw_result.packets) / len(
            hw_result.packets
        )
        sw_mean = sum(p.delay for p in sw_result.packets) / len(
            sw_result.packets
        )
        assert hw_mean == pytest.approx(sw_mean, rel=0.15)


class TestTwoSortsObservation:
    def test_roughly_double_the_circuit_operations(self):
        """The paper's Section I-B criticism, measured: WF²Q+ needs
        exactly 2x the circuit operations per packet of single-circuit
        WFQ (each packet traverses both sorted structures)."""
        scenario = voip_video_data_mix(packets_per_flow=150, seed=9)
        wf2q_system = build(HardwareWF2QPlusSystem, scenario)
        wfq_system = build(HardwareWFQSystem, scenario)
        wf2q_result = simulate(wf2q_system, scenario.clone_trace())
        wfq_result = simulate(wfq_system, scenario.clone_trace())
        wf2q_ops = wf2q_system.circuit_operations / len(wf2q_result.packets)
        wfq_ops = wfq_system.store.operations / len(wfq_result.packets)
        assert wfq_ops == pytest.approx(2.0)
        assert wf2q_ops == pytest.approx(2.0 * wfq_ops)

    def test_cycles_follow_operations(self):
        scenario = voip_video_data_mix(packets_per_flow=60, seed=10)
        system = build(HardwareWF2QPlusSystem, scenario)
        simulate(system, scenario.clone_trace())
        assert system.circuit_cycles == 4 * system.circuit_operations


class TestFairnessProperty:
    def test_bounded_work_lead_on_burst(self):
        """The dual-circuit system inherits WF²Q+'s bounded lead: on the
        Bennett–Zhang burst, the heavy flow stays within ~1 packet of
        GPS (single-circuit hardware WFQ runs several ahead)."""
        rate = 1e6
        heavy = HardwareWF2QPlusSystem(rate)
        heavy.add_flow(0, 0.5)
        for flow_id in range(1, 11):
            heavy.add_flow(flow_id, 0.05)
        trace = [Packet(0, 1500, 0.0) for _ in range(20)]
        for flow_id in range(1, 11):
            trace.extend(Packet(flow_id, 1500, 0.0) for _ in range(2))
        gps = GPSFluidSimulator(rate)
        gps.set_weight(0, 0.5)
        for flow_id in range(1, 11):
            gps.set_weight(flow_id, 0.05)
        gps.run(
            [
                Packet(p.flow_id, p.size_bytes, p.arrival_time,
                       packet_id=p.packet_id)
                for p in trace
            ]
        )
        result = simulate(heavy, trace)
        leads = worst_work_lead(result, gps)
        lmax_bits = 1500 * 8
        assert leads[0] <= 2.0 * lmax_bits  # quantization slack on top
