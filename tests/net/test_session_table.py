"""Tests for the per-session state table (the 8M-sessions substrate)."""

import pytest

from repro.hwsim.errors import CapacityError, ConfigurationError
from repro.net.session_table import (
    SessionStateTable,
    paper_scale_footprint,
)


class TestGeometry:
    def test_paper_scale_footprint(self):
        """8 M sessions at 64-bit records = 64 MB of table memory."""
        assert paper_scale_footprint() == pytest.approx(64.0)

    def test_footprint_math(self):
        table = SessionStateTable(1024, record_bits=128)
        assert table.footprint_bits == 1024 * 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionStateTable(0)
        with pytest.raises(ConfigurationError):
            SessionStateTable(4, frac_bits=-1)


class TestPerPacketCost:
    def test_one_read_one_write_per_packet(self):
        table = SessionStateTable(16)
        table.provision(1, 0.5)
        before = table.stats.snapshot()
        table.compute_finish_tag(1, 1000, 0)
        delta = table.stats.delta_since(before)
        assert delta.reads == 1
        assert delta.writes == 1

    def test_cost_is_session_count_independent(self):
        small = SessionStateTable(16)
        big = SessionStateTable(100_000)
        for table, sessions in ((small, 4), (big, 50_000)):
            for session in range(sessions):
                table.provision(session, 1.0)
            before = table.stats.snapshot()
            table.compute_finish_tag(0, 1000, 0)
            assert table.stats.delta_since(before).total == 2

    def test_tag_datapath(self):
        table = SessionStateTable(4, frac_bits=8)
        table.provision(1, 0.5)  # reciprocal = 512 units
        finish = table.compute_finish_tag(1, 100, virtual_units=0)
        assert finish == 100 * 512
        # chained second packet
        second = table.compute_finish_tag(1, 100, virtual_units=0)
        assert second == 2 * 100 * 512
        # virtual time overtakes the chain
        third = table.compute_finish_tag(1, 100, virtual_units=10**9)
        assert third == 10**9 + 100 * 512

    def test_unprovisioned_session_rejected(self):
        table = SessionStateTable(4)
        with pytest.raises(ConfigurationError):
            table.compute_finish_tag(9, 100, 0)


class TestLifecycle:
    def test_duplicate_provision_rejected(self):
        table = SessionStateTable(4)
        table.provision(1, 1.0)
        with pytest.raises(ConfigurationError):
            table.provision(1, 1.0)

    def test_release(self):
        table = SessionStateTable(4)
        table.provision(1, 1.0)
        table.release(1)
        assert table.active_sessions == 0
        with pytest.raises(ConfigurationError):
            table.release(1)

    def test_full_table_with_active_sessions_rejects(self):
        table = SessionStateTable(2)
        table.provision(1, 1.0)
        table.provision(2, 1.0)
        table.compute_finish_tag(1, 100, 0)
        table.compute_finish_tag(2, 100, 0)
        with pytest.raises(CapacityError):
            table.provision(3, 1.0)

    def test_idle_session_evicted_for_new_one(self):
        table = SessionStateTable(2)
        table.provision(1, 1.0)
        table.provision(2, 1.0)
        # Session 2 stays hot; session 1 goes idle for > capacity packets.
        for _ in range(5):
            table.compute_finish_tag(2, 100, 0)
        table.provision(3, 1.0)
        assert table.evictions == 1
        assert table.record_of(1) is None
        assert table.record_of(2) is not None


class TestStateRoundtrip:
    def test_roundtrip_preserves_records_and_stats(self):
        import json

        table = SessionStateTable(8)
        table.provision(3, 0.25)
        table.provision(5, 0.5)
        table.compute_finish_tag(3, 1000, 0.0)
        table.compute_finish_tag(5, 2000, 1.0)
        state = json.loads(json.dumps(table.to_state()))
        restored = SessionStateTable(8)
        restored.load_state(state)
        assert restored.active_sessions == 2
        original = table.record_of(3)
        copy = restored.record_of(3)
        assert copy.last_finish_units == original.last_finish_units
        assert copy.reciprocal_units == original.reciprocal_units
        assert restored.stats.reads == table.stats.reads
        assert restored.stats.writes == table.stats.writes
        # The restored table continues the same tag datapath.
        assert restored.compute_finish_tag(
            3, 500, 2.0
        ) == table.compute_finish_tag(3, 500, 2.0)

    def test_geometry_mismatch_rejected(self):
        import json

        from repro.hwsim.errors import ConfigurationError

        table = SessionStateTable(8)
        state = json.loads(json.dumps(table.to_state()))
        other = SessionStateTable(16)
        with pytest.raises(ConfigurationError):
            other.load_state(state)
