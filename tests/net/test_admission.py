"""Tests for SLA admission control, including end-to-end bound checks."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.admission import (
    AdmissionController,
    ServiceLevelAgreement,
)
from repro.sched import WFQScheduler, simulate
from repro.traffic import CBRArrivals, FixedSize


def sla(flow_id, rate, **kwargs):
    return ServiceLevelAgreement(
        flow_id=flow_id, guaranteed_rate_bps=rate, **kwargs
    )


class TestAdmission:
    def test_admits_within_capacity(self):
        controller = AdmissionController(10e6)
        decision = controller.admit(sla(1, 4e6))
        assert decision.admitted
        assert decision.weight == pytest.approx(0.4)

    def test_rejects_over_capacity(self):
        controller = AdmissionController(10e6, utilization_limit=0.9)
        assert controller.admit(sla(1, 5e6)).admitted
        decision = controller.admit(sla(2, 5e6))
        assert not decision.admitted
        assert "insufficient capacity" in decision.reason

    def test_release_frees_capacity(self):
        controller = AdmissionController(10e6, utilization_limit=1.0)
        controller.admit(sla(1, 9e6))
        controller.release(1)
        assert controller.admit(sla(2, 9e6)).admitted

    def test_duplicate_flow_rejected(self):
        controller = AdmissionController(10e6)
        controller.admit(sla(1, 1e6))
        assert not controller.admit(sla(1, 1e6)).admitted

    def test_release_unknown_flow(self):
        controller = AdmissionController(10e6)
        with pytest.raises(ConfigurationError):
            controller.release(5)

    def test_evaluate_does_not_commit(self):
        controller = AdmissionController(10e6)
        controller.evaluate(sla(1, 9e6))
        assert controller.committed_rate_bps == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(10e6, utilization_limit=1.5)
        with pytest.raises(ConfigurationError):
            sla(1, 0.0)


class TestDelayBounds:
    def test_bound_formula(self):
        controller = AdmissionController(10e6, link_max_packet_bytes=1500)
        agreement = sla(
            1, 1e6, burst_bits=8000.0, max_packet_bytes=500
        )
        bound = controller.delay_bound_s(agreement)
        expected = 8000 / 1e6 + 500 * 8 / 1e6 + 1500 * 8 / 10e6
        assert bound == pytest.approx(expected)

    def test_delay_target_gating(self):
        controller = AdmissionController(10e6)
        tight = sla(1, 100e3, delay_target_s=0.001)  # 100 kb/s cannot
        decision = controller.admit(tight)
        assert not decision.admitted
        assert "not achievable" in decision.reason
        relaxed = sla(1, 100e3, delay_target_s=0.5)
        assert controller.admit(relaxed).admitted

    def test_higher_rate_buys_lower_bound(self):
        controller = AdmissionController(10e6)
        slow = controller.delay_bound_s(sla(1, 100e3))
        fast = controller.delay_bound_s(sla(2, 1e6))
        assert fast < slow


class TestEndToEndBound:
    def test_measured_delay_within_offered_bound(self):
        """Admit CBR flows, run the real scheduler, verify every packet
        meets the admission-time delay bound."""
        rate = 10e6
        controller = AdmissionController(rate)
        agreements = [
            sla(0, 2e6, max_packet_bytes=200),
            sla(1, 3e6, max_packet_bytes=1500),
            sla(2, 4e6, max_packet_bytes=1500),
        ]
        bounds = {}
        for agreement in agreements:
            decision = controller.admit(agreement)
            assert decision.admitted
            bounds[agreement.flow_id] = decision.offered_delay_s
        scheduler = WFQScheduler(rate)
        controller.configure(scheduler)
        streams = []
        for agreement in agreements:
            # Send at exactly the guaranteed rate (token bucket honored).
            packet_bits = agreement.max_packet_bytes * 8
            pps = agreement.guaranteed_rate_bps / packet_bits
            generator = CBRArrivals(
                agreement.flow_id,
                pps,
                FixedSize(agreement.max_packet_bytes),
                seed=1,
            )
            streams.append(generator.packets(150))
        from repro.traffic import merge

        result = simulate(scheduler, merge(streams))
        for packet in result.packets:
            assert packet.delay <= bounds[packet.flow_id] + 1e-9, (
                packet.flow_id,
                packet.delay,
                bounds[packet.flow_id],
            )

    def test_configure_registers_weights(self):
        controller = AdmissionController(10e6)
        controller.admit(sla(1, 2.5e6))
        scheduler = WFQScheduler(10e6)
        controller.configure(scheduler)
        assert scheduler.flows.get(1).weight == pytest.approx(0.25)
        assert scheduler.flows.get(1).guaranteed_rate_bps == 2.5e6


class TestChurnAccounting:
    def test_interleaved_admit_release_is_exact_across_tenants(self):
        """Committed rate stays *exactly* the sum of admitted SLAs.

        The controller maintains the total incrementally (O(1) per op);
        heavy interleaved churn with awkward float rates must never
        drift it from the true sum — the invariant the service plane's
        admission decisions for millions of flows depend on.
        """
        import random

        controller = AdmissionController(40e9, utilization_limit=1.0)
        rng = random.Random(20060923)
        live = {}
        for step in range(5000):
            if live and rng.random() < 0.45:
                flow = rng.choice(sorted(live))
                controller.release(flow)
                del live[flow]
            else:
                flow = rng.randrange(10_000)
                if flow in live:
                    continue
                # Rates like 1234567.89 are not exactly representable
                # sums; only exact accounting survives this churn.
                rate = rng.uniform(1e4, 1e6) + rng.random()
                if controller.admit(sla(flow, rate)).admitted:
                    live[flow] = rate
            if step % 500 == 0:
                # The reference itself must be exact: a float sum() over
                # thousands of rates carries its own rounding noise.
                from fractions import Fraction

                expected = sum(
                    Fraction(s.guaranteed_rate_bps)
                    for s in controller.admitted_slas().values()
                )
                assert controller.committed_rate_bps == float(expected)
        # Release everything: the total returns to exactly zero.
        for flow in sorted(live):
            controller.release(flow)
        assert controller.committed_rate_bps == 0.0
        assert controller.admitted_count == 0

    def test_released_capacity_readmits_to_the_limit(self):
        controller = AdmissionController(10e6, utilization_limit=1.0)
        assert controller.admit(sla(1, 6e6)).admitted
        assert controller.admit(sla(2, 4e6)).admitted
        assert not controller.admit(sla(3, 1e5)).admitted
        controller.release(1)
        # The freed 6 Mb/s is available again, exactly.
        assert controller.available_rate_bps == pytest.approx(6e6)
        assert controller.admit(sla(3, 6e6)).admitted
        assert not controller.admit(sla(4, 1.0)).admitted

    def test_min_rate_floor_rejects_featherweight_slas(self):
        controller = AdmissionController(10e9, min_rate_bps=1e5)
        decision = controller.admit(sla(1, 5e4))
        assert not decision.admitted
        assert "floor" in decision.reason
        assert controller.admit(sla(2, 1e5)).admitted


class TestConfigureLiveScheduler:
    def test_configure_reconfigures_weights_on_live_scheduler(self):
        """Re-running configure() after SLA churn updates live flows."""
        controller = AdmissionController(10e6, utilization_limit=1.0)
        controller.admit(sla(1, 2e6))
        controller.admit(sla(2, 3e6))
        scheduler = WFQScheduler(10e6)
        controller.configure(scheduler)
        assert scheduler.flows.get(1).weight == pytest.approx(0.2)
        # Churn: flow 1 renegotiates (release + re-admit), flow 3 joins.
        controller.release(1)
        controller.admit(sla(1, 4e6))
        controller.admit(sla(3, 1e6))
        controller.configure(scheduler)
        assert scheduler.flows.get(1).weight == pytest.approx(0.4)
        assert scheduler.flows.get(2).weight == pytest.approx(0.3)
        assert scheduler.flows.get(3).weight == pytest.approx(0.1)

    def test_configure_updates_hardware_system_between_packets(self):
        """On the circuit-backed system, reweighting works while the
        store is empty (explicit granularity) and the new weight shapes
        subsequent finishing tags."""
        from repro.net.scheduler_system import HardwareWFQSystem
        from repro.sched.packet import Packet

        controller = AdmissionController(10e6, utilization_limit=1.0)
        controller.admit(sla(1, 2e6))
        system = HardwareWFQSystem(10e6, granularity=64.0)
        controller.configure(system)
        packet = Packet(flow_id=1, size_bytes=125, arrival_time=0.0)
        system.enqueue(packet, 0.0)
        first_tag = packet.finish_tag
        assert system.select_next(0.0) is packet
        # Double the flow's rate; the same packet length now finishes
        # in half the virtual time.
        controller.release(1)
        controller.admit(sla(1, 4e6))
        controller.configure(system)
        packet2 = Packet(flow_id=1, size_bytes=125, arrival_time=0.0)
        system.enqueue(packet2, 0.0)
        assert packet2.finish_tag < first_tag * 2
