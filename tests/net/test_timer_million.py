"""The million-timer churn preset under the vector engine.

The churn pattern's ``ramp`` arms the full pending set up front, so
peak concurrency is at least ``ramp`` by construction; the vector
engine is what makes a million concurrent timers tractable in test
time (the scalar engines take minutes at this scale).  The deadline
ordering and conservation checks are the point of the exercise — scale
must not loosen them.
"""

import pytest

from repro.core.engine import numpy_or_none
from repro.net.timer import run_timer_soak

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy is not installed"
)

MILLION = 1_000_000


@pytest.mark.slow
@needs_numpy
def test_million_concurrent_timers_vector_churn():
    run = run_timer_soak(
        pattern="churn",
        mode="vector",
        capacity=1 << 21,
        pending_target=MILLION + 100_000,
        ramp=MILLION,
        events=20_000,
        seed=5,
    )
    assert run.armed >= MILLION
    assert run.served_in_order, "timers fired out of deadline order"
    assert run.conserved, "armed != fired + cancelled + pending"
    assert run.pending == 0  # the final drain fires everything left


@needs_numpy
def test_ramped_vector_churn_smoke():
    """Same shape at a CI-friendly scale, still deadline-ordered."""
    run = run_timer_soak(
        pattern="churn",
        mode="vector",
        capacity=1 << 16,
        pending_target=40_000,
        ramp=30_000,
        events=2_000,
        seed=5,
    )
    assert run.armed >= 30_000
    assert run.served_in_order
    assert run.conserved
