"""Tests for multi-hop end-to-end scheduling."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.multihop import (
    MultiHopNetwork,
    e2e_delay_bound,
    worst_flow_delay,
)
from repro.sched import DRRScheduler, Packet, WFQScheduler
from repro.traffic import CBRArrivals, FixedSize, PoissonArrivals, merge
from repro.traffic.packet_sizes import internet_mix

RATE = 10e6
WEIGHTS = {0: 0.2, 1: 0.4, 2: 0.4}


def wfq_factory():
    scheduler = WFQScheduler(RATE)
    for flow_id, weight in WEIGHTS.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


def drr_factory():
    scheduler = DRRScheduler(RATE)
    for flow_id, weight in WEIGHTS.items():
        scheduler.add_flow(flow_id, weight)
    return scheduler


def build_trace(packets_per_flow=120, seed=5):
    streams = [
        CBRArrivals(
            0,
            WEIGHTS[0] * RATE * 0.9 / (200 * 8),
            FixedSize(200),
            seed=seed,
        ).packets(packets_per_flow)
    ]
    for flow_id in (1, 2):
        streams.append(
            PoissonArrivals(
                flow_id,
                WEIGHTS[flow_id] * RATE * 0.9 / (internet_mix().mean() * 8),
                internet_mix(),
                seed=seed,
            ).packets(packets_per_flow)
        )
    return merge(streams)


class TestChainMechanics:
    def test_conservation_across_hops(self):
        network = MultiHopNetwork([wfq_factory] * 3)
        trace = build_trace(packets_per_flow=60)
        records = network.run(trace)
        assert len(records) == len(trace)
        assert {r.packet_id for r in records} == {
            p.packet_id for p in trace
        }

    def test_delay_grows_with_hops(self):
        trace = build_trace(packets_per_flow=60)
        one = MultiHopNetwork([wfq_factory]).run(trace)
        three = MultiHopNetwork([wfq_factory] * 3).run(trace)
        mean_one = sum(r.delay for r in one) / len(one)
        mean_three = sum(r.delay for r in three) / len(three)
        assert mean_three > mean_one

    def test_egress_never_precedes_ingress(self):
        network = MultiHopNetwork([wfq_factory, drr_factory])
        for record in network.run(build_trace(packets_per_flow=40)):
            assert record.egress_time >= record.ingress_time

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiHopNetwork([])

    def test_hop_results_exposed(self):
        network = MultiHopNetwork([wfq_factory] * 2)
        network.run(build_trace(packets_per_flow=30))
        assert len(network.hop_results) == 2


class TestEndToEndBound:
    def test_bound_formula(self):
        bound = e2e_delay_bound(
            hops=3,
            rate_bps=10e6,
            guaranteed_rate_bps=2e6,
            burst_bits=4000.0,
            packet_bytes=200,
        )
        expected = 4000 / 2e6 + 3 * (200 * 8 / 2e6 + 1500 * 8 / 10e6)
        assert bound == pytest.approx(expected)

    @pytest.mark.parametrize("hops", [1, 2, 4])
    def test_measured_e2e_delay_within_bound(self, hops):
        """The composed PG bound holds for the CBR flow across chains of
        WFQ hops under cross traffic."""
        trace = build_trace(packets_per_flow=100, seed=9)
        network = MultiHopNetwork([wfq_factory] * hops)
        records = network.run(trace)
        measured = worst_flow_delay(records, 0)
        bound = e2e_delay_bound(
            hops=hops,
            rate_bps=RATE,
            guaranteed_rate_bps=WEIGHTS[0] * RATE,
            burst_bits=200 * 8,  # CBR: at most one packet of burst
            packet_bytes=200,
        )
        assert measured <= bound + 1e-9

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            e2e_delay_bound(
                hops=0,
                rate_bps=1.0,
                guaranteed_rate_bps=1.0,
                burst_bits=0.0,
                packet_bytes=1,
            )

    def test_worst_flow_delay_requires_records(self):
        with pytest.raises(ConfigurationError):
            worst_flow_delay([], 0)
