"""Dynamic updates through the net and fabric layers.

The circuit-level remove/retag primitives surface as ``cancel`` and
``reschedule`` on the WFQ scheduler systems and as shard-local
``remove``/``retag`` on the scheduling fabric.  These tests pin the
handle plumbing at each layer: buffer-slot recycling on cancel, wrap
discipline on repin (span guard *before* any mutation), drain-free
shard locality on the fabric, checkpoint/restore of the cancel/repin
counters, and the turbo head-path cache never serving a removed or
retagged path.
"""

import random

import pytest

from repro.core.words import WordFormat
from repro.fabric.fabric import ScheduleFabric
from repro.hwsim.errors import ProtocolError
from repro.net.fabric_system import FabricSchedulerSystem
from repro.net.hardware_store import HardwareTagStore
from repro.net.scheduler_system import HardwareWFQSystem
from repro.sched.packet import Packet


def make_packet(flow, t, size=1000):
    return Packet(flow_id=flow, size_bytes=size, arrival_time=t)


class TestStoreDynamicUpdates:
    def test_push_returns_handle_remove_returns_entry(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(5.0, 1)
        handle = store.push(9.0, 2)
        store.push(12.0, 3)
        assert store.remove(handle) == (9.0, 2)
        assert [store.pop_min()[1] for _ in range(2)] == [1, 3]

    def test_retag_moves_entry_under_quantization(self):
        store = HardwareTagStore(granularity=10.0, capacity=8)
        store.push(51.0, 1)
        handle = store.push(95.0, 2)
        new_handle = store.retag(handle, 53.0)
        # 53.0 shares quantum 5 with 51.0: FCFS puts it second.
        assert [store.pop_min() for _ in range(2)] == [(51.0, 1), (53.0, 2)]
        assert len(store) == 0
        assert isinstance(new_handle, int)

    def test_retag_span_guard_rejects_before_mutation(self):
        small = WordFormat(levels=2, literal_bits=3)
        store = HardwareTagStore(fmt=small, granularity=1.0, capacity=8)
        store.push(1.0, 0)
        handle = store.push(5.0, 1)
        accesses = store.circuit.registry.total().total
        operations = store.operations
        with pytest.raises(ProtocolError):
            store.retag(handle, 100.0)  # span would exceed half the window
        # Guard ran before the remove: nothing was unlinked or re-pushed.
        assert store.circuit.registry.total().total == accesses
        assert store.operations == operations
        assert len(store) == 2
        assert store.remove(handle) == (5.0, 1)

    def test_stale_store_handle_raises(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        handle = store.push(5.0, 1)
        store.pop_min()
        with pytest.raises(ProtocolError):
            store.remove(handle)

    def test_retag_behind_minimum_clamps_like_push(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(100.0, 0)
        handle = store.push(200.0, 1)
        clamped = store.clamped_inserts
        store.retag(handle, 50.0)
        assert store.clamped_inserts == clamped + 1
        payloads = [store.pop_min()[1] for _ in range(2)]
        assert sorted(payloads) == [0, 1]


class TestSchedulerCancelReschedule:
    def make_system(self):
        system = HardwareWFQSystem(1e9)
        for flow in range(4):
            system.add_flow(flow, weight=1.0 + flow)
        return system

    def test_cancel_releases_buffer_slot(self):
        system = self.make_system()
        handle = system.enqueue(make_packet(0, 0.001), 0.001)
        assert system.buffer.occupancy == 1
        packet = system.cancel(handle)
        assert packet.flow_id == 0
        assert system.buffer.occupancy == 0
        assert system.backlog == 0

    def test_cancelled_packet_never_served(self):
        system = self.make_system()
        handles = [
            system.enqueue(make_packet(i % 4, 0.001 * (i + 1)), 0.001 * (i + 1))
            for i in range(8)
        ]
        system.cancel(handles[3])
        served = []
        t = 0.1
        while system.backlog:
            t += 0.001
            served.append(system.select_next(t))
        assert len(served) == 7
        tags = [packet.finish_tag for packet in served]
        assert tags == sorted(tags)

    def test_reschedule_updates_finish_tag_and_order(self):
        system = HardwareWFQSystem(1e9, granularity=100.0)
        for flow in range(4):
            system.add_flow(flow, weight=1.0 + flow)
        packets = [make_packet(i % 4, 0.001 * (i + 1)) for i in range(6)]
        handles = [
            system.enqueue(packet, packet.arrival_time) for packet in packets
        ]
        # Strictly past every queued tag, so the repin cannot clamp.
        late_tag = max(packet.finish_tag for packet in packets) + 200.0
        system.reschedule(handles[0], late_tag)
        served = []
        t = 0.1
        while system.backlog:
            t += 0.001
            served.append(system.select_next(t))
        assert served[-1].finish_tag == late_tag
        tags = [packet.finish_tag for packet in served]
        # Service follows quantized tags with FCFS ties: exact tags may
        # invert by strictly less than one quantum, never more.
        assert all(
            earlier - later <= 100.0 for earlier, later in zip(tags, tags[1:])
        )

    def test_cancel_stale_handle_raises(self):
        system = self.make_system()
        handle = system.enqueue(make_packet(0, 0.001), 0.001)
        system.cancel(handle)
        with pytest.raises(ProtocolError):
            system.cancel(handle)


class TestFabricDynamicUpdates:
    def test_handle_location_roundtrip(self):
        fabric = ScheduleFabric(shards=4)
        handle = fabric.push(10.0, 7)
        shard, local = fabric.handle_location(handle)
        assert handle == shard * fabric.capacity_per_shard + local
        with pytest.raises(ProtocolError):
            fabric.handle_location(4 * fabric.capacity_per_shard)

    def test_remove_touches_only_owning_shard(self):
        fabric = ScheduleFabric(shards=4)
        handles = [
            fabric.push(float(10 + i), i) for i in range(16)
        ]
        target = handles[5]
        owner, _ = fabric.handle_location(target)
        before = [store.operations for store in fabric.stores]
        fabric.remove(target)
        after = [store.operations for store in fabric.stores]
        touched = [
            shard
            for shard, (a, b) in enumerate(zip(before, after))
            if a != b
        ]
        assert touched == [owner]
        assert fabric.cancels == 1

    def test_retag_stays_on_owning_shard(self):
        fabric = ScheduleFabric(shards=4)
        handles = [fabric.push(float(10 + i), i) for i in range(16)]
        target = handles[9]
        owner, _ = fabric.handle_location(target)
        before = [store.operations for store in fabric.stores]
        new_handle = fabric.retag(target, 500.0)
        after = [store.operations for store in fabric.stores]
        touched = [
            shard
            for shard, (a, b) in enumerate(zip(before, after))
            if a != b
        ]
        assert touched == [owner]
        assert fabric.handle_location(new_handle)[0] == owner
        assert fabric.repins == 1

    def test_remove_retag_preserve_global_order(self):
        fabric = ScheduleFabric(shards=4)
        rng = random.Random(13)
        handles = [fabric.push(float(10 + i), i) for i in range(32)]
        rng.shuffle(handles)
        for handle in handles[:8]:
            fabric.remove(handle)
        live = handles[8:]
        for handle in live[:8]:
            fabric.retag(handle, fabric.peek_min_exact()[0] + 100.0)
        tags = [fabric.pop_min()[0] for _ in range(len(fabric))]
        assert tags == sorted(tags)

    def test_checkpoint_restores_cancel_repin_counters(self):
        fabric = ScheduleFabric(shards=2)
        handles = [fabric.push(float(10 + i), i) for i in range(8)]
        fabric.remove(handles[2])
        fabric.retag(handles[5], 300.0)
        restored = ScheduleFabric.from_state(fabric.to_state())
        assert restored.cancels == 1
        assert restored.repins == 1
        assert len(restored) == len(fabric)
        tags = [restored.pop_min()[0] for _ in range(len(restored))]
        assert tags == sorted(tags)

    def test_handles_survive_checkpoint_restore(self):
        fabric = ScheduleFabric(shards=2)
        handles = [fabric.push(float(10 + i), i) for i in range(8)]
        restored = ScheduleFabric.from_state(fabric.to_state())
        assert restored.remove(handles[3]) == (13.0, 3)
        assert len(restored) == 7


class TestFabricSystemDynamicUpdates:
    def make_system(self, **kwargs):
        system = FabricSchedulerSystem(1e9, shards=4, **kwargs)
        for flow in range(8):
            system.add_flow(flow, weight=1.0 + flow * 0.25)
        return system

    @pytest.mark.parametrize("turbo", [False, True])
    def test_cancel_and_repin_are_shard_drain_free(self, turbo):
        system = self.make_system(turbo=turbo)
        t = 0.0
        handles = []
        for i in range(60):
            t += 0.001
            handles.append(system.enqueue(make_packet(i % 8, t), t))
        before = [store.operations for store in system.store.stores]
        system.cancel(handles[30])
        system.reschedule(
            handles[31], system.store.peek_min_exact()[0] + 10.0
        )
        after = [store.operations for store in system.store.stores]
        touched = sum(1 for a, b in zip(before, after) if a != b)
        assert touched <= 2  # at most the two owning shards

    def test_mixed_churn_serves_in_tag_order(self):
        system = self.make_system()
        rng = random.Random(11)
        t = 0.0
        handles = []
        for i in range(120):
            t += 0.001
            handle = system.enqueue(make_packet(i % 8, t), t)
            assert handle is not None
            handles.append(handle)
        rng.shuffle(handles)
        for handle in handles[:40]:
            assert system.cancel(handle) is not None
        # Repin past every shard's head so no repin is clamped (a
        # behind-minimum repin would legally serve at the owning
        # shard's quantum instead of its requested tag).
        for handle in handles[40:80]:
            floor = max(
                store.peek_min_exact()[0]
                for store in system.store.stores
                if len(store)
            )
            system.reschedule(handle, floor + rng.random() * 50)
        quantum = system.store.stores[0].granularity
        served = []
        while system.backlog:
            t += 0.001
            served.append(system.select_next(t).finish_tag)
        assert len(served) == 80
        # Quantized service with FCFS ties: sub-quantum inversions only.
        assert all(
            earlier - later <= quantum
            for earlier, later in zip(served, served[1:])
        )
        assert system.buffer.occupancy == 0


class TestTurboHeadCacheInvalidation:
    """The turbo engine memoizes the head's literal path; a remove or
    retag that changes the head must drop the memo, never serve it."""

    def test_remove_of_head_invalidates_cache(self):
        store = HardwareTagStore(granularity=1.0, capacity=64, turbo=True)
        head = store.push(10.0, 0)
        store.push(10.0, 1)
        store.push(10.0, 2)  # duplicates warm the head-path cache
        store.push(20.0, 3)
        hits_before = store.circuit.head_cache_hits
        assert hits_before > 0
        store.remove(head)
        assert [store.pop_min()[1] for _ in range(3)] == [1, 2, 3]

    def test_retag_of_head_run_never_serves_stale_path(self):
        store = HardwareTagStore(granularity=1.0, capacity=64, turbo=True)
        handles = [store.push(10.0, i) for i in range(4)]
        store.push(30.0, 9)
        store.retag(handles[0], 40.0)
        payloads = [store.pop_min()[1] for _ in range(5)]
        assert payloads == [1, 2, 3, 9, 0]
        store.circuit.check_invariants()

    def test_churned_turbo_store_matches_gate_store(self):
        rng = random.Random(29)
        gate = HardwareTagStore(granularity=1.0, capacity=128)
        turbo = HardwareTagStore(granularity=1.0, capacity=128, turbo=True)
        live = []
        tag = 10.0
        for step in range(400):
            roll = rng.random()
            if roll < 0.5 or not live:
                tag += rng.random() * 3.0
                live.append(
                    (gate.push(tag, step), turbo.push(tag, step))
                )
            elif roll < 0.7:
                g, t = live.pop(rng.randrange(len(live)))
                assert gate.remove(g) == turbo.remove(t)
            elif roll < 0.85:
                index = rng.randrange(len(live))
                g, t = live[index]
                new_tag = gate.peek_min_exact()[0] + rng.random() * 20.0
                live[index] = (
                    gate.retag(g, new_tag),
                    turbo.retag(t, new_tag),
                )
            elif len(gate):
                assert gate.pop_min() == turbo.pop_min()
                live = [
                    pair
                    for pair in live
                    if gate.circuit.is_live_handle(pair[0])
                ]
        assert gate.cycles == turbo.cycles
        while len(gate):
            assert gate.pop_min() == turbo.pop_min()
        gate.circuit.check_invariants()
        turbo.circuit.check_invariants()
