"""FabricSchedulerSystem: the sharded fabric behind the Fig. 1 facade."""

import random

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net import FabricSchedulerSystem, HardwareWFQSystem
from repro.sched.base import simulate
from repro.sched.packet import Packet


def make_arrivals(count, seed, flows=8):
    rng = random.Random(seed)
    now = 0.0
    arrivals = []
    for _ in range(count):
        now += rng.random() * 1e-5
        arrivals.append(
            Packet(
                flow_id=rng.randrange(flows) + 1,
                size_bytes=rng.randint(64, 1500),
                arrival_time=now,
            )
        )
    return arrivals


def register_flows(system, flows=8):
    for flow in range(1, flows + 1):
        system.add_flow(flow, weight=1.0 + (flow % 3))
    return system


def record(result):
    return [
        (p.flow_id, p.arrival_time, p.finish_tag, p.departure_time)
        for p in result.packets
    ]


@pytest.mark.parametrize("seed", [1, 2])
def test_one_shard_system_matches_single_circuit_system(seed):
    arrivals = make_arrivals(1_000, seed)
    fabric_system = register_flows(FabricSchedulerSystem(1e9, shards=1))
    plain_system = register_flows(HardwareWFQSystem(1e9))
    fabric_result = simulate(fabric_system, arrivals)
    plain_result = simulate(plain_system, make_arrivals(1_000, seed))
    assert record(fabric_result) == record(plain_result)
    assert fabric_system.store.cycles == plain_system.store.cycles


def test_four_shard_system_serves_every_packet():
    arrivals = make_arrivals(2_000, 7)
    system = register_flows(FabricSchedulerSystem(1e9, shards=4))
    result = simulate(system, arrivals)
    assert len(result.packets) == 2_000
    assert system.dropped == 0
    # Parallel shards: modeled busy time is the makespan, strictly
    # below the summed work of one circuit doing everything.
    assert system.store.cycles < system.store.cycles_total


def test_sustained_throughput_scales_with_shards():
    one = FabricSchedulerSystem(1e9, shards=1)
    four = FabricSchedulerSystem(1e9, shards=4)
    assert four.sustained_packets_per_second() == pytest.approx(
        4 * one.sustained_packets_per_second()
    )


def test_shard_capacity_covers_buffer_share():
    system = FabricSchedulerSystem(1e9, shards=4, buffer_capacity=8192)
    system.add_flow(1)
    assert system.store.capacity_per_shard == 2048


def test_rejects_zero_shards():
    with pytest.raises(ConfigurationError):
        FabricSchedulerSystem(1e9, shards=0)


def test_close_releases_worker_pool():
    system = register_flows(FabricSchedulerSystem(1e9, shards=2, workers=2))
    arrivals = make_arrivals(300, 3)
    system.enqueue_batch(arrivals)
    assert system.store.workers == 2
    system.close()
    assert system.store.workers == 0
