"""Batched wrap-managed store: parity with the per-op tag store.

The ISSUE-level acceptance property: on randomized WFQ traces — bursty
pushes with drifting tags, wrap-arounds, drains to empty, occasional
regressions — the coalesced :meth:`HardwareTagStore.push_batch` /
:meth:`pop_batch` discipline serves the *identical* sequence as per-op
:meth:`push` / :meth:`pop_min`, with identical wrap bookkeeping
(clamps, cleared sections, purged markers) and cycle accounting.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.words import PAPER_FORMAT
from repro.net.hardware_store import HardwareTagStore


def coalesce(ops):
    """Group an op stream into alternating push/pop runs."""
    groups = []
    for op in ops:
        if groups and groups[-1][0][0] == op[0]:
            groups[-1].append(op)
        else:
            groups.append([op])
    return groups


def drive_per_op(store, ops):
    served = []
    for op in ops:
        if op[0] == "push":
            store.push(op[1], op[2])
        else:
            served.append(store.pop_min())
    return served


def drive_batched(store, ops):
    served = []
    for group in coalesce(ops):
        if group[0][0] == "push":
            store.push_batch([(op[1], op[2]) for op in group])
        else:
            served.extend(store.pop_batch(len(group)))
    return served


def wfq_like_ops(seed, count=500):
    """Bursty pushes with drifting finish tags, bursty pops, occasional
    drains; tags wrap the 12-bit space several times at granularity 1."""
    rng = random.Random(seed)
    ops, live, vt = [], 0, 0.0
    while len(ops) < count:
        for _ in range(rng.randint(1, 12)):
            if len(ops) >= count:
                break
            vt += rng.random() * 30
            finish = max(0.0, vt + rng.random() * 200 - 20)
            ops.append(("push", finish, len(ops)))
            live += 1
        pops = rng.randint(1, 12)
        if rng.random() < 0.05:
            pops = live  # full drain: epoch reset path
        for _ in range(min(pops, live)):
            if len(ops) >= count:
                break
            ops.append(("pop",))
            live -= 1
    return ops


class TestBatchedParity:
    def test_seeded_traces_full_state_parity(self):
        for seed in range(12):
            ops = wfq_like_ops(seed)
            reference = HardwareTagStore(granularity=1.0)
            served_ref = drive_per_op(reference, ops)
            for fast in (False, True):
                store = HardwareTagStore(granularity=1.0, fast_mode=fast)
                served = drive_batched(store, ops)
                assert served == served_ref
                assert store.clamped_inserts == reference.clamped_inserts
                assert store.clamp_error_quanta == reference.clamp_error_quanta
                assert store.sections_cleared == reference.sections_cleared
                assert store.markers_purged == reference.markers_purged
                assert store.cycles == reference.cycles
                assert store.operations == reference.operations
                assert len(store) == len(reference)
                store.circuit.check_invariants()

    def test_push_batch_is_atomic_on_span_violation(self):
        """A span violation rejects the whole batch before any insert —
        documented divergence from the per-op loop, which would stop
        mid-run with a partial prefix inserted."""
        import pytest

        from repro.hwsim.errors import ProtocolError

        store = HardwareTagStore(granularity=1.0, capacity=64)
        store.push(10.0, 0)
        half_span = PAPER_FORMAT.capacity // 2
        with pytest.raises(ProtocolError, match="span"):
            store.push_batch([(20.0, 1), (10.0 + half_span + 5, 2)])
        assert len(store) == 1
        assert store.pop_min() == (10.0, 0)

    def test_empty_batches(self):
        store = HardwareTagStore(granularity=1.0)
        store.push_batch([])
        assert len(store) == 0
        assert store.pop_batch(0) == []


@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.one_of(
                st.floats(min_value=0.0, max_value=60.0),
                st.floats(min_value=-800.0, max_value=0.0),
            ),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_identical_service_order(steps):
    """Hypothesis-shrunk parity: every (drift, pushes, pops) trace —
    including backward drifts that trigger clamping — serves the same
    sequence batched as per-op, on both verification modes."""
    ops = []
    vt, live = 0.0, 0
    for drift, pushes, pops in steps:
        vt = max(0.0, vt + drift)
        for index in range(pushes):
            ops.append(("push", vt + 17.0 * index, len(ops)))
            live += 1
        for _ in range(min(pops, live)):
            ops.append(("pop",))
            live -= 1
    if not ops:
        return
    reference = HardwareTagStore(granularity=1.0, capacity=1024)
    served_ref = drive_per_op(reference, ops)
    for fast in (False, True):
        store = HardwareTagStore(granularity=1.0, capacity=1024, fast_mode=fast)
        assert drive_batched(store, ops) == served_ref
        assert store.clamped_inserts == reference.clamped_inserts
        store.circuit.check_invariants()
