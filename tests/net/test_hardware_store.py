"""Unit tests for the quantizing hardware tag store."""

import pytest

from repro.core.words import PAPER_FORMAT, WordFormat
from repro.hwsim.errors import ConfigurationError, ProtocolError
from repro.net.hardware_store import HardwareTagStore


class TestQuantization:
    def test_quantize(self):
        store = HardwareTagStore(granularity=10.0)
        assert store.quantize(99.9) == 9
        assert store.quantize(100.0) == 10

    def test_same_quantum_is_fcfs(self):
        store = HardwareTagStore(granularity=10.0, capacity=8)
        store.push(51.0, 1)
        store.push(53.0, 2)
        store.push(57.0, 3)
        order = [store.pop_min()[1] for _ in range(3)]
        assert order == [1, 2, 3]

    def test_cross_quantum_ordering_preserved(self):
        store = HardwareTagStore(granularity=10.0, capacity=8)
        store.push(95.0, 1)
        store.push(101.0, 2)
        store.push(99.0, 3)
        order = [store.pop_min()[1] for _ in range(3)]
        # 95 and 99 share quantum 9 (FCFS), 101 is quantum 10.
        assert order == [1, 3, 2]

    def test_exact_tag_returned(self):
        store = HardwareTagStore(granularity=100.0, capacity=8)
        store.push(123.456, 0)
        finish_tag, _ = store.pop_min()
        assert finish_tag == 123.456

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            HardwareTagStore(granularity=0.0)


class TestWrapManagement:
    def test_sections_cleared_on_lap(self):
        store = HardwareTagStore(
            fmt=PAPER_FORMAT, granularity=1.0, capacity=16
        )
        tag = 0.0
        served = 0
        for step in range(3000):
            tag += 5.0
            store.push(tag, step)
            if len(store) > 4:  # keep a standing backlog so the busy
                store.pop_min()  # period (and its laps) never resets
                served += 1
        assert store.sections_cleared > 0
        assert store.markers_purged > 0
        store.circuit.check_invariants()

    def test_epoch_reset_on_drain(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(1000.0, 0)
        store.pop_min()
        # After draining, a much smaller tag is legal again.
        store.push(3.0, 1)
        assert store.pop_min()[1] == 1

    def test_len(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        assert len(store) == 0
        store.push(5.0, 0)
        assert len(store) == 1

    def test_cycles_accumulate(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(1.0, 0)
        store.push(2.0, 1)
        store.pop_min()
        assert store.operations == 3
        assert store.cycles == 12


class TestClamping:
    def test_clamp_statistics(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(100.0, 0)
        store.push(50.0, 1)
        assert store.clamped_inserts == 1
        assert store.clamp_error_quanta >= 49

    def test_clamped_tag_not_lost(self):
        store = HardwareTagStore(granularity=1.0, capacity=8)
        store.push(100.0, 0)
        store.push(50.0, 1)
        payloads = {store.pop_min()[1] for _ in range(2)}
        assert payloads == {0, 1}


class TestSpanGuard:
    def test_fine_granularity_overflow(self):
        small = WordFormat(levels=2, literal_bits=3)
        store = HardwareTagStore(fmt=small, granularity=1.0, capacity=8)
        store.push(1.0, 0)
        with pytest.raises(ProtocolError):
            store.push(100.0, 1)

    def test_coarser_granularity_fixes_overflow(self):
        small = WordFormat(levels=2, literal_bits=3)
        store = HardwareTagStore(fmt=small, granularity=10.0, capacity=8)
        store.push(1.0, 0)
        store.push(100.0, 1)  # now only 10 quanta apart
        assert len(store) == 2


class TestPeekMinExact:
    """Regression: peek_min_exact used to reach into the storage's
    backing SRAM model (``circuit.storage._memory.peek``); it now goes
    through the circuit's head-register accessor, which by contract
    costs no memory access and no cycles."""

    def test_returns_exact_head_payload(self):
        store = HardwareTagStore(granularity=1.0)
        assert store.peek_min_exact() is None
        store.push(3.5, 2)
        store.push(7.25, 1)
        assert store.peek_min_exact() == (3.5, 2)
        assert store.pop_min() == (3.5, 2)
        assert store.peek_min_exact() == (7.25, 1)

    def test_costs_no_accesses_or_cycles(self):
        store = HardwareTagStore(granularity=1.0)
        for tag in (5.0, 9.0, 2.0):
            store.push(tag, int(tag))
        accesses = store.circuit.registry.total().total
        cycles = store.cycles
        for _ in range(50):
            store.peek_min_exact()
        assert store.circuit.registry.total().total == accesses
        assert store.cycles == cycles

    def test_head_register_survives_batch_paths(self):
        store = HardwareTagStore(granularity=1.0, fast_mode=True)
        store.push_batch([(1.0, 1), (4.0, 0), (6.0, 2)])
        assert store.peek_min_exact() == (1.0, 1)
        store.pop_batch(2)
        assert store.peek_min_exact() == (6.0, 2)
        store.pop_batch(1)
        assert store.peek_min_exact() is None
