"""Shared fixtures for the test suite."""

import random

import pytest

from repro.core.words import FIGURE_FORMAT, PAPER_FORMAT, WordFormat


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def paper_format():
    """The silicon word format: 12-bit tags, 3 levels, 16-bit nodes."""
    return PAPER_FORMAT


@pytest.fixture
def figure_format():
    """The Figs. 4/5 worked-example format: 6-bit tags, 2-bit literals."""
    return FIGURE_FORMAT


@pytest.fixture
def tiny_format():
    """A 4-bit format for exhaustive enumeration tests."""
    return WordFormat(levels=2, literal_bits=2)
