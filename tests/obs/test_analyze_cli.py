"""``python -m repro analyze`` end to end: subcommands, exit codes, and
the fail-loudly-on-lossy-traces policy."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.analyze import main as analyze_main
from repro.obs.runner import run_traced_soak

SEED = 20060101


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """One per-op and one batched framed trace of the same workload."""
    root = tmp_path_factory.mktemp("traces")
    per_op = root / "per_op.jsonl"
    batched = root / "batched.jsonl"
    run_traced_soak(ops=1_200, seed=SEED, trace_sink=str(per_op))
    run_traced_soak(
        ops=1_200, seed=SEED, batched=True, trace_sink=str(batched)
    )
    return per_op, batched


class TestCheck:
    def test_clean_trace_exits_zero(self, traces, capsys):
        per_op, _ = traces
        assert analyze_main(["check", str(per_op)]) == 0
        assert "invariants OK" in capsys.readouterr().out

    def test_json_payload(self, traces, capsys):
        per_op, _ = traces
        assert analyze_main(["check", str(per_op), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["dropped"] == 0

    def test_violating_trace_exits_one(self, tmp_path, capsys):
        # hand-frame a trace whose serve goes backwards
        trace = tmp_path / "bad.jsonl"
        records = [
            {"kind": "trace_header", "schema": 1, "seed": 1,
             "mode": "per_op", "config": {}},
            {"seq": 0, "kind": "insert", "name": "insert",
             "attrs": {"tag": 1000, "occupancy": 1}},
            {"seq": 1, "kind": "insert", "name": "insert",
             "attrs": {"tag": 3000, "occupancy": 2}},
            {"seq": 2, "kind": "dequeue", "name": "dequeue",
             "attrs": {"tag": 3000, "occupancy": 1},
             "deltas": {"tag_storage": {"reads": 1, "writes": 1}}},
            {"seq": 3, "kind": "dequeue", "name": "dequeue",
             "attrs": {"tag": 1000, "occupancy": 0},
             "deltas": {"tag_storage": {"reads": 1, "writes": 1}}},
            {"kind": "trace_footer", "emitted": 4, "dropped": 0},
        ]
        trace.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert analyze_main(["check", str(trace)]) == 1
        assert "serve_monotonic" in capsys.readouterr().out


class TestProfile:
    def test_text_report_and_flamegraph(self, traces, tmp_path, capsys):
        per_op, _ = traces
        folded = tmp_path / "folded.txt"
        code = analyze_main(
            ["profile", str(per_op), "--top", "2", "--flamegraph",
             str(folded)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-component memory traffic" in out
        assert "worst-case forensics" in out
        lines = folded.read_text().splitlines()
        assert lines and all(" " in line for line in lines)

    def test_json_carries_the_trace_header(self, traces, capsys):
        per_op, _ = traces
        assert analyze_main(
            ["profile", str(per_op), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_header"]["seed"] == SEED


class TestDiff:
    def test_per_op_vs_batched_aligns(self, traces, capsys):
        per_op, batched = traces
        assert analyze_main(["diff", str(per_op), str(batched)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_seed_mismatch_exits_two(self, traces, tmp_path, capsys):
        per_op, _ = traces
        other = tmp_path / "other.jsonl"
        run_traced_soak(ops=300, seed=99, trace_sink=str(other))
        assert analyze_main(["diff", str(per_op), str(other)]) == 2
        assert "seed mismatch" in capsys.readouterr().err

    def test_forced_diff_of_diverging_traces_exits_one(
        self, traces, tmp_path, capsys
    ):
        per_op, _ = traces
        other = tmp_path / "other.jsonl"
        run_traced_soak(ops=300, seed=99, trace_sink=str(other))
        assert analyze_main(
            ["diff", str(per_op), str(other), "--force"]
        ) == 1
        assert "DIVERGE" in capsys.readouterr().out


class TestTimeline:
    def test_export(self, traces, tmp_path, capsys):
        per_op, _ = traces
        out = tmp_path / "timeline.json"
        assert analyze_main(
            ["timeline", str(per_op), "-o", str(out)]
        ) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert "perfetto" in capsys.readouterr().out


class TestLossyGate:
    @pytest.fixture()
    def lossy_trace(self, tmp_path):
        """A sink-backed trace whose writer evicted ring events."""
        trace = tmp_path / "lossy.jsonl"
        run = run_traced_soak(
            ops=800, seed=SEED, trace_sink=str(trace), buffer_size=16
        )
        assert run.tracer.dropped > 0
        return trace

    def test_lossy_trace_refused(self, lossy_trace, capsys):
        assert analyze_main(["check", str(lossy_trace)]) == 2
        err = capsys.readouterr().err
        assert "ring-buffer drops" in err
        assert "--allow-lossy" in err

    def test_allow_lossy_downgrades_to_warning(self, lossy_trace, capsys):
        assert analyze_main(
            ["check", str(lossy_trace), "--allow-lossy"]
        ) == 0
        assert "WARNING (lossy trace)" in capsys.readouterr().err

    def test_truncated_file_refused(self, traces, tmp_path, capsys):
        per_op, _ = traces
        lines = per_op.read_text().splitlines(keepends=True)
        clipped = tmp_path / "clipped.jsonl"
        # drop a run of mid-file event lines, keep header + footer
        clipped.write_text("".join(lines[:10] + lines[20:]))
        assert analyze_main(["check", str(clipped)]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_unframed_trace_noted_but_analyzed(self, traces, capsys):
        per_op, _ = traces
        import json as _json

        unframed_lines = [
            line
            for line in per_op.read_text().splitlines()
            if _json.loads(line)["kind"]
            not in ("trace_header", "trace_footer")
        ]
        unframed = per_op.parent / "unframed.jsonl"
        unframed.write_text("\n".join(unframed_lines) + "\n")
        assert analyze_main(["check", str(unframed)]) == 0
        assert "unframed" in capsys.readouterr().err

    def test_missing_file_exits_two(self, capsys):
        assert analyze_main(["check", "/nonexistent/trace.jsonl"]) == 2
        assert "ERROR" in capsys.readouterr().err


class TestTopLevelDispatch:
    def test_repro_analyze_routes_here(self, traces, capsys):
        per_op, _ = traces
        assert repro_main(["analyze", "check", str(per_op)]) == 0
        assert "invariants OK" in capsys.readouterr().out
