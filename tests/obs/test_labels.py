"""Property tests: labeled per-shard series reconcile with aggregates.

The probes double-record every component-stamped event — once into the
unlabeled aggregate series, once into the shard-labeled series — so for
every counter family the labeled series must sum *exactly* (``==``, not
approximately) to the aggregate, and every histogram family must merge
bucket-exactly into the aggregate sketch.  Hypothesis drives random
soaks through a sharded fabric and random synthetic recording patterns
to check both invariants hold by construction.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.perf import _drive_batched, _drive_per_op, make_flow_ops
from repro.fabric.fabric import ScheduleFabric
from repro.obs.instruments import Counter, Gauge, Histogram, InstrumentSet
from repro.obs.probes import StandardProbes, shard_labels
from repro.obs.tracer import Tracer


def run_soak(seed, ops, *, shards=3, batched=False):
    probes = StandardProbes()
    tracer = Tracer(buffer_size=65536, observers=[probes])
    fabric = ScheduleFabric(shards=shards, fast_mode=batched, tracer=tracer)
    drive = _drive_batched if batched else _drive_per_op
    drive(fabric, make_flow_ops(ops, seed, flows=32))
    tracer.close()
    return probes.instruments


def merged_labeled_histogram(family):
    labeled = [inst for key, inst in family.items() if key]
    merged = labeled[0].snapshot()
    for hist in labeled[1:]:
        merged.merge(hist)
    return merged


def assert_labeled_series_reconcile(instruments):
    """Every labeled family's series reconcile with its aggregate."""
    checked = 0
    for name, family in instruments.families():
        aggregate = family.get(())
        labeled = [inst for key, inst in family.items() if key]
        if aggregate is None or not labeled:
            continue
        if isinstance(aggregate, Counter):
            assert sum(c.value for c in labeled) == aggregate.value, name
            checked += 1
        elif isinstance(aggregate, Histogram):
            merged = merged_labeled_histogram(family)
            assert merged.to_state() == aggregate.to_state(), name
            checked += 1
    return checked


class TestSoakReconciliation:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        ops=st.integers(min_value=60, max_value=240),
        batched=st.booleans(),
    )
    def test_labeled_series_sum_to_aggregate(self, seed, ops, batched):
        instruments = run_soak(seed, ops, batched=batched)
        checked = assert_labeled_series_reconcile(instruments)
        # The soak must actually produce labeled families to check —
        # an empty pass would vacuously succeed.
        assert checked > 0

    def test_every_op_counter_has_per_shard_series(self):
        instruments = run_soak(20060101, 200, shards=4)
        family = instruments.series("events_insert")
        shard_values = {
            dict(key)["shard"]: counter.value
            for key, counter in family.items()
            if key
        }
        assert set(shard_values) <= {"0", "1", "2", "3"}
        assert sum(shard_values.values()) == family[()].value


class TestSyntheticRecording:
    """The double-record invariant, divorced from the circuit."""

    @settings(max_examples=50, deadline=None)
    @given(
        observations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1 << 20),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_histogram_merge_is_bucket_exact(self, observations):
        instruments = InstrumentSet()
        for shard, value in observations:
            instruments.hist("cycles").record(value)
            instruments.hist(
                "cycles", labels={"shard": str(shard)}
            ).record(value)
        family = instruments.series("cycles")
        merged = merged_labeled_histogram(family)
        assert merged.to_state() == family[()].to_state()

    @settings(max_examples=50, deadline=None)
    @given(
        observations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=1, max_value=1000),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_counter_sum_is_exact(self, observations):
        instruments = InstrumentSet()
        for shard, amount in observations:
            instruments.counter("ops").inc(amount)
            instruments.counter(
                "ops", labels={"shard": str(shard)}
            ).inc(amount)
        family = instruments.series("ops")
        assert (
            sum(c.value for key, c in family.items() if key)
            == family[()].value
        )

    def test_merge_snapshot_delta_are_label_aware(self):
        instruments = InstrumentSet()
        instruments.counter("ops", labels={"shard": "0"}).inc(3)
        instruments.counter("ops", labels={"shard": "1"}).inc(5)
        before = instruments.snapshot()
        instruments.counter("ops", labels={"shard": "0"}).inc(4)
        deltas = instruments.deltas_since(before)
        series = deltas.series("ops")
        by_shard = {dict(key)["shard"]: c.value for key, c in series.items()}
        assert by_shard == {"0": 4, "1": 0}

        other = InstrumentSet()
        other.counter("ops", labels={"shard": "0"}).inc(10)
        instruments.merge(other)
        assert (
            instruments.counter("ops", labels={"shard": "0"}).value == 17
        )


class TestShardLabels:
    def test_shard_components_strip_the_prefix(self):
        assert shard_labels("shard0") == {"shard": "0"}
        assert shard_labels("shard12") == {"shard": "12"}

    def test_other_components_pass_through(self):
        assert shard_labels("fabric") == {"shard": "fabric"}
        assert shard_labels("shardX") == {"shard": "shardX"}
        assert shard_labels("shard") == {"shard": "shard"}

    def test_gauges_track_per_shard_last_value(self):
        probes = StandardProbes()
        tracer = Tracer(observers=[probes])
        tracer.event("insert", component="shard1", tag=1, occupancy=7)
        tracer.event("insert", component="shard2", tag=2, occupancy=3)
        instruments = probes.instruments
        family = instruments.series("occupancy_now")
        by_shard = {
            dict(key).get("shard"): gauge.value
            for key, gauge in family.items()
            if key
        }
        assert by_shard == {"1": 7.0, "2": 3.0}
        assert isinstance(family[()], Gauge)
        assert family[()].value == 3.0
