"""Exporter formats: JSONL round trip, Prometheus text, run report."""

from repro.hwsim.stats import AccessStats
from repro.obs.events import TraceEvent
from repro.obs.exporters import (
    prometheus_snapshot,
    read_jsonl,
    run_report,
    write_jsonl,
)
from repro.obs.instruments import InstrumentSet


def sample_events():
    return [
        TraceEvent(
            seq=0,
            kind="insert",
            name="insert",
            deltas={"tree": AccessStats(reads=3, writes=2)},
            attrs={"tag": 17, "occupancy": 1},
        ),
        TraceEvent(seq=1, kind="span", name="insert_batch", span_id=0),
        TraceEvent(seq=2, kind="clamp", name="clamp", attrs={"quanta": 4}),
    ]


class TestJsonlRoundTrip:
    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = sample_events()
        assert write_jsonl(events, str(path)) == 3
        assert read_jsonl(str(path)) == events

    def test_file_object_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = sample_events()
        with open(path, "w", encoding="utf-8") as handle:
            write_jsonl(events, handle)
        with open(path, "r", encoding="utf-8") as handle:
            assert read_jsonl(handle) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_events(), str(path))
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(str(path))) == 3


class TestPrometheusSnapshot:
    def test_histogram_gauge_counter_exposition(self):
        instruments = InstrumentSet()
        for value in (1, 2, 2, 9):
            instruments.hist("op_accesses").record(value)
        instruments.gauge("occupancy_now").set(7)
        instruments.counter("backup_activations").inc(2)
        text = prometheus_snapshot(instruments)
        assert "# TYPE repro_op_accesses histogram" in text
        assert 'repro_op_accesses_bucket{le="2"} 3' in text
        assert 'repro_op_accesses_bucket{le="+Inf"} 4' in text
        assert "repro_op_accesses_sum 14" in text
        assert "repro_op_accesses_count 4" in text
        assert "repro_occupancy_now 7" in text
        assert "repro_backup_activations_total 2" in text

    def test_custom_prefix(self):
        instruments = InstrumentSet()
        instruments.counter("ops").inc()
        assert "wfq_ops_total 1" in prometheus_snapshot(
            instruments, prefix="wfq"
        )

    def test_cumulative_counts_are_monotone(self):
        instruments = InstrumentSet()
        for value in range(200):
            instruments.hist("h").record(value)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in prometheus_snapshot(instruments).splitlines()
            if line.startswith("repro_h_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 200


class TestRunReport:
    def test_reconciled_report(self):
        instruments = InstrumentSet()
        instruments.hist("op_accesses").record(11)
        report = run_report(
            title="traced soak",
            totals={"tree": AccessStats(reads=6, writes=4)},
            instruments=instruments,
            event_counts={"insert": 2, "dequeue": 1},
            reconciliation={"traced": 10, "registry": 10},
            notes=("all good",),
        )
        assert "traced soak" in report
        assert "tree" in report
        assert "10" in report
        assert "insert" in report
        assert "op_accesses" in report
        assert "reconciliation OK" in report
        assert "all good" in report

    def test_mismatch_is_flagged(self):
        report = run_report(
            title="bad run",
            totals={"tree": AccessStats(reads=5)},
            reconciliation={"traced": 3, "registry": 5},
        )
        assert "reconciliation MISMATCH" in report
        assert "2 unattributed" in report
