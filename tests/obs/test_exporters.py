"""Exporter formats: JSONL round trip, Prometheus text, run report."""

import re

from repro.hwsim.stats import AccessStats
from repro.obs.events import TraceEvent
from repro.obs.exporters import (
    prometheus_snapshot,
    read_instruments_jsonl,
    read_jsonl,
    run_report,
    sanitize_metric_name,
    write_instruments_jsonl,
    write_jsonl,
)
from repro.obs.instruments import InstrumentSet


def sample_events():
    return [
        TraceEvent(
            seq=0,
            kind="insert",
            name="insert",
            deltas={"tree": AccessStats(reads=3, writes=2)},
            attrs={"tag": 17, "occupancy": 1},
        ),
        TraceEvent(seq=1, kind="span", name="insert_batch", span_id=0),
        TraceEvent(seq=2, kind="clamp", name="clamp", attrs={"quanta": 4}),
    ]


class TestJsonlRoundTrip:
    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = sample_events()
        assert write_jsonl(events, str(path)) == 3
        assert read_jsonl(str(path)) == events

    def test_file_object_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = sample_events()
        with open(path, "w", encoding="utf-8") as handle:
            write_jsonl(events, handle)
        with open(path, "r", encoding="utf-8") as handle:
            assert read_jsonl(handle) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_events(), str(path))
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(str(path))) == 3


class TestPrometheusSnapshot:
    def test_histogram_gauge_counter_exposition(self):
        instruments = InstrumentSet()
        for value in (1, 2, 2, 9):
            instruments.hist("op_accesses").record(value)
        instruments.gauge("occupancy_now").set(7)
        instruments.counter("backup_activations").inc(2)
        text = prometheus_snapshot(instruments)
        assert "# TYPE repro_op_accesses histogram" in text
        assert 'repro_op_accesses_bucket{le="2"} 3' in text
        assert 'repro_op_accesses_bucket{le="+Inf"} 4' in text
        assert "repro_op_accesses_sum 14" in text
        assert "repro_op_accesses_count 4" in text
        assert "repro_occupancy_now 7" in text
        assert "repro_backup_activations_total 2" in text

    def test_custom_prefix(self):
        instruments = InstrumentSet()
        instruments.counter("ops").inc()
        assert "wfq_ops_total 1" in prometheus_snapshot(
            instruments, prefix="wfq"
        )

    def test_cumulative_counts_are_monotone(self):
        instruments = InstrumentSet()
        for value in range(200):
            instruments.hist("h").record(value)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in prometheus_snapshot(instruments).splitlines()
            if line.startswith("repro_h_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 200


class TestMetricNameSanitization:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("op.cycles-p99") == "op_cycles_p99"

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("99th_delay") == "_99th_delay"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("already_valid:ok") == "already_valid:ok"

    def test_idempotent(self):
        once = sanitize_metric_name("a.b c/d")
        assert sanitize_metric_name(once) == once

    def test_invalid_instrument_names_export_clean(self):
        instruments = InstrumentSet()
        instruments.gauge("queue.depth").set(3)
        instruments.counter("ops/total").inc()
        text = prometheus_snapshot(instruments)
        assert "repro_queue_depth 3" in text
        assert "repro_ops_total 1" in text
        assert "." not in text.replace("0.0", "").split("queue", 1)[0]

    def test_counter_total_suffix_not_doubled(self):
        instruments = InstrumentSet()
        instruments.counter("live_windows_total").inc(4)
        text = prometheus_snapshot(instruments)
        assert "# TYPE repro_live_windows_total counter" in text
        assert "repro_live_windows_total 4" in text
        assert "_total_total" not in text


#: Exposition grammar pieces: sample name, one quoted label pair (value
#: may hold any character; backslash, quote, and newline appear only as
#: `\\`, `\"`, `\n` escapes), and the trailing ` value` tail.
_SAMPLE_NAME = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)")
_LABEL_PAIR = re.compile(
    r'(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\[\\"n])*)"'
)
_VALUE_TAIL = re.compile(
    r"^ (?P<value>-?(?:[0-9.]+(?:e[+-]?[0-9]+)?|\+?Inf|NaN))$"
)
_TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<type>counter|gauge|histogram|summary|untyped)$"
)


def _parse_sample(line):
    """Strict-parse one sample line, walking labels pair by pair.

    Quoted label values may contain commas and closing braces, so the
    label block cannot be split naively — each pair is consumed by the
    grammar regex in sequence.
    """
    match = _SAMPLE_NAME.match(line)
    assert match, f"malformed sample line: {line!r}"
    name = match.group("name")
    rest = line[match.end():]
    labels = None
    if rest.startswith("{"):
        body = rest[1:]
        pairs = []
        while True:
            pair = _LABEL_PAIR.match(body)
            assert pair, f"malformed label in: {line!r}"
            pairs.append(pair.group(0))
            body = body[pair.end():]
            if body.startswith(","):
                body = body[1:]
                continue
            break
        assert body.startswith("}"), f"unterminated labels in: {line!r}"
        labels = ",".join(pairs)
        rest = body[1:]
    tail = _VALUE_TAIL.match(rest)
    assert tail, f"malformed value in: {line!r}"
    return name, labels, tail.group("value")


def parse_exposition(text):
    """Strict parse of Prometheus text exposition; returns samples/types.

    Raises AssertionError (with the offending line) on any grammar
    violation — the test-side contract for satellite acceptance.
    """
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            match = _TYPE_LINE.match(line)
            assert match, f"malformed comment line: {line!r}"
            name = match.group("name")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = match.group("type")
            continue
        samples.append(_parse_sample(line))
    return types, samples


def _family(sample_name, types):
    """The TYPE family a sample belongs to (histogram series collapse)."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


class TestExpositionGrammar:
    """Every emitted line must parse; every sample must have a TYPE."""

    def make_instruments(self):
        instruments = InstrumentSet()
        for value in (1, 3, 3, 250, 9000):
            instruments.hist("op.cycles").record(value)
        instruments.hist("batch_accesses_per_op", scale=100).record(2.37)
        instruments.gauge("occupancy_now").set(17)
        instruments.gauge("free-list.depth").set(1024)
        instruments.counter("events_insert").inc(12)
        instruments.counter("live_windows_total").inc(3)
        instruments.counter("9starts_with_digit").inc()
        return instruments

    def test_every_line_parses_and_is_typed(self):
        text = prometheus_snapshot(self.make_instruments())
        types, samples = parse_exposition(text)
        assert samples, "exposition was empty"
        for name, labels, value in samples:
            family = _family(name, types)
            assert family is not None, f"sample {name} has no TYPE line"

    def test_histogram_buckets_cumulative_and_capped(self):
        text = prometheus_snapshot(self.make_instruments())
        types, samples = parse_exposition(text)
        by_hist = {}
        for name, labels, value in samples:
            if name.endswith("_bucket"):
                # le renders last, so everything before it keys the series.
                series = labels.rsplit("le=", 1)[0].rstrip(",")
                by_hist.setdefault((name, series), []).append(
                    (labels, float(value))
                )
        assert by_hist
        for (name, _), buckets in by_hist.items():
            counts = [count for _, count in buckets]
            assert counts == sorted(counts), f"{name} not cumulative"
            assert buckets[-1][0].endswith(
                'le="+Inf"'
            ), f"{name} missing +Inf cap"

    def test_live_snapshot_from_soak_passes_grammar(self):
        """The acceptance check: a real run's /metrics text is clean."""
        from repro.obs.runner import run_traced_soak

        run = run_traced_soak(ops=400, monitor=True, serve_port=0)
        text = run.metrics_text()
        types, samples = parse_exposition(text)
        for name, labels, value in samples:
            assert _family(name, types) is not None, name


class TestLabeledExposition:
    """Labeled families: one TYPE line, aggregate first, values escaped."""

    def make_sharded(self):
        instruments = InstrumentSet()
        for shard, ops in (("0", 5), ("1", 3)):
            instruments.counter("events_insert").inc(ops)
            instruments.counter(
                "events_insert", labels={"shard": shard}
            ).inc(ops)
            for value in range(ops):
                instruments.hist("op_accesses").record(value + 1)
                instruments.hist(
                    "op_accesses", labels={"shard": shard}
                ).record(value + 1)
            instruments.gauge(
                "occupancy_now", labels={"shard": shard}
            ).set(ops)
        return instruments

    def test_labeled_series_strict_parse(self):
        text = prometheus_snapshot(self.make_sharded())
        types, samples = parse_exposition(text)
        for name, labels, value in samples:
            assert _family(name, types) is not None, name

    def test_one_type_line_per_family(self):
        text = prometheus_snapshot(self.make_sharded())
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(type_lines) == len(set(type_lines))
        assert "# TYPE repro_events_insert_total counter" in type_lines

    def test_aggregate_series_renders_before_labeled(self):
        text = prometheus_snapshot(self.make_sharded())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_events_insert_total")
        ]
        assert lines[0].startswith("repro_events_insert_total 8")
        assert 'repro_events_insert_total{shard="0"} 5' in lines
        assert 'repro_events_insert_total{shard="1"} 3' in lines

    def test_labeled_counters_sum_to_aggregate(self):
        text = prometheus_snapshot(self.make_sharded())
        types, samples = parse_exposition(text)
        aggregate = labeled = 0
        for name, labels, value in samples:
            if name != "repro_events_insert_total":
                continue
            if labels is None:
                aggregate = int(value)
            else:
                labeled += int(value)
        assert labeled == aggregate == 8

    def test_label_values_escaped(self):
        instruments = InstrumentSet()
        nasty = 'back\\slash "quote"\nnewline'
        instruments.counter("events", labels={"source": nasty}).inc(2)
        text = prometheus_snapshot(instruments)
        assert (
            'repro_events_total{source="back\\\\slash \\"quote\\"\\nnewline"} 2'
            in text
        )
        types, samples = parse_exposition(text)
        assert any(labels for _, labels, _ in samples)

    def test_histogram_le_appends_after_family_labels(self):
        text = prometheus_snapshot(self.make_sharded())
        assert 'repro_op_accesses_bucket{shard="0",le="+Inf"} 5' in text
        assert 'repro_op_accesses_count{shard="1"} 3' in text


class TestInstrumentsJsonl:
    def make_instruments(self):
        instruments = InstrumentSet()
        for value in (1, 3, 250, 9000):
            instruments.hist("op_cycles").record(value)
            instruments.hist("op_cycles", labels={"shard": "2"}).record(value)
        instruments.hist("clamp_quanta", scale=100).record(0.25)
        gauge = instruments.gauge("occupancy_now")
        gauge.set(12)
        gauge.set(4)
        instruments.counter("events_insert", labels={"shard": "0"}).inc(7)
        return instruments

    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "instruments.jsonl"
        original = self.make_instruments()
        written = write_instruments_jsonl(original, str(path))
        assert written == 5
        restored = read_instruments_jsonl(str(path))
        assert restored.summaries() == original.summaries()
        assert prometheus_snapshot(restored) == prometheus_snapshot(original)

    def test_round_trip_preserves_buckets_exactly(self, tmp_path):
        path = tmp_path / "instruments.jsonl"
        original = self.make_instruments()
        write_instruments_jsonl(original, str(path))
        restored = read_instruments_jsonl(str(path))
        before = original.hist("op_cycles", labels={"shard": "2"})
        after = restored.hist("op_cycles", labels={"shard": "2"})
        assert after.to_state() == before.to_state()

    def test_file_object_round_trip(self, tmp_path):
        path = tmp_path / "instruments.jsonl"
        original = self.make_instruments()
        with open(path, "w", encoding="utf-8") as handle:
            write_instruments_jsonl(original, handle)
        with open(path, "r", encoding="utf-8") as handle:
            restored = read_instruments_jsonl(handle)
        assert restored.summaries() == original.summaries()


class TestRunReport:
    def test_reconciled_report(self):
        instruments = InstrumentSet()
        instruments.hist("op_accesses").record(11)
        report = run_report(
            title="traced soak",
            totals={"tree": AccessStats(reads=6, writes=4)},
            instruments=instruments,
            event_counts={"insert": 2, "dequeue": 1},
            reconciliation={"traced": 10, "registry": 10},
            notes=("all good",),
        )
        assert "traced soak" in report
        assert "tree" in report
        assert "10" in report
        assert "insert" in report
        assert "op_accesses" in report
        assert "reconciliation OK" in report
        assert "all good" in report

    def test_mismatch_is_flagged(self):
        report = run_report(
            title="bad run",
            totals={"tree": AccessStats(reads=5)},
            reconciliation={"traced": 3, "registry": 5},
        )
        assert "reconciliation MISMATCH" in report
        assert "2 unattributed" in report
