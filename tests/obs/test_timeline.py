"""Perfetto timeline export: valid Chrome trace-event JSON, monotone
timestamps per pid/tid — the export half of the acceptance criteria."""

import json

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.net.hardware_store import HardwareTagStore
from repro.obs.events import INVARIANT_KIND, TraceEvent
from repro.obs.timeline import (
    PID,
    TID_BATCH,
    TID_MAINTENANCE,
    TID_OPS,
    build_timeline,
    write_timeline,
)
from repro.obs.tracer import Tracer

SEED = 20060101


def traced_events(*, batched, ops=1_500):
    tracer = Tracer()
    store = HardwareTagStore(
        granularity=8.0, fast_mode=batched, tracer=tracer
    )
    drive = _drive_batched if batched else _drive_per_op
    drive(store, make_mixed_ops(ops, SEED))
    return tracer.events()


def assert_monotonic_per_track(document):
    last = {}
    for entry in document["traceEvents"]:
        if "ts" not in entry:
            continue  # metadata records carry no timestamp
        track = (entry["pid"], entry.get("tid"))
        assert entry["ts"] >= last.get(track, -1), entry
        last[track] = entry["ts"]
        assert entry.get("dur", 0) >= 0


class TestTimelineExport:
    def test_per_op_timeline_valid_and_monotonic(self):
        document = build_timeline(traced_events(batched=False))
        json.dumps(document)  # valid JSON end to end
        assert_monotonic_per_track(document)
        slices = [
            e for e in document["traceEvents"] if e.get("ph") == "X"
        ]
        assert slices
        assert all(entry["pid"] == PID for entry in slices)
        assert any(entry["tid"] == TID_OPS for entry in slices)

    def test_batched_timeline_renders_spans_on_their_thread(self):
        document = build_timeline(traced_events(batched=True))
        assert_monotonic_per_track(document)
        spans = [
            e
            for e in document["traceEvents"]
            if e.get("tid") == TID_BATCH and e.get("ph") == "X"
        ]
        assert spans
        assert {entry["name"] for entry in spans} <= {
            "insert_batch", "dequeue_batch", "marker_flush"
        }
        # a batch span stretches over its children: wider than zero
        assert any(entry["dur"] > 0 for entry in spans)

    def test_thread_metadata_and_counters(self):
        document = build_timeline(traced_events(batched=False, ops=400))
        names = {
            (entry.get("tid"), entry["args"]["name"])
            for entry in document["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert (TID_OPS, "ops") in names
        assert (TID_MAINTENANCE, "maintenance") in names
        assert (TID_BATCH, "batch spans") in names
        counters = [
            entry
            for entry in document["traceEvents"]
            if entry["ph"] == "C"
        ]
        assert {entry["name"] for entry in counters} == {
            "occupancy", "free_list_depth"
        }

    def test_violation_becomes_instant_marker(self):
        events = [
            TraceEvent(seq=0, kind="insert", name="insert",
                       attrs={"tag": 9, "cycles": 4, "occupancy": 1}),
            TraceEvent(seq=1, kind=INVARIANT_KIND, name="insert_budget",
                       attrs={"monitor": "insert_budget",
                              "message": "over budget"}),
        ]
        document = build_timeline(events)
        instants = [
            entry
            for entry in document["traceEvents"]
            if entry["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["name"] == "violation:insert_budget"
        assert instants[0]["s"] == "p"

    def test_header_lands_in_other_data(self):
        document = build_timeline([], header={"seed": 7, "mode": "per_op"})
        assert document["otherData"]["trace_header"]["seed"] == 7

    def test_write_timeline_round_trips(self, tmp_path):
        out = tmp_path / "timeline.json"
        count = write_timeline(
            traced_events(batched=False, ops=300), str(out)
        )
        loaded = json.loads(out.read_text())
        assert len(loaded["traceEvents"]) == count
        assert_monotonic_per_track(loaded)

    def test_op_duration_prefers_modeled_cycles(self):
        events = [
            TraceEvent(seq=0, kind="insert", name="insert",
                       attrs={"tag": 1, "cycles": 4, "occupancy": 1}),
        ]
        document = build_timeline(events)
        op = [e for e in document["traceEvents"] if e.get("ph") == "X"][0]
        assert op["dur"] == 4


def sharded_events(*, shards=3, ops=800):
    from repro.fabric.fabric import ScheduleFabric

    tracer = Tracer()
    fabric = ScheduleFabric(shards=shards, granularity=8.0, tracer=tracer)
    _drive_per_op(fabric, make_mixed_ops(ops, SEED))
    return tracer.events()


class TestPerComponentTracks:
    def test_components_get_their_own_process(self):
        document = build_timeline(sharded_events())
        names = {
            entry["pid"]: entry["args"]["name"]
            for entry in document["traceEvents"]
            if entry.get("name") == "process_name"
        }
        assert names[PID] == "sort_retrieve_circuit"
        components = {name for pid, name in names.items() if pid != PID}
        assert {"shard0", "shard1", "shard2"} <= components

    def test_component_processes_carry_the_thread_trio(self):
        document = build_timeline(sharded_events())
        threads = {}
        for entry in document["traceEvents"]:
            if entry.get("name") == "thread_name":
                threads.setdefault(entry["pid"], {})[entry["tid"]] = entry[
                    "args"
                ]["name"]
        pids = {
            entry["pid"]
            for entry in document["traceEvents"]
            if entry.get("name") == "process_name"
        }
        for pid in pids:
            assert threads[pid] == {
                TID_OPS: "ops",
                TID_MAINTENANCE: "maintenance",
                TID_BATCH: "batch spans",
            }

    def test_slices_land_on_their_component_pid(self):
        events = sharded_events()
        document = build_timeline(events)
        names = {
            entry["pid"]: entry["args"]["name"]
            for entry in document["traceEvents"]
            if entry.get("name") == "process_name"
        }
        slices = [
            entry
            for entry in document["traceEvents"]
            if entry.get("ph") == "X"
        ]
        assert slices
        # Every component-stamped event renders under its own process.
        by_seq = {event.seq: event for event in events}
        for entry in slices:
            event = by_seq[entry["args"]["seq"]]
            component = event.attrs.get("component")
            expected = component if component is not None else (
                "sort_retrieve_circuit"
            )
            assert names[entry["pid"]] == expected

    def test_sharded_timeline_stays_monotonic_per_track(self):
        assert_monotonic_per_track(build_timeline(sharded_events()))

    def test_unstamped_trace_is_byte_identical_to_before(self):
        events = [
            TraceEvent(seq=0, kind="insert", name="insert", attrs={"tag": 1}),
            TraceEvent(
                seq=1, kind="dequeue", name="dequeue", attrs={"tag": 1}
            ),
        ]
        document = build_timeline(events)
        pids = {entry["pid"] for entry in document["traceEvents"]}
        assert pids == {PID}
