"""Differential trace analysis: alignment, divergence forensics, and
header compatibility gating.

The acceptance claim: per-op and batched traces of the same seeded
workload align with zero logical-op divergence — the batched discipline
changes *cost attribution*, never the served operation sequence.
"""

import pytest

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.net.hardware_store import HardwareTagStore
from repro.obs.diff import (
    TraceCompatibilityError,
    diff_traces,
    logical_ops,
)
from repro.obs.events import build_trace_header
from repro.obs.tracer import Tracer

SEED = 20060101


def traced(*, batched, ops=2_000, seed=SEED):
    tracer = Tracer()
    store = HardwareTagStore(
        granularity=8.0, fast_mode=batched, tracer=tracer
    )
    header = build_trace_header(
        seed=seed,
        mode="batched" if batched else "per_op",
        config=store.describe(),
    )
    drive = _drive_batched if batched else _drive_per_op
    drive(store, make_mixed_ops(ops, seed))
    return tracer.events(), header


class TestAcceptanceAlignment:
    def test_per_op_vs_batched_zero_divergence(self):
        events_a, header_a = traced(batched=False)
        events_b, header_b = traced(batched=True)
        diff = diff_traces(
            events_a, events_b, header_a=header_a, header_b=header_b
        )
        assert diff.aligned
        assert diff.divergence is None
        assert diff.ops_a == diff.ops_b > 0
        deltas = diff.kind_deltas()
        # identical op counts and cycles; batched insert traffic is
        # *lower* (amortized finger walk), never higher
        for kind in ("insert", "dequeue"):
            assert deltas[kind]["count"] == 0
            assert deltas[kind]["cycles"] == 0
        assert deltas["insert"]["accesses"] < 0
        assert deltas["dequeue"]["accesses"] == 0
        assert "identical" in diff.report()

    def test_span_traffic_folds_into_op_kinds(self):
        events_b, _ = traced(batched=True, ops=800)
        diff = diff_traces(events_b, events_b)
        total = sum(
            slot["accesses"] for slot in diff.kind_totals_a.values()
        )
        assert total == sum(e.delta_total for e in events_b)
        assert "span" not in diff.kind_totals_a  # folded, not a kind


class TestDivergenceForensics:
    def test_dropped_op_is_located_with_context(self):
        events_a, _ = traced(batched=False, ops=400)
        ops_a = logical_ops(events_a)
        victim = ops_a[50]
        events_b = [
            e for e in events_a if e.seq != victim.seq
        ]
        diff = diff_traces(events_a, events_b, labels=("good", "bad"))
        assert not diff.aligned
        assert diff.divergence.index == 50
        assert diff.divergence.op_a.key == victim.key
        assert len(diff.divergence.context_a) == 3
        report = diff.report()
        assert "DIVERGE" in report
        assert "first divergence at logical op #50" in report

    def test_length_mismatch_diverges_at_the_tail(self):
        events_a, _ = traced(batched=False, ops=300)
        ops_count = len(logical_ops(events_a))
        last = logical_ops(events_a)[-1]
        events_b = [e for e in events_a if e.seq != last.seq]
        diff = diff_traces(events_a, events_b)
        assert not diff.aligned
        assert diff.divergence.index == ops_count - 1
        assert diff.divergence.op_b is None  # b's sequence ended

    def test_failed_and_non_op_events_never_align(self):
        from repro.hwsim.stats import AccessStats
        from repro.obs.events import TraceEvent

        events = [
            TraceEvent(seq=0, kind="insert", name="insert",
                       attrs={"tag": 5}),
            TraceEvent(seq=1, kind="dequeue", name="dequeue",
                       attrs={"failed": True}),
            TraceEvent(seq=2, kind="section_clear", name="section_clear",
                       deltas={"t": AccessStats(reads=1)}),
        ]
        assert [op.key for op in logical_ops(events)] == [("insert", 5)]


class TestHeaderGating:
    def test_seed_mismatch_refused(self):
        events_a, header_a = traced(batched=False, ops=200)
        events_b, header_b = traced(batched=False, ops=200, seed=7)
        with pytest.raises(TraceCompatibilityError) as err:
            diff_traces(
                events_a, events_b, header_a=header_a, header_b=header_b
            )
        assert "seed mismatch" in str(err.value)

    def test_config_mismatch_refused(self):
        events_a, header_a = traced(batched=False, ops=200)
        header_b = dict(header_a)
        header_b["config"] = dict(header_a["config"], levels=4)
        with pytest.raises(TraceCompatibilityError) as err:
            diff_traces(
                events_a, events_a, header_a=header_a, header_b=header_b
            )
        assert "levels" in str(err.value)

    def test_force_demotes_mismatch_to_note(self):
        events_a, header_a = traced(batched=False, ops=200)
        events_b, header_b = traced(batched=False, ops=200, seed=7)
        diff = diff_traces(
            events_a,
            events_b,
            header_a=header_a,
            header_b=header_b,
            force=True,
        )
        assert any("forced past" in note for note in diff.notes)
        assert not diff.aligned  # different workloads really do diverge

    def test_mode_is_never_gated(self):
        events_a, header_a = traced(batched=False, ops=200)
        events_b, header_b = traced(batched=True, ops=200)
        assert header_a["mode"] != header_b["mode"]
        diff = diff_traces(
            events_a, events_b, header_a=header_a, header_b=header_b
        )
        assert diff.aligned

    def test_unframed_traces_diff_with_note(self):
        events_a, _ = traced(batched=False, ops=200)
        diff = diff_traces(events_a, events_a)
        assert diff.aligned
        assert any("unframed" in note for note in diff.notes)

    def test_granularity_compares_as_float(self):
        events_a, header_a = traced(batched=False, ops=100)
        header_b = dict(header_a)
        header_b["config"] = dict(header_a["config"])
        header_b["config"]["granularity"] = int(
            header_a["config"]["granularity"]
        )
        diff = diff_traces(
            events_a, events_a, header_a=header_a, header_b=header_b
        )
        assert diff.aligned
        assert not any("granularity" in note for note in diff.notes)

    def test_to_dict_is_json_ready(self):
        import json

        events_a, header_a = traced(batched=False, ops=100)
        diff = diff_traces(events_a, events_a, header_a=header_a,
                           header_b=header_a)
        payload = diff.to_dict()
        json.dumps(payload)
        assert payload["aligned"] is True
        assert payload["first_divergence"] is None
