"""Turbo soaks through the telemetry layer: trace equivalence proof.

The CI equivalence argument: a monitored turbo soak and a monitored
gate soak of the same seed must produce traces that diff to zero
logical divergence — identical op streams, identical per-kind access
and cycle totals.  These tests run that argument in-process.
"""

from repro.obs.diff import diff_traces, logical_ops
from repro.obs.runner import run_traced_soak

SEED = 20060101


def test_turbo_soak_reconciles_and_monitors_clean():
    run = run_traced_soak(ops=3_000, seed=SEED, turbo=True, monitor=True)
    assert run.turbo is True
    assert run.store.turbo is True
    assert run.reconciled
    assert run.monitors is not None and not run.monitors.violations
    assert "turbo engine" in run.report()
    header = run.tracer.header
    assert header["engine"] == "turbo"
    assert run.to_document()["workload"]["engine"] == "turbo"


def test_turbo_trace_diffs_clean_against_gate():
    gate = run_traced_soak(ops=3_000, seed=SEED)
    turbo = run_traced_soak(ops=3_000, seed=SEED, turbo=True)
    assert gate.tracer.header["engine"] == "gate"
    diff = diff_traces(
        gate.tracer.events(),
        turbo.tracer.events(),
        header_a=gate.tracer.header,
        header_b=turbo.tracer.header,
    )
    assert diff.aligned
    assert diff.divergence is None
    assert diff.ops_a == diff.ops_b > 0
    # Exact accounting parity shows up as all-zero kind deltas.
    for kind, delta in diff.kind_deltas().items():
        assert delta["count"] == 0, kind
        assert delta["accesses"] == 0, kind
        assert delta["cycles"] == 0, kind
    assert logical_ops(gate.tracer.events()) == logical_ops(
        turbo.tracer.events()
    )


def test_turbo_batched_soak_matches_gate_batched():
    gate = run_traced_soak(ops=3_000, seed=SEED, batched=True)
    turbo = run_traced_soak(ops=3_000, seed=SEED, batched=True, turbo=True)
    diff = diff_traces(
        gate.tracer.events(),
        turbo.tracer.events(),
        header_a=gate.tracer.header,
        header_b=turbo.tracer.header,
    )
    assert diff.aligned
    assert diff.divergence is None
    for delta in diff.kind_deltas().values():
        assert delta["accesses"] == 0
        assert delta["cycles"] == 0
