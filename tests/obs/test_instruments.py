"""Instrument correctness, including percentiles against a numpy oracle."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.instruments import Counter, Gauge, Histogram, InstrumentSet


def nearest_rank(data, q):
    """The exact nearest-rank percentile numpy computes with inverted_cdf."""
    return float(np.percentile(np.asarray(data), q, method="inverted_cdf"))


class TestHistogramExactRange:
    """Values below 2**subbucket_bits are stored exactly."""

    @pytest.mark.parametrize("q", [1, 25, 50, 75, 90, 99, 100])
    def test_matches_numpy_nearest_rank_exactly(self, q):
        rng = random.Random(42)
        data = [rng.randrange(32) for _ in range(5_000)]
        hist = Histogram(subbucket_bits=5)
        for value in data:
            hist.record(value)
        assert hist.percentile(q) == nearest_rank(data, q)

    def test_min_max_mean_sum(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        hist = Histogram()
        for value in data:
            hist.record(value)
        assert hist.min == min(data)
        assert hist.max == max(data)
        assert hist.mean == pytest.approx(np.mean(data))
        assert hist.sum == sum(data)
        assert hist.count == len(data)


class TestHistogramBoundedError:
    """Above the linear range the quantile error is bounded by 2**-bits."""

    @pytest.mark.parametrize("seed", [7, 99, 12345])
    @pytest.mark.parametrize("q", [50, 90, 99, 100])
    def test_relative_error_within_bound(self, seed, q):
        rng = random.Random(seed)
        # heavy-tailed: spans many power-of-two ranges
        data = [int(rng.lognormvariate(6, 2)) + 1 for _ in range(4_000)]
        hist = Histogram(subbucket_bits=5)
        for value in data:
            hist.record(value)
        truth = nearest_rank(data, q)
        estimate = hist.percentile(q)
        # nearest-rank bucket upper bound: never below the true sample,
        # never beyond one sub-bucket width (1/32 relative) above it
        assert truth <= estimate <= truth * (1 + 2 ** -5) + 1

    def test_estimate_clamped_to_observed_max(self):
        hist = Histogram()
        hist.record(1000)
        assert hist.percentile(100) == 1000
        assert hist.max == 1000

    def test_scale_for_fractional_values(self):
        hist = Histogram(scale=100)
        hist.record(0.25)
        hist.record(0.75)
        assert hist.min == 0.25
        assert hist.max == 0.75
        assert hist.percentile(100) == 0.75
        assert hist.sum == pytest.approx(1.0)


class TestHistogramStructure:
    def test_merge(self):
        a, b = Histogram(), Histogram()
        for value in (1, 2, 3):
            a.record(value)
        for value in (100, 200):
            b.record(value)
        a.merge(b)
        assert a.count == 5
        assert a.min == 1
        assert a.max == 200

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(subbucket_bits=5).merge(Histogram(subbucket_bits=6))

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Histogram().record(-1)

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_cumulative_buckets_are_monotone(self):
        hist = Histogram()
        rng = random.Random(1)
        for _ in range(1000):
            hist.record(rng.randrange(10_000))
        cumulative = hist.cumulative_buckets()
        bounds = [bound for bound, _ in cumulative]
        counts = [count for _, count in cumulative]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 1000


values_strategy = st.lists(
    st.integers(min_value=0, max_value=1_000_000), max_size=200
)


def build(values):
    hist = Histogram()
    for value in values:
        hist.record(value)
    return hist


class TestHistogramMergeProperties:
    """Algebraic laws of merge, the basis for shard aggregation."""

    @settings(max_examples=50, deadline=None)
    @given(left=values_strategy, right=values_strategy)
    def test_count_and_sum_are_additive(self, left, right):
        merged = build(left)
        merged.merge(build(right))
        assert merged.count == len(left) + len(right)
        assert merged.sum == sum(left) + sum(right)

    @settings(max_examples=50, deadline=None)
    @given(left=values_strategy, right=values_strategy)
    def test_merge_equals_union_recording(self, left, right):
        """Merging two histograms == recording all values into one."""
        merged = build(left)
        merged.merge(build(right))
        union = build(left + right)
        for q in (1, 25, 50, 75, 90, 99, 100):
            assert merged.percentile(q) == union.percentile(q)
        assert merged.min == union.min
        assert merged.max == union.max

    @settings(max_examples=50, deadline=None)
    @given(values=values_strategy)
    def test_percentiles_monotone_in_q(self, values):
        hist = build(values)
        quantiles = [hist.percentile(q) for q in range(1, 101)]
        assert quantiles == sorted(quantiles)

    @settings(max_examples=50, deadline=None)
    @given(left=values_strategy, right=values_strategy)
    def test_merge_never_shrinks_percentiles_below_parts_min(self, left, right):
        """A merged percentile stays within the parts' envelope.

        The envelope is widened by one sub-bucket width on each side:
        values sharing a bucket (e.g. 64 and 65) can put a part's
        max-clamped estimate just outside the merged bucket bound.
        """
        if not left or not right:
            return
        a, b = build(left), build(right)
        merged = build(left)
        merged.merge(b)
        for q in (50, 99):
            low = min(a.percentile(q), b.percentile(q))
            high = max(a.percentile(q), b.percentile(q))
            assert low / (1 + 2 ** -5) - 1 <= merged.percentile(q)
            assert merged.percentile(q) <= high * (1 + 2 ** -5) + 1


class TestHistogramSnapshotDelta:
    """The windowed collector's delta math."""

    @settings(max_examples=50, deadline=None)
    @given(before=values_strategy, after=values_strategy)
    def test_delta_matches_tail_recording(self, before, after):
        hist = build(before)
        earlier = hist.snapshot()
        for value in after:
            hist.record(value)
        delta = hist.delta_since(earlier)
        tail = build(after)
        assert delta.count == tail.count
        assert delta.sum == tail.sum
        # Bucket counts are exact; only the delta's min/max are bucket
        # bounds, so percentiles agree within one sub-bucket width.
        assert delta._buckets == tail._buckets
        for q in (50, 99):
            truth = tail.percentile(q)
            assert truth <= delta.percentile(q) <= truth * (1 + 2 ** -5) + 1

    def test_snapshot_is_independent(self):
        hist = build([1, 2, 3])
        frozen = hist.snapshot()
        hist.record(1000)
        assert frozen.count == 3
        assert frozen.max == 3

    def test_delta_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(subbucket_bits=5).delta_since(
                Histogram(subbucket_bits=6)
            )

    def test_delta_min_max_cover_the_tail(self):
        hist = build([5, 10])
        earlier = hist.snapshot()
        hist.record(700)
        hist.record(42)
        delta = hist.delta_since(earlier)
        # Bucket bounds: min is the low edge of the smallest grown
        # bucket, max is clamped to the true observed maximum.
        assert delta.min <= 42
        assert delta.max >= 700
        assert delta.max <= hist.max


class TestGaugeAndCounter:
    def test_gauge_tracks_extremes(self):
        gauge = Gauge()
        for value in (5, -2, 9, 3):
            gauge.set(value)
        assert gauge.value == 3
        assert gauge.min == -2
        assert gauge.max == 9
        assert gauge.updates == 4
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 4

    def test_counter_is_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestInstrumentSet:
    def test_get_or_create(self):
        instruments = InstrumentSet()
        hist = instruments.hist("op_accesses")
        assert instruments.hist("op_accesses") is hist
        assert "op_accesses" in instruments
        assert instruments.names() == ["op_accesses"]

    def test_kind_collision_raises(self):
        instruments = InstrumentSet()
        instruments.hist("x")
        with pytest.raises(TypeError):
            instruments.gauge("x")

    def test_summaries_cover_all_kinds(self):
        instruments = InstrumentSet()
        instruments.hist("h").record(5)
        instruments.gauge("g").set(2)
        instruments.counter("c").inc(3)
        summaries = instruments.summaries()
        assert summaries["h"]["count"] == 1
        assert summaries["g"]["value"] == 2
        assert summaries["c"]["value"] == 3
