"""Tracer core semantics: buffering, spans, attribution, sinks."""

import io
import json

import pytest

from repro.hwsim.stats import AccessStats, StatsRegistry
from repro.obs.events import SPAN_KIND, TraceEvent
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


def make_registry():
    registry = StatsRegistry()
    for name in ("tree", "storage"):
        registry.register(name, AccessStats())
    return registry


class TestNullTracer:
    def test_is_disabled_and_emits_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event("insert", tag=3)
        with tracer.span("batch"):
            tracer.event("insert", tag=4)
        assert tracer.events() == []
        assert tracer.emitted == 0
        assert tracer.dropped == 0
        assert tracer.attributed_totals() == {}

    def test_singleton_shared(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")


class TestEventEmission:
    def test_events_are_sequenced_and_buffered(self):
        tracer = Tracer()
        tracer.event("insert", tag=1)
        tracer.event("dequeue", tag=1)
        events = tracer.events()
        assert [e.seq for e in events] == [0, 1]
        assert [e.kind for e in events] == ["insert", "dequeue"]
        assert events[0].attrs == {"tag": 1}
        assert tracer.emitted == 2
        assert tracer.dropped == 0

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(buffer_size=3)
        for i in range(5):
            tracer.event("insert", tag=i)
        assert [e.attrs["tag"] for e in tracer.events()] == [2, 3, 4]
        assert tracer.emitted == 5
        assert tracer.dropped == 2

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.event("insert", tag=1)
        tracer.event("dequeue", tag=1)
        tracer.event("insert", tag=2)
        assert [e.attrs["tag"] for e in tracer.events("insert")] == [1, 2]

    def test_buffer_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)

    def test_observers_see_every_event(self):
        seen = []
        tracer = Tracer(observers=[seen.append])
        tracer.event("insert", tag=7)
        tracer.add_observer(seen.append)
        tracer.event("dequeue", tag=7)
        # first event once, second event twice (two observers by then)
        assert [e.kind for e in seen] == ["insert", "dequeue", "dequeue"]


class TestAttribution:
    def test_event_deltas_accumulate_into_totals(self):
        tracer = Tracer()
        tracer.event("insert", deltas={"tree": AccessStats(reads=3, writes=1)})
        tracer.event("insert", deltas={"tree": AccessStats(reads=2, writes=2)})
        totals = tracer.attributed_totals()
        assert totals["tree"] == AccessStats(reads=5, writes=3)
        assert tracer.attributed_grand_total() == AccessStats(reads=5, writes=3)

    def test_totals_survive_ring_eviction(self):
        tracer = Tracer(buffer_size=1)
        for _ in range(10):
            tracer.event("insert", deltas={"tree": AccessStats(reads=1)})
        assert tracer.dropped == 9
        assert tracer.attributed_grand_total().reads == 10

    def test_span_claims_only_unattributed_window(self):
        registry = make_registry()
        tracer = Tracer()
        with tracer.span("batch", registry=registry, count=2):
            registry["tree"].record_read(4)
            # the child event claims part of the window explicitly
            tracer.event("insert", deltas={"tree": AccessStats(reads=3)})
            registry["storage"].record_write(2)
        span_event = tracer.events(SPAN_KIND)[0]
        # window was tree:4r + storage:2w; child claimed tree:3r
        assert span_event.deltas == {
            "tree": AccessStats(reads=1),
            "storage": AccessStats(writes=2),
        }
        # every registry access attributed exactly once
        assert tracer.attributed_totals() == {
            "tree": AccessStats(reads=4),
            "storage": AccessStats(writes=2),
        }

    def test_nested_spans_propagate_to_parent(self):
        registry = make_registry()
        tracer = Tracer()
        with tracer.span("outer", registry=registry):
            registry["tree"].record_read(1)
            with tracer.span("inner", registry=registry):
                registry["tree"].record_read(5)
        inner, outer = tracer.events(SPAN_KIND)
        assert inner.name == "inner"
        assert inner.deltas == {"tree": AccessStats(reads=5)}
        # the outer span keeps only its own read
        assert outer.deltas == {"tree": AccessStats(reads=1)}
        assert tracer.attributed_grand_total().reads == 6
        assert tracer.open_spans == 0

    def test_span_failure_is_tagged(self):
        registry = make_registry()
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("batch", registry=registry):
                registry["tree"].record_write(2)
                raise RuntimeError("boom")
        event = tracer.events(SPAN_KIND)[0]
        assert event.attrs["failed"] is True
        assert event.attrs["error"] == "RuntimeError"
        # partial traffic still attributed
        assert event.deltas == {"tree": AccessStats(writes=2)}

    def test_child_event_inside_span_carries_span_id(self):
        tracer = Tracer()
        with tracer.span("batch") as span:
            tracer.event("insert", tag=1)
        child = tracer.events("insert")[0]
        assert child.span_id == span.span_id


class TestSink:
    def test_streams_jsonl_to_file_object(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink)
        tracer.event("insert", deltas={"tree": AccessStats(reads=2)}, tag=9)
        tracer.flush()
        record = json.loads(sink.getvalue())
        assert record["kind"] == "insert"
        assert record["deltas"]["tree"] == {"reads": 2, "writes": 0}
        assert record["attrs"]["tag"] == 9

    def test_opens_path_lazily_and_sees_evicted_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(buffer_size=1, sink=str(path)) as tracer:
            for i in range(4):
                tracer.event("insert", tag=i)
            tracer.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 4  # the sink saw what the ring evicted
        assert [json.loads(line)["attrs"]["tag"] for line in lines] == [0, 1, 2, 3]

    def test_no_sink_until_first_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(path))
        assert not path.exists()
        tracer.close()


class TestEventRoundTrip:
    def test_to_dict_is_sparse(self):
        event = TraceEvent(seq=0, kind="insert", name="insert")
        assert event.to_dict() == {"seq": 0, "kind": "insert", "name": "insert"}

    def test_from_dict_rebuilds_deltas(self):
        original = TraceEvent(
            seq=3,
            kind="span",
            name="insert_batch",
            span_id=1,
            deltas={"tree": AccessStats(reads=4, writes=2)},
            attrs={"count": 8},
        )
        rebuilt = TraceEvent.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.delta_reads == 4
        assert rebuilt.delta_writes == 2
        assert rebuilt.delta_total == 6


def foreign_records():
    """A worker-style event stream serialized to dicts."""
    worker = Tracer()
    with worker.span("push_batch"):
        worker.event(
            "insert", tag=1, deltas={"tree": AccessStats(reads=2, writes=1)}
        )
        worker.event(
            "insert", tag=2, deltas={"tree": AccessStats(reads=1, writes=1)}
        )
    return [event.to_dict() for event in worker.events()]


class TestIngest:
    def test_reemits_with_fresh_seqs_and_component(self):
        parent = Tracer()
        parent.event("dequeue", tag=0)
        ingested = parent.ingest(foreign_records(), component="shard1")
        assert [e.seq for e in parent.events()] == [0, 1, 2, 3]
        assert all(e.attrs["component"] == "shard1" for e in ingested)
        assert [e.kind for e in ingested] == ["insert", "insert", "span"]

    def test_existing_component_stamp_wins(self):
        parent = Tracer()
        records = foreign_records()
        records[0]["attrs"]["component"] = "shard9"
        ingested = parent.ingest(records, component="shard1")
        assert ingested[0].attrs["component"] == "shard9"
        assert ingested[1].attrs["component"] == "shard1"

    def test_span_ids_remapped_consistently(self):
        parent = Tracer()
        # Collide the parent's span-id space with the worker's.
        with parent.span("outer"):
            pass
        ingested = parent.ingest(foreign_records(), component="shard0")
        children = [e for e in ingested if e.kind == "insert"]
        close = next(e for e in ingested if e.kind == SPAN_KIND)
        # Children point at the remapped span id the close event carries.
        assert children[0].span_id == close.attrs["span"]
        assert children[1].span_id == close.attrs["span"]
        # ... and the remapped id is fresh, not the worker's id 1.
        parent_span_ids = {
            e.attrs["span"] for e in parent.events(SPAN_KIND)
        }
        assert len(parent_span_ids) == 2

    def test_top_level_records_parent_under_open_span(self):
        parent = Tracer()
        registry = make_registry()
        with parent.span("shard_group", registry=registry):
            ingested = parent.ingest(
                [
                    TraceEvent(
                        seq=0,
                        kind="insert",
                        name="insert",
                        deltas={"tree": AccessStats(reads=3, writes=0)},
                    ).to_dict()
                ],
                component="shard2",
            )
        close = parent.events(SPAN_KIND)[-1]
        assert ingested[0].span_id == close.attrs["span"]
        # The open span absorbed the ingested deltas, so attribution
        # stays exact: totals == the one ingested delta.
        totals = parent.attributed_totals()
        assert totals["tree"].reads == 3
        assert totals["tree"].writes == 0

    def test_attributed_totals_by_component(self):
        parent = Tracer()
        parent.ingest(foreign_records(), component="shard0")
        parent.ingest(foreign_records(), component="shard1")
        parent.event(
            "insert",
            tag=5,
            component="fabric",
            deltas={"storage": AccessStats(reads=1, writes=0)},
        )
        by_component = parent.attributed_totals_by_component()
        assert by_component["shard0"]["tree"].total == 5
        assert by_component["shard1"]["tree"].total == 5
        assert by_component["fabric"]["storage"].total == 1
        # Snapshot semantics: mutating the result leaves the tracer alone.
        by_component["shard0"]["tree"].reads = 0
        assert parent.attributed_totals_by_component()["shard0"][
            "tree"
        ].total == 5

    def test_null_tracer_ingest_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.ingest(foreign_records(), component="shard0") == []
        assert tracer.attributed_totals_by_component() == {}
