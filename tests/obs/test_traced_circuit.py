"""Telemetry threaded through the circuit and store.

Covers the acceptance invariants of the observability layer: a default
circuit emits nothing and runs the uninstrumented class hot paths; a
traced run attributes every registry access to exactly one event; and
the batched fast paths emit an event stream comparable event-for-event
with per-op mode.
"""

import pytest

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.core.sort_retrieve import TagSortRetrieveCircuit
from repro.core.words import FIGURE_FORMAT, PAPER_FORMAT
from repro.hwsim.errors import EmptyStructureError
from repro.hwsim.stats import AccessStats
from repro.net.hardware_store import HardwareTagStore
from repro.obs.events import OP_KINDS
from repro.obs.tracer import NULL_TRACER, Tracer


def op_stream(tracer):
    """(kind, tag) pairs of the logical-operation events, in order."""
    return [
        (event.kind, event.attrs.get("tag"))
        for event in tracer.events()
        if event.kind in OP_KINDS
    ]


class TestNullTracerDefault:
    def test_untraced_circuit_has_no_instance_wrappers(self):
        circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=8)
        assert circuit.tracer is NULL_TRACER
        for name in ("insert", "dequeue_min", "insert_batch", "dequeue_batch"):
            assert name not in vars(circuit)

    def test_untraced_run_emits_zero_events(self):
        circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=8)
        circuit.insert(50)
        circuit.insert(100)
        circuit.dequeue_min()
        assert circuit.tracer.events() == []
        assert circuit.tracer.emitted == 0

    def test_attach_then_detach_restores_class_paths(self):
        circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=8)
        tracer = Tracer()
        circuit.attach_tracer(tracer)
        assert "insert" in vars(circuit)
        circuit.insert(10)
        assert tracer.emitted == 1
        circuit.detach_tracer()
        assert circuit.tracer is NULL_TRACER
        assert "insert" not in vars(circuit)
        circuit.insert(20)
        assert tracer.emitted == 1  # no longer receiving events

    def test_attaching_disabled_tracer_detaches(self):
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=8, tracer=Tracer()
        )
        assert "insert" in vars(circuit)
        circuit.attach_tracer(NULL_TRACER)
        assert "insert" not in vars(circuit)


class TestPerOpEvents:
    def test_insert_and_dequeue_events_carry_exact_deltas(self):
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=8, tracer=tracer
        )
        circuit.insert(100)
        circuit.insert(150)
        circuit.dequeue_min()

        events = tracer.events()
        assert [e.kind for e in events] == ["insert", "insert", "dequeue"]
        first = events[0]
        assert first.attrs["tag"] == 100
        assert first.attrs["cycles"] == 4
        assert first.attrs["occupancy"] == 1
        assert first.attrs["used_backup"] is False
        assert first.delta_total > 0
        served = events[2]
        assert served.attrs["tag"] == 100  # min-first service
        assert served.attrs["occupancy"] == 1

        # attribution invariant at circuit scope
        registry = circuit.registry
        traced = tracer.attributed_totals()
        for name in registry.names():
            stats = registry[name]
            if stats.total:
                assert traced[name] == AccessStats(
                    reads=stats.reads, writes=stats.writes
                )

    def test_failed_dequeue_emits_failed_event_and_reraises(self):
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=8, tracer=tracer
        )
        with pytest.raises(EmptyStructureError):
            circuit.dequeue_min()
        event = tracer.events("dequeue")[0]
        assert event.attrs["failed"] is True
        assert event.attrs["error"] == "EmptyStructureError"

    def test_insert_and_dequeue_combined_op(self):
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=8, tracer=tracer
        )
        circuit.insert(40)
        served, _ = circuit.insert_and_dequeue(60)
        event = tracer.events("insert_dequeue")[0]
        assert event.attrs["tag"] == 60
        assert event.attrs["served_tag"] == served.tag == 40
        assert event.delta_total > 0

    def test_backup_path_reported(self):
        """FIGURE_FORMAT with adjacent tags exercises the backup search."""
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            FIGURE_FORMAT, capacity=16, tracer=tracer
        )
        for tag in (9, 10, 33, 34, 50):
            circuit.insert(tag)
        flags = [
            event.attrs["used_backup"] for event in tracer.events("insert")
        ]
        assert len(flags) == 5  # every insert reports the flag either way


class TestBatchedEvents:
    def test_batch_events_match_per_op_event_for_event(self):
        # unsorted, but never below the first (minimum) tag — the WFQ
        # monotonicity invariant the deferred-marker circuit enforces
        tags = [300, 900, 500, 450, 700, 350]

        per_op_tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=16, tracer=per_op_tracer
        )
        for tag in tags:
            circuit.insert(tag)
        for _ in range(len(tags)):
            circuit.dequeue_min()

        batch_tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=16, tracer=batch_tracer
        )
        circuit.insert_batch(tags)
        circuit.dequeue_batch(len(tags))

        assert op_stream(batch_tracer) == op_stream(per_op_tracer)

    def test_batch_deltas_live_on_the_span(self):
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=16, tracer=tracer
        )
        circuit.insert_batch([5, 300, 80])
        inserts = tracer.events("insert")
        assert all(event.attrs["batched"] for event in inserts)
        assert all(not event.deltas for event in inserts)
        span = tracer.events("span")[0]
        assert span.name == "insert_batch"
        assert span.attrs["count"] == 3
        assert span.delta_total == circuit.registry.total().total

    def test_batch_occupancy_sequence(self):
        tracer = Tracer()
        circuit = TagSortRetrieveCircuit(
            PAPER_FORMAT, capacity=16, tracer=tracer
        )
        circuit.insert_batch([10, 20, 30])
        circuit.dequeue_batch(2)
        occupancies = [
            event.attrs["occupancy"]
            for event in tracer.events()
            if event.kind in OP_KINDS
        ]
        assert occupancies == [1, 2, 3, 2, 1]


class TestStoreAndSchedulerIntegration:
    def test_store_emits_clamp_events(self):
        tracer = Tracer()
        store = HardwareTagStore(granularity=8.0, tracer=tracer)
        assert store.tracer is tracer
        store.push(100.0, flow_id=1)
        store.push(10_000.0, flow_id=2)
        store.pop_min()  # floor rises to the served quantum (100/8)
        # a tag below the served floor is the paper's glossed-over case:
        # the store must clamp it to the live minimum's quantum
        store.push(0.0, flow_id=3)
        clamps = tracer.events("clamp")
        assert clamps, "stale push should activate the clamp backup path"
        assert clamps[0].attrs["quanta"] > 0
        assert store.clamped_inserts == 1

    def test_store_attach_detach_passthrough(self):
        store = HardwareTagStore(granularity=8.0)
        assert store.tracer is NULL_TRACER
        tracer = Tracer()
        store.attach_tracer(tracer)
        assert store.circuit.tracer is tracer
        store.push(10.0, flow_id=1)
        assert tracer.events("insert")
        store.detach_tracer()
        assert store.tracer is NULL_TRACER

    def test_scheduler_system_threads_tracer_to_lazy_store(self):
        from repro.net.scheduler_system import HardwareWFQSystem
        from repro.sched import Packet

        tracer = Tracer()
        system = HardwareWFQSystem(10e6, tracer=tracer)
        system.add_flow(1, weight=1.0)
        system.enqueue(
            Packet(flow_id=1, size_bytes=1000, arrival_time=0.0, packet_id=0),
            now=0.0,
        )
        assert tracer.events("insert")


class TestMixedSoakReconciliation:
    """The ISSUE acceptance check, at both scopes and both modes."""

    @pytest.mark.parametrize("batched", [False, True])
    def test_traced_mixed_run_reconciles_exactly(self, batched):
        tracer = Tracer()
        store = HardwareTagStore(
            granularity=8.0, fast_mode=batched, tracer=tracer
        )
        ops = make_mixed_ops(3_000, seed=77)
        drive = _drive_batched if batched else _drive_per_op
        drive(store, ops)
        registry = store.circuit.registry
        traced = tracer.attributed_totals()
        for name in registry.names():
            stats = registry[name]
            mine = traced.get(name, AccessStats())
            assert (mine.reads, mine.writes) == (stats.reads, stats.writes), (
                f"structure {name}: traced {mine} != registry {stats}"
            )
        assert (
            tracer.attributed_grand_total().total == registry.total().total
        )

    def test_per_op_and_batched_modes_emit_identical_op_streams(self):
        ops = make_mixed_ops(3_000, seed=77)

        per_op_tracer = Tracer()
        store = HardwareTagStore(granularity=8.0, tracer=per_op_tracer)
        served_per_op = _drive_per_op(store, ops)

        batch_tracer = Tracer()
        store = HardwareTagStore(
            granularity=8.0, fast_mode=True, tracer=batch_tracer
        )
        served_batched = _drive_batched(store, ops)

        assert served_per_op == served_batched
        assert op_stream(batch_tracer) == op_stream(per_op_tracer)
