"""Cycle/access attribution profiler: rollups preserve the attribution
invariant, span ancestry reconstructs, worst cases carry context."""

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.hwsim.stats import AccessStats
from repro.net.hardware_store import HardwareTagStore
from repro.obs.events import SPAN_KIND, TraceEvent
from repro.obs.profiler import profile_events
from repro.obs.tracer import Tracer

SEED = 20060101


def traced_events(*, batched, ops=2_000):
    tracer = Tracer()
    store = HardwareTagStore(
        granularity=8.0, fast_mode=batched, tracer=tracer
    )
    drive = _drive_batched if batched else _drive_per_op
    drive(store, make_mixed_ops(ops, SEED))
    return tracer.events(), store


class TestRealTraceRollups:
    def test_totals_reconcile_with_registry(self):
        """The profile is a *complete* ledger: component totals sum to
        exactly the registry grand total, in both modes."""
        for batched in (False, True):
            events, store = traced_events(batched=batched)
            profile = profile_events(events)
            assert (
                profile.total_accesses()
                == store.circuit.registry.total().total
            )

    def test_per_op_kinds(self):
        events, _ = traced_events(batched=False)
        profile = profile_events(events)
        inserts = profile.kinds["insert"]
        assert inserts.count == sum(
            1 for e in events if e.kind == "insert"
        )
        # per-op mode: no spans, self == total
        assert inserts.child_accesses == 0
        assert inserts.self_accesses == inserts.total_accesses
        assert profile.kinds["dequeue"].cycles > 0

    def test_batched_span_totals_absorb_children(self):
        events, _ = traced_events(batched=True)
        profile = profile_events(events)
        span = profile.kinds["span:insert_batch"]
        assert span.count > 0
        # fast-mode batch deltas live on the span, so its self-cost is
        # the whole batch; totals can only add on top of self
        assert span.total_accesses >= span.self_accesses > 0

    def test_flamegraph_lines_sum_to_total(self):
        events, store = traced_events(batched=True)
        profile = profile_events(events)
        lines = profile.flamegraph_lines()
        assert lines
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == store.circuit.registry.total().total
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path
            assert int(value) > 0

    def test_report_renders(self):
        events, _ = traced_events(batched=False, ops=600)
        report = profile_events(events).report(top_k=3, window=2)
        assert "per-component memory traffic" in report
        assert "tag_storage" in report
        assert "worst-case forensics" in report
        payload = profile_events(events).to_dict()
        assert payload["events"] == len(events)


def _delta(reads, writes):
    return {"tag_storage": AccessStats(reads=reads, writes=writes)}


class TestSyntheticAncestry:
    """Hand-built nested spans: exact self/total and path semantics."""

    def events(self):
        return [
            TraceEvent(seq=0, kind="insert", name="insert",
                       span_id=1, attrs={"batched": True}),
            TraceEvent(seq=1, kind="clamp", name="clamp",
                       span_id=1, deltas=_delta(2, 0)),
            TraceEvent(seq=2, kind=SPAN_KIND, name="insert_batch",
                       deltas=_delta(3, 4),
                       attrs={"span": 1, "count": 1}),
            TraceEvent(seq=3, kind="dequeue", name="dequeue",
                       deltas=_delta(1, 1), attrs={"cycles": 4}),
        ]

    def test_span_self_vs_total(self):
        profile = profile_events(self.events())
        span = profile.kinds["span:insert_batch"]
        assert span.self_accesses == 7  # the span's own amortized work
        assert span.child_accesses == 2  # the clamp's claimed traffic
        assert span.total_accesses == 9
        assert profile.kinds["dequeue"].self_accesses == 2

    def test_frame_paths_reconstruct_ancestry(self):
        profile = profile_events(self.events())
        assert "insert_batch;clamp" in profile.frames
        assert "insert_batch;insert" in profile.frames
        assert "dequeue" in profile.frames
        assert profile.frames["insert_batch;clamp"].self_accesses == 2

    def test_worst_cases_ranked_with_window(self):
        profile = profile_events(self.events())
        cases = profile.worst_cases(2, window=1)
        assert [case.cost for case in cases] == [7, 2]
        top = cases[0]
        assert top.event.seq == 2
        assert [e.seq for e in top.window] == [1, 2, 3]
        assert "insert_batch" in top.describe()

    def test_zero_cost_events_never_rank(self):
        profile = profile_events(self.events())
        ranked_seqs = {c.event.seq for c in profile.worst_cases(10)}
        assert 0 not in ranked_seqs  # the delta-less child insert


class TestPerShardRollups:
    def sharded_events(self, *, shards=3, ops=800):
        from repro.fabric.fabric import ScheduleFabric

        tracer = Tracer()
        fabric = ScheduleFabric(
            shards=shards, granularity=8.0, tracer=tracer
        )
        _drive_per_op(fabric, make_mixed_ops(ops, SEED))
        return tracer.events()

    def test_shards_roll_up_component_stamped_cost(self):
        profile = profile_events(self.sharded_events())
        assert {"shard0", "shard1", "shard2"} <= set(profile.shards)
        stamped_total = sum(
            event.delta_total
            for event in profile.events
            if "component" in event.attrs
        )
        assert (
            sum(r.self_accesses for r in profile.shards.values())
            == stamped_total
        )

    def test_unstamped_trace_has_no_shards(self):
        events, _ = traced_events(batched=False, ops=300)
        profile = profile_events(events)
        assert profile.shards == {}
        assert "per-shard cost" not in profile.report()

    def test_shards_in_document_and_report(self):
        profile = profile_events(self.sharded_events())
        document = profile.to_dict()
        assert set(document["shards"]) == set(profile.shards)
        for name, rollup in profile.shards.items():
            assert document["shards"][name]["count"] == rollup.count
        report = profile.report()
        assert "per-shard cost" in report
        assert "shard0" in report
