"""The traced-soak runner and its ``python -m repro obs`` CLI surface."""

import json

import pytest

from repro.hwsim.stats import AccessStats
from repro.obs.exporters import read_jsonl
from repro.obs.runner import main, run_traced_soak


class TestRunTracedSoak:
    @pytest.mark.parametrize("batched", [False, True])
    def test_soak_reconciles(self, batched):
        run = run_traced_soak(ops=1_000, seed=5, batched=batched)
        assert run.reconciled
        assert run.reconciliation["traced"] == run.reconciliation["registry"]
        assert run.served > 0
        assert run.event_counts["insert"] > 0
        assert run.event_counts["dequeue"] > 0

    def test_event_counts_exact_after_ring_eviction(self):
        run = run_traced_soak(ops=1_000, seed=5, buffer_size=16)
        assert run.tracer.dropped > 0
        assert (
            run.event_counts["insert"] + run.event_counts["dequeue"]
            >= 1_000
        )

    def test_report_and_document(self):
        run = run_traced_soak(ops=500, seed=5)
        report = run.report()
        assert "reconciliation OK" in report
        assert "per-structure memory traffic" in report
        document = run.to_document()
        assert document["reconciliation"]["exact"] is True
        assert document["workload"]["ops"] == 500
        json.dumps(document)  # JSON-serializable end to end


class TestAcceptance10k:
    """ISSUE acceptance: a traced 10k-op mixed run's JSONL summed
    per-structure deltas reconcile exactly with the registry totals."""

    def test_jsonl_deltas_reconcile_with_registry(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        run = run_traced_soak(ops=10_000, seed=20060101, trace_sink=str(trace))
        events = read_jsonl(str(trace))
        assert len(events) == run.tracer.emitted

        summed = {}
        for event in events:
            for name, delta in event.deltas.items():
                slot = summed.setdefault(name, AccessStats())
                slot.reads += delta.reads
                slot.writes += delta.writes

        registry = run.store.circuit.registry
        for name in registry.names():
            stats = registry[name]
            mine = summed.get(name, AccessStats())
            assert (mine.reads, mine.writes) == (stats.reads, stats.writes), (
                f"structure {name}: JSONL {mine} != registry {stats}"
            )
        total = registry.total()
        assert sum(s.total for s in summed.values()) == total.total


class TestCli:
    def test_text_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "--ops", "400",
                "--seed", "9",
                "--output", str(out),
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        assert "reconciliation OK" in out.read_text()
        assert read_jsonl(str(trace))  # valid JSONL
        assert "# TYPE repro_op_accesses histogram" in metrics.read_text()

    def test_json_report_to_stdout(self, capsys):
        assert main(["--ops", "300", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["reconciliation"]["exact"] is True

    def test_batched_mode(self, capsys):
        assert main(["--ops", "300", "--batched", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["workload"]["mode"] == "batched"
        assert document["event_counts"].get("span", 0) > 0

    def test_monitor_flag_reports_clean_verdict(self, capsys):
        assert main(["--ops", "300", "--monitor", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["monitors"]["ok"] is True
        assert document["monitors"]["violations"] == []
        assert document["monitors"]["checked"] > 300

    def test_without_monitor_flag_block_is_null(self, capsys):
        assert main(["--ops", "200", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["monitors"] is None

    def test_ring_eviction_fails_unless_allowed(self, capsys):
        args = ["--ops", "400", "--buffer-size", "16"]
        assert main(args) == 1
        assert "evicted from the ring buffer" in capsys.readouterr().err
        assert main(args + ["--allow-lossy"]) == 0

    def test_report_surfaces_dropped_count(self):
        run = run_traced_soak(ops=400, seed=5, buffer_size=16)
        report = run.report()
        assert f"trace LOSSY: {run.tracer.dropped} events dropped" in report

    def test_trace_is_framed_with_header_and_footer(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        run_traced_soak(ops=200, seed=5, trace_sink=str(trace))
        lines = trace.read_text().splitlines()
        first, last = json.loads(lines[0]), json.loads(lines[-1])
        assert first["kind"] == "trace_header"
        assert first["seed"] == 5
        assert first["mode"] == "per_op"
        assert first["config"]["word_bits"] == 12
        assert last["kind"] == "trace_footer"
        assert last["dropped"] == 0
        assert last["emitted"] == len(lines) - 2
