"""Online invariant monitors: clean soaks stay silent, seeded faults
are each caught by exactly their intended monitor.

The fault-injection hooks on the circuit perturb *telemetry only* (the
served sequences stay correct), so every test here is a pure
observability check: did the right monitor notice, and did no other
monitor false-positive through the fault?
"""

import random

import pytest

from repro.bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from repro.core.sort_retrieve import FaultInjection
from repro.hwsim.stats import AccessStats
from repro.net.hardware_store import HardwareTagStore
from repro.obs.events import INVARIANT_KIND, TraceEvent
from repro.obs.monitors import (
    MonitorConfig,
    MonitorSuite,
    check_trace,
)
from repro.obs.runner import run_traced_soak
from repro.obs.tracer import Tracer

SEED = 20060101


def faulted_suite(fault, *, batched, ops=1_500, warmup=200, seed=SEED):
    """Run a mixed soak, enabling ``fault`` only after a clean warmup.

    The warmup matters: monitors need reference state (a serve
    watermark, the live-tag set) before a fault can be attributed to
    the *specific* guarantee it breaks rather than a first-observation
    fallback.  The faulted phase stops at the first diagnosis — a
    telemetry fault left running forever eventually poisons *reality*
    as other monitors see it (e.g. a misreported serve stream slowly
    rots the live-tag ledger), and those downstream echoes are not the
    attribution under test.
    """
    tracer = Tracer()
    store = HardwareTagStore(
        granularity=8.0, fast_mode=batched, tracer=tracer
    )
    suite = MonitorSuite.for_circuit(store.circuit, tracer=tracer)
    tracer.add_observer(suite)
    stream = make_mixed_ops(ops, seed)
    drive = _drive_batched if batched else _drive_per_op
    drive(store, stream[:warmup])
    assert suite.ok, "warmup must be violation-free"
    store.circuit.fault_injection = fault
    chunk = 40
    for start in range(warmup, ops, chunk):
        drive(store, stream[start:start + chunk])
        if suite.violations:
            break
    return suite, tracer


class TestCleanSoaksAreSilent:
    """Zero false positives on healthy runs — the monitors' half of the
    acceptance criterion."""

    @pytest.mark.parametrize("batched", [False, True])
    def test_10k_mixed_soak_zero_violations(self, batched):
        run = run_traced_soak(
            ops=10_000, seed=SEED, batched=batched, monitor=True
        )
        assert run.monitors is not None
        assert run.monitors.ok
        assert run.monitors.checked > 10_000
        assert run.monitors.counts_by_monitor() == {}

    def test_monitor_summary_reads_ok(self):
        run = run_traced_soak(ops=500, seed=SEED, monitor=True)
        assert "invariants OK" in run.monitors.summary()
        assert "invariants OK" in run.report()


#: (fault, the one monitor that must claim every resulting violation)
FAULT_MATRIX = [
    (FaultInjection(extra_insert_writes=1), "insert_budget"),
    (FaultInjection(extra_dequeue_reads=3), "dequeue_bound"),
    (FaultInjection(skip_free_release=True), "free_list_conservation"),
    (FaultInjection(misreport_serve_offset=-2048), "serve_monotonic"),
    (FaultInjection(misreport_serve_offset=1024), "coverage"),
]


class TestSeededFaultCoverage:
    """Each injected fault trips exactly one monitor, in both modes."""

    @pytest.mark.parametrize("batched", [False, True])
    @pytest.mark.parametrize(
        "fault,expected",
        FAULT_MATRIX,
        ids=[expected for _, expected in FAULT_MATRIX],
    )
    def test_fault_caught_by_exactly_one_monitor(
        self, fault, expected, batched
    ):
        suite, tracer = faulted_suite(fault, batched=batched)
        counts = suite.counts_by_monitor()
        assert counts, f"fault {fault} went unnoticed"
        assert set(counts) == {expected}, (
            f"expected only {expected} to fire, got {counts}"
        )
        # every violation is re-emitted into the trace itself
        reports = tracer.events(INVARIANT_KIND)
        assert len(reports) == len(suite.violations)
        assert all(
            event.attrs["monitor"] == expected for event in reports
        )

    def test_violations_carry_offender_coordinates(self):
        suite, tracer = faulted_suite(
            FaultInjection(extra_insert_writes=1), batched=False
        )
        violation = suite.violations[0]
        assert violation.monitor == "insert_budget"
        assert violation.kind == "insert"
        assert "2R+2W" in violation.message
        report = tracer.events(INVARIANT_KIND)[0]
        assert report.attrs["offender_seq"] == violation.seq
        assert report.attrs["offender_kind"] == "insert"

    def test_dynamic_fault_does_not_corrupt_served_sequence(self):
        """The remove/retag faults, too, are telemetry-only."""

        def drive(store):
            served = []
            live = []
            tag = 0.0
            rng = random.Random(SEED)
            for step in range(400):
                roll = rng.random()
                if roll < 0.5 or not live:
                    tag += rng.random() * 16.0
                    live.append(store.push(tag, step))
                elif roll < 0.75:
                    store.remove(live.pop(rng.randrange(len(live))))
                else:
                    served.append(store.pop_min())
                    live = [
                        handle
                        for handle in live
                        if store.circuit.is_live_handle(handle)
                    ]
            return served

        clean = drive(HardwareTagStore(granularity=8.0))
        store = HardwareTagStore(granularity=8.0, tracer=Tracer())
        store.circuit.fault_injection = FaultInjection(
            misreport_remove_handle=3, skip_removal_release=True
        )
        assert drive(store) == clean

    def test_fault_does_not_corrupt_served_sequence(self):
        """Faults are telemetry-only: the circuit still serves
        correctly, which is what makes clean-mode comparisons valid."""
        stream = make_mixed_ops(1_000, SEED)
        store = HardwareTagStore(granularity=8.0)
        clean = _drive_per_op(store, stream)

        tracer = Tracer()
        store = HardwareTagStore(granularity=8.0, tracer=tracer)
        store.circuit.fault_injection = FaultInjection(
            misreport_serve_offset=-2048
        )
        faulted = _drive_per_op(store, stream)
        assert clean == faulted


def faulted_dynamic_suite(fault, *, ops=1_200, warmup=200, seed=SEED):
    """Like :func:`faulted_suite`, but the churn includes remove/retag.

    The dynamic-update monitors only judge ``remove``/``retag`` events,
    which the bench mixed stream never emits — this driver interleaves
    all four verbs so the handle ledger and the removal conservation
    state actually accumulate before the fault turns on.
    """
    tracer = Tracer()
    store = HardwareTagStore(granularity=8.0, tracer=tracer)
    suite = MonitorSuite.for_circuit(store.circuit, tracer=tracer)
    tracer.add_observer(suite)
    rng = random.Random(seed)
    live = []
    tag = 0.0

    def step(index):
        nonlocal tag, live
        roll = rng.random()
        if roll < 0.5 or not live:
            tag += rng.random() * 16.0
            live.append(store.push(tag, index))
        elif roll < 0.7:
            store.remove(live.pop(rng.randrange(len(live))))
        elif roll < 0.85:
            slot = rng.randrange(len(live))
            live[slot] = store.retag(
                live[slot],
                store.peek_min_exact()[0] + rng.random() * 32.0,
            )
        else:
            store.pop_min()
            live = [
                handle
                for handle in live
                if store.circuit.is_live_handle(handle)
            ]

    for index in range(warmup):
        step(index)
    assert suite.ok, "warmup must be violation-free"
    store.circuit.fault_injection = fault
    for index in range(warmup, ops):
        step(index)
        if suite.violations:
            break
    return suite, tracer


#: the dynamic-update pair: (fault, the one monitor that must claim it)
DYNAMIC_FAULT_MATRIX = [
    (FaultInjection(misreport_remove_handle=3), "handle_liveness"),
    (FaultInjection(skip_removal_release=True), "free_list_removal"),
]


class TestDynamicUpdateFaultCoverage:
    """The remove/retag monitors each catch exactly their fault."""

    @pytest.mark.parametrize(
        "fault,expected",
        DYNAMIC_FAULT_MATRIX,
        ids=[expected for _, expected in DYNAMIC_FAULT_MATRIX],
    )
    def test_fault_caught_by_exactly_one_monitor(self, fault, expected):
        suite, tracer = faulted_dynamic_suite(fault)
        counts = suite.counts_by_monitor()
        assert counts, f"fault {fault} went unnoticed"
        assert set(counts) == {expected}, (
            f"expected only {expected} to fire, got {counts}"
        )
        reports = tracer.events(INVARIANT_KIND)
        assert len(reports) == len(suite.violations)
        assert all(
            event.attrs["monitor"] == expected for event in reports
        )

    def test_clean_dynamic_churn_is_silent(self):
        suite, _ = faulted_dynamic_suite(FaultInjection(), ops=1_200)
        assert suite.ok
        assert suite.checked > 1_000


class TestMonitorConfig:
    def test_dequeue_bound_deferred_vs_eager(self):
        deferred = MonitorConfig(levels=3, eager_marker_removal=False)
        assert deferred.dequeue_access_bound == 2
        eager = MonitorConfig(levels=3, eager_marker_removal=True)
        assert eager.dequeue_access_bound == 2 + 2 + 2 * 3

    def test_from_circuit_config_defaults(self):
        config = MonitorConfig.from_circuit_config({})
        assert config.levels == 3
        assert config.tag_space == 4096
        assert config.modular is True
        assert config.section_bits == 8

    def test_from_circuit_config_reads_describe_dict(self):
        described = HardwareTagStore(granularity=8.0).describe()
        config = MonitorConfig.from_circuit_config(described)
        assert config.tag_space == described["tag_space"]
        assert config.branching_factor == described["branching_factor"]


def _op(seq, kind, *, deltas=None, **attrs):
    return TraceEvent(
        seq=seq,
        kind=kind,
        name=kind,
        deltas={
            name: AccessStats(reads=r, writes=w)
            for name, (r, w) in (deltas or {}).items()
        },
        attrs=attrs,
    )


class TestHandCraftedSemantics:
    """Precise unit semantics on synthetic event streams."""

    def test_wrap_aware_monotonicity_accepts_wraparound(self):
        # 4000 -> 100 wraps forward (distance 196 < 2048): legal.
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=4000, occupancy=1))
        suite(_op(1, "insert", tag=100, occupancy=2))
        suite(_op(2, "dequeue", tag=4000, occupancy=1,
                  deltas={"tag_storage": (1, 1)}))
        suite(_op(3, "dequeue", tag=100, occupancy=0,
                  deltas={"tag_storage": (1, 1)}))
        assert suite.ok

    def test_backwards_serve_is_flagged(self):
        # 3000 -> 500 is a wrapped distance of 1596 (< 2048), i.e. a
        # legal wrap; 3000 -> 1000 is 2096 (>= half the space) and can
        # only be min-tag service going backwards.
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=1000, occupancy=1))
        suite(_op(1, "insert", tag=3000, occupancy=2))
        suite(_op(2, "dequeue", tag=3000, occupancy=1,
                  deltas={"tag_storage": (1, 1)}))
        suite(_op(3, "dequeue", tag=1000, occupancy=0,
                  deltas={"tag_storage": (1, 1)}))
        assert suite.counts_by_monitor() == {"serve_monotonic": 1}

    def test_drain_resets_the_watermark(self):
        # serving to empty ends the busy period: restarting lower is legal
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=3000, occupancy=1))
        suite(_op(1, "dequeue", tag=3000, occupancy=0,
                  deltas={"tag_storage": (1, 1)}))
        suite(_op(2, "insert", tag=100, occupancy=1))
        suite(_op(3, "dequeue", tag=100, occupancy=0,
                  deltas={"tag_storage": (1, 1)}))
        assert suite.ok

    def test_section_clear_over_live_tags_is_flagged(self):
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=260, occupancy=1))  # section 1 (256..511)
        suite(_op(1, "section_clear", root_literal=1))
        counts = suite.counts_by_monitor()
        assert counts == {"coverage": 1}
        assert "live value" in suite.violations[0].message

    def test_marker_flush_with_live_tags_is_flagged(self):
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=50, occupancy=1))
        suite(_op(1, "marker_flush"))
        assert suite.counts_by_monitor() == {"coverage": 1}

    def test_one_faulty_op_yields_exactly_one_violation(self):
        # over-budget insert ALSO bumps occupancy oddly — but the first
        # (most specific) monitor claims it, and only it.
        suite = MonitorSuite()
        suite(_op(0, "insert", tag=10, occupancy=1,
                  deltas={"tag_storage": (1, 2)}))
        suite(_op(1, "insert", tag=20, occupancy=4,
                  deltas={"tag_storage": (5, 5)}))
        assert len(suite.violations) == 1
        assert suite.violations[0].monitor == "insert_budget"

    def test_failed_ops_and_own_reports_are_skipped(self):
        suite = MonitorSuite()
        suite(_op(0, "dequeue", failed=True,
                  deltas={"tag_storage": (9, 9)}))
        suite(_op(1, INVARIANT_KIND, monitor="coverage"))
        assert suite.ok
        assert suite.checked == 0


class TestOfflineReplay:
    def test_check_trace_matches_online_verdict(self, tmp_path):
        from repro.obs.exporters import read_trace

        sink = tmp_path / "trace.jsonl"
        run = run_traced_soak(
            ops=1_000, seed=SEED, trace_sink=str(sink), monitor=True
        )
        assert run.monitors.ok
        document = read_trace(str(sink))
        suite = check_trace(document.events, header=document.header)
        assert suite.ok
        assert suite.checked == run.monitors.checked
