"""TraceEvent JSONL round-trip: property-tested over every kind.

The JSONL sink is the only durable form of a trace, so serialization
must be lossless for every event kind — including the monitor-emitted
``invariant_violation`` reports — and *tolerant* on the way back in: a
reader at trace schema N loads traces written at schema N+1 by ignoring
fields it does not know.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim.stats import AccessStats
from repro.obs.events import (
    FOOTER_KIND,
    HEADER_KIND,
    INVARIANT_KIND,
    MAINTENANCE_KINDS,
    OP_KINDS,
    SPAN_KIND,
    TRACE_SCHEMA,
    TraceEvent,
    build_trace_header,
)

ALL_EVENT_KINDS = (
    list(OP_KINDS) + list(MAINTENANCE_KINDS) + [SPAN_KIND, INVARIANT_KIND]
)

#: JSON-safe attr values (floats excluded: NaN has no JSON identity).
attr_values = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.text(max_size=40),
    st.none(),
)

events = st.builds(
    TraceEvent,
    seq=st.integers(min_value=0, max_value=2**40),
    kind=st.sampled_from(ALL_EVENT_KINDS),
    name=st.text(min_size=1, max_size=30),
    span_id=st.one_of(st.none(), st.integers(min_value=0, max_value=2**20)),
    deltas=st.dictionaries(
        st.sampled_from(
            ["tag_storage", "translation_table", "tree_level_0", "free_list"]
        ),
        st.builds(
            AccessStats,
            reads=st.integers(min_value=0, max_value=2**20),
            writes=st.integers(min_value=0, max_value=2**20),
        ),
        max_size=4,
    ),
    attrs=st.dictionaries(
        st.text(min_size=1, max_size=20), attr_values, max_size=6
    ),
)


class TestRoundTrip:
    @given(event=events)
    @settings(max_examples=200, deadline=None)
    def test_to_json_from_json_is_identity(self, event):
        line = event.to_json()
        assert "\n" not in line  # one JSONL line
        restored = TraceEvent.from_json(line)
        assert restored == event

    @given(event=events)
    @settings(max_examples=100, deadline=None)
    def test_unknown_fields_are_tolerated(self, event):
        record = event.to_dict()
        record["future_field"] = {"nested": [1, 2, 3]}
        for entry in record.get("deltas", {}).values():
            entry["bank_conflicts"] = 7  # schema-N+1 delta counter
        restored = TraceEvent.from_dict(record)
        assert restored == event

    def test_missing_optional_fields_default(self):
        restored = TraceEvent.from_dict({"kind": "insert"})
        assert restored.seq == 0
        assert restored.name == "insert"
        assert restored.span_id is None
        assert restored.deltas == {}
        assert restored.attrs == {}

    def test_invariant_violation_event_round_trips(self):
        event = TraceEvent(
            seq=42,
            kind=INVARIANT_KIND,
            name="insert_budget",
            attrs={
                "monitor": "insert_budget",
                "offender_seq": 41,
                "offender_kind": "insert",
                "message": "insert cost 3R+2W ... exceeds ... (Fig. 9)",
            },
        )
        assert TraceEvent.from_json(event.to_json()) == event


class TestTraceFraming:
    def test_header_record_layout(self):
        header = build_trace_header(
            seed=7, mode="per_op", config={"levels": 3}, ops=100
        )
        assert header["kind"] == HEADER_KIND
        assert header["schema"] == TRACE_SCHEMA
        assert header["seed"] == 7
        assert header["mode"] == "per_op"
        assert header["config"] == {"levels": 3}
        assert header["ops"] == 100  # extras land verbatim
        json.dumps(header)  # wire-ready

    def test_header_copies_config(self):
        config = {"levels": 3}
        header = build_trace_header(seed=1, mode="batched", config=config)
        config["levels"] = 99
        assert header["config"]["levels"] == 3

    def test_framing_kinds_never_collide_with_event_kinds(self):
        assert HEADER_KIND not in ALL_EVENT_KINDS
        assert FOOTER_KIND not in ALL_EVENT_KINDS
