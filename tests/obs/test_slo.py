"""Online fairness/SLO auditor tests.

The headline property: the streaming :class:`FairnessAuditor` must
reconcile **exactly** (same floats, not approximately) with the offline
metrics in :mod:`repro.net.metrics` computed over the same trace —
they now share the :class:`~repro.sched.gps.GpsAccrualCore` and the
:class:`RankInversionCounter`, so any drift is a bug.
"""

import random

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.metrics import gps_lag, gps_lead, out_of_order_service
from repro.obs.events import SLO_KIND, TraceEvent, build_trace_header
from repro.obs.instruments import InstrumentSet
from repro.obs.slo import (
    FairnessAuditor,
    RankInversionCounter,
    ServeStreamAuditor,
    SloRule,
)
from repro.obs.tracer import Tracer
from repro.sched import GPSFluidSimulator, Packet, WFQScheduler, simulate

RATE = 1e6


def random_trace(seed, flows, count):
    rng = random.Random(seed)
    trace = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(250.0)
        trace.append(
            Packet(
                flow_id=rng.randrange(flows),
                size_bytes=rng.choice([64, 576, 1500]),
                arrival_time=t,
            )
        )
    return trace


def clone(trace):
    return [
        Packet(p.flow_id, p.size_bytes, p.arrival_time, packet_id=p.packet_id)
        for p in trace
    ]


def run_wfq(trace, weights):
    scheduler = WFQScheduler(RATE)
    for flow_id, weight in weights.items():
        scheduler.add_flow(flow_id, weight)
    return simulate(scheduler, clone(trace))


def feed_auditor(auditor, trace, result):
    """Replay a finished run through the auditor in event-time order."""
    served = sorted(
        (p for p in result.packets if p.departure_time is not None),
        key=lambda p: (p.departure_time, p.packet_id),
    )
    arrivals = sorted(trace, key=lambda p: (p.arrival_time, p.packet_id))
    ai, si = 0, 0
    while ai < len(arrivals) or si < len(served):
        take_arrival = ai < len(arrivals) and (
            si >= len(served)
            or arrivals[ai].arrival_time <= served[si].departure_time
        )
        if take_arrival:
            auditor.on_arrival(arrivals[ai])
            ai += 1
        else:
            auditor.on_departure(served[si])
            si += 1
    return auditor.finalize()


class TestRankInversionCounter:
    def test_matches_offline_semantics(self):
        counter = RankInversionCounter()
        assert not counter.observe(5.0)
        assert not counter.observe(7.0)
        assert counter.observe(6.0)  # below the best rank served
        assert not counter.observe(7.0)  # ties with watermark are fine
        assert counter.inversions == 1
        assert counter.observed == 4

    def test_epsilon_tolerates_float_noise(self):
        counter = RankInversionCounter()
        counter.observe(1.0)
        assert not counter.observe(1.0 - 1e-15)
        assert counter.inversions == 0

    def test_modular_wrap_is_not_an_inversion(self):
        counter = RankInversionCounter(modular=True, tag_space=4096)
        counter.observe(4000)
        assert not counter.observe(100)  # forward across the wrap
        assert counter.observe(4090)  # backward half-space
        assert counter.inversions == 1

    def test_modular_watermark_stays_at_conforming_serve(self):
        counter = RankInversionCounter(modular=True, tag_space=4096)
        counter.observe(1000)
        assert counter.observe(10)  # inversion; watermark stays at 1000
        assert not counter.observe(1001)
        assert counter.inversions == 1

    def test_reset_watermark(self):
        counter = RankInversionCounter()
        counter.observe(100.0)
        counter.reset_watermark()
        assert not counter.observe(1.0)

    def test_modular_requires_tag_space(self):
        with pytest.raises(ConfigurationError):
            RankInversionCounter(modular=True, tag_space=0)


class TestExactReconciliation:
    """Online auditor == offline metrics, float for float."""

    @pytest.mark.parametrize("seed", [1, 7, 20060101])
    def test_gps_lag_lead_and_inversions(self, seed):
        weights = {0: 0.5, 1: 0.25, 2: 0.25}
        trace = random_trace(seed, len(weights), 200)
        result = run_wfq(trace, weights)

        gps = GPSFluidSimulator(RATE)
        for flow_id, weight in weights.items():
            gps.set_weight(flow_id, weight)
        reference = gps.run(clone(trace))
        offline_lag = gps_lag(result, reference)
        offline_lead = gps_lead(result, reference)
        offline_inversions = out_of_order_service(result)

        auditor = FairnessAuditor(RATE, weights=weights)
        report = feed_auditor(auditor, trace, result)

        # Exact equality is the contract: shared accrual core, same
        # float-op order as the batch reference.
        assert report["gps_lag"] == offline_lag
        assert report["gps_lead"] == offline_lead
        assert report["inversions"] == offline_inversions
        assert report["unmatched_fluid"] == 0
        assert report["unmatched_actual"] == 0
        assert report["arrivals"] == len(trace)
        assert report["departures"] == len(result.packets)

    def test_arrivals_must_be_time_ordered(self):
        auditor = FairnessAuditor(RATE)
        auditor.on_arrival(Packet(0, 100, 1.0))
        with pytest.raises(ConfigurationError):
            auditor.on_arrival(Packet(0, 100, 0.5))


class TestSloRules:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            SloRule(name="bad", metric="jitter", limit=1.0)

    def test_breach_burns_and_emits(self):
        instruments = InstrumentSet()
        tracer = Tracer(buffer_size=256)
        tracer.write_header(
            build_trace_header(seed=0, mode="per_op", config={}, ops=0)
        )
        rule = SloRule(name="tight_lag", metric="max_gps_lag", limit=0.0)
        trace = random_trace(3, 2, 60)
        result = run_wfq(trace, {0: 0.5, 1: 0.5})
        auditor = FairnessAuditor(
            RATE,
            weights={0: 0.5, 1: 0.5},
            rules=[rule],
            instruments=instruments,
            tracer=tracer,
        )
        report = feed_auditor(auditor, trace, result)
        state = report["rules"]["tight_lag"]
        assert state["breached"]
        assert state["burn"] >= 1
        assert state["worst"] == report["max_gps_lag"]
        # First breach only: one violation event, one violation count.
        violations = tracer.events(SLO_KIND)
        assert len(violations) == 1
        assert violations[0].attrs["rule"] == "tight_lag"
        assert violations[0].attrs["metric"] == "max_gps_lag"
        assert instruments.counter("slo_violations_total").value == 1
        assert (
            instruments.counter("slo_burn_tight_lag_total").value
            == state["burn"]
        )

    def test_satisfied_rule_never_burns(self):
        rule = SloRule(name="loose", metric="inversions", limit=1e9)
        trace = random_trace(5, 2, 40)
        result = run_wfq(trace, {0: 0.5, 1: 0.5})
        auditor = FairnessAuditor(RATE, weights={0: 0.5, 1: 0.5}, rules=[rule])
        report = feed_auditor(auditor, trace, result)
        state = report["rules"]["loose"]
        assert not state["breached"]
        assert state["burn"] == 0


def serve_event(seq, tag, *, component="", kind="dequeue", occupancy=5):
    attrs = {"occupancy": occupancy, "component": component}
    if kind == "dequeue":
        attrs["tag"] = tag
    else:
        attrs["served_tag"] = tag
    return TraceEvent(seq, kind, kind, attrs=attrs)


class TestServeStreamAuditor:
    def make(self, **kwargs):
        instruments = InstrumentSet()
        kwargs.setdefault("instruments", instruments)
        return ServeStreamAuditor(**kwargs), kwargs["instruments"]

    def test_counts_serves_and_inversions(self):
        auditor, instruments = self.make()
        auditor(serve_event(0, 10.0))
        auditor(serve_event(1, 20.0))
        auditor(serve_event(2, 15.0))
        assert auditor.serves == 3
        assert auditor.inversions == 1
        assert instruments.counter("live_serves_total").value == 3
        assert instruments.counter("live_serve_inversions_total").value == 1

    def test_insert_dequeue_uses_served_tag(self):
        auditor, _ = self.make()
        auditor(serve_event(0, 30.0, kind="insert_dequeue"))
        auditor(serve_event(1, 10.0))
        assert auditor.inversions == 1

    def test_per_component_watermarks(self):
        auditor, _ = self.make()
        auditor(serve_event(0, 100.0, component="shard0"))
        # A lower tag on a *different* shard is not an inversion.
        auditor(serve_event(1, 10.0, component="shard1"))
        assert auditor.inversions == 0
        summary = auditor.summary()
        assert set(summary["components"]) == {"shard0", "shard1"}

    def test_drain_resets_watermark(self):
        auditor, _ = self.make()
        auditor(serve_event(0, 100.0, occupancy=0))
        auditor(serve_event(1, 1.0))
        assert auditor.inversions == 0

    def test_failed_serves_ignored(self):
        auditor, _ = self.make()
        event = serve_event(0, 50.0)
        event.attrs["failed"] = True
        auditor(event)
        assert auditor.serves == 0

    def test_only_inversion_rules_allowed(self):
        with pytest.raises(ConfigurationError):
            ServeStreamAuditor(
                instruments=InstrumentSet(),
                rules=[SloRule(name="x", metric="p99_delay", limit=1.0)],
            )

    def test_inversion_rule_breach(self):
        instruments = InstrumentSet()
        auditor = ServeStreamAuditor(
            instruments=instruments,
            rules=[SloRule(name="zero_inv", metric="inversions", limit=0)],
        )
        auditor(serve_event(0, 10.0))
        auditor(serve_event(1, 5.0))
        assert auditor.summary()["rules"]["zero_inv"]["breached"]
        assert instruments.counter("slo_violations_total").value == 1


class TestPerShardSlo:
    def make(self, shard_limit=0):
        instruments = InstrumentSet()
        auditor = ServeStreamAuditor(
            instruments=instruments,
            shard_rules=[
                SloRule(
                    name="shard_budget",
                    metric="inversions",
                    limit=shard_limit,
                )
            ],
        )
        return auditor, instruments

    def test_labeled_lane_counters(self):
        auditor, instruments = self.make()
        auditor(serve_event(0, 10.0, component="shard0"))
        auditor(serve_event(1, 20.0, component="shard1"))
        auditor(serve_event(2, 30.0, component="shard0"))
        family = instruments.series("live_serves_total")
        by_shard = {
            dict(key).get("shard"): counter.value
            for key, counter in family.items()
            if key
        }
        assert by_shard == {"0": 2, "1": 1}
        # Aggregate counts every serve regardless of lane.
        assert family[()].value == 3

    def test_breach_attributed_to_culprit_shard(self):
        auditor, instruments = self.make(shard_limit=0)
        auditor(serve_event(0, 100.0, component="shard0"))
        auditor(serve_event(1, 10.0, component="shard1"))
        # shard1 inverts; shard0 stays clean.
        auditor(serve_event(2, 5.0, component="shard1"))
        assert auditor.inversions == 1
        assert auditor.culprit_shard == "shard1"
        assert auditor.breached
        burns = instruments.series("slo_burn_shard_budget_total")
        assert {dict(key).get("shard") for key in burns if key} == {"1"}
        violations = instruments.series("slo_violations_total")
        assert {dict(key).get("shard") for key in violations if key} == {"1"}

    def test_shard_rule_only_counts_own_lane(self):
        auditor, _ = self.make(shard_limit=1)
        auditor(serve_event(0, 100.0, component="shard0"))
        auditor(serve_event(1, 10.0, component="shard0"))  # inversion 1
        assert not auditor.breached
        auditor(serve_event(2, 100.0, component="shard1"))
        auditor(serve_event(3, 10.0, component="shard1"))  # other lane
        assert not auditor.breached  # neither lane over its own budget
        auditor(serve_event(4, 5.0, component="shard0"))  # inversion 2
        assert auditor.breached
        status = auditor.health_status()
        assert status["shard_breaches"] == {"shard0": ["shard_budget"]}
        assert status["culprit_shard"] == "shard0"

    def test_shard_breach_emits_component_stamped_event(self):
        tracer = Tracer()
        instruments = InstrumentSet()
        auditor = ServeStreamAuditor(
            instruments=instruments,
            shard_rules=[
                SloRule(name="budget", metric="inversions", limit=0)
            ],
            tracer=tracer,
        )
        auditor(serve_event(0, 50.0, component="shard2"))
        auditor(serve_event(1, 10.0, component="shard2"))
        events = tracer.events(SLO_KIND)
        assert len(events) == 1
        assert events[0].attrs["component"] == "shard2"
        assert events[0].attrs["shard"] == "2"

    def test_health_status_clean(self):
        auditor, _ = self.make()
        auditor(serve_event(0, 10.0, component="shard0"))
        status = auditor.health_status()
        assert status["serves"] == 1
        assert status["inversions"] == 0
        assert status["culprit_shard"] is None
        assert status["breached_rules"] == []
        assert status["shard_breaches"] == {}
        assert not auditor.breached

    def test_shard_rules_must_be_inversions(self):
        with pytest.raises(ConfigurationError):
            ServeStreamAuditor(
                instruments=InstrumentSet(),
                shard_rules=[
                    SloRule(name="x", metric="p99_delay", limit=1.0)
                ],
            )
