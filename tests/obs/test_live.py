"""Live observability plane tests: collector, HTTP endpoints, runners.

The endpoint tests bind to port 0 (ephemeral) on 127.0.0.1 and query
the server in-process with :mod:`urllib` — no fixed ports, no external
tooling.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.events import WATCHDOG_KIND
from repro.obs.flight import StallWatchdog
from repro.obs.instruments import InstrumentSet
from repro.obs.live import LivePlane, MetricsServer, WindowedCollector
from repro.obs.runner import run_traced_soak


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8"), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), dict(error.headers)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWindowedCollector:
    def make(self, instruments=None, **kwargs):
        instruments = instruments if instruments is not None else InstrumentSet()
        clock = FakeClock()
        kwargs.setdefault("clock", clock)
        collector = WindowedCollector(instruments, **kwargs)
        collector._started_at = clock()
        collector._last_tick = clock()
        return collector, instruments, clock

    def test_window_rates(self):
        collector, instruments, clock = self.make(interval=0.5)
        instruments.counter("events_insert").inc(100)
        clock.advance(2.0)
        collector.tick()
        window = collector.windows[-1]
        assert window["ops"] == 100
        assert window["ops_per_second"] == pytest.approx(50.0)
        assert collector.live.gauge("live_ops_per_second").value == 50.0

        instruments.counter("events_insert").inc(10)
        clock.advance(1.0)
        collector.tick()
        assert collector.windows[-1]["ops"] == 10

    def test_op_cycles_percentiles_are_windowed(self):
        collector, instruments, clock = self.make()
        hist = instruments.hist("op_cycles")
        for value in (4, 4, 4, 4):
            hist.record(value)
        clock.advance(1.0)
        collector.tick()  # baseline snapshot
        for value in (8, 8, 8, 8):
            hist.record(value)
        clock.advance(1.0)
        collector.tick()
        # Only the second window's samples count toward its percentiles.
        assert collector.windows[-1]["p50_op_cycles"] >= 8

    def test_watchdog_fires_on_stall(self):
        stalls = []
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=1.0, clock=clock)
        collector = WindowedCollector(
            InstrumentSet(),
            progress=lambda: 42.0,
            watchdog=watchdog,
            on_stall=stalls.append,
            clock=clock,
        )
        collector._started_at = clock()
        collector._last_tick = clock()
        collector.tick()
        clock.advance(2.0)
        collector.tick()
        assert len(stalls) == 1
        assert (
            collector.live.counter("live_watchdog_stalls_total").value == 1
        )

    def test_racy_tick_is_skipped_not_raised(self):
        class RacyInstruments(InstrumentSet):
            def items(self):
                raise RuntimeError("dictionary changed size during iteration")

        collector, _, _ = self.make(instruments=RacyInstruments())
        collector.tick()
        assert collector.skipped == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            WindowedCollector(InstrumentSet(), interval=0.0)


class TestMetricsServer:
    def make_server(self, **overrides):
        kwargs = {
            "render_metrics": lambda: "# TYPE x gauge\nx 1\n",
            "render_health": lambda: (200, {"status": "ok"}),
            "render_snapshot": lambda: {"windows": []},
        }
        kwargs.update(overrides)
        server = MetricsServer(**kwargs)
        server.start()
        return server

    def test_endpoints(self):
        server = self.make_server()
        try:
            status, body, headers = fetch(f"{server.url}/metrics")
            assert status == 200
            assert "x 1" in body
            assert headers["Content-Type"].startswith("text/plain")

            status, body, _ = fetch(f"{server.url}/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, body, _ = fetch(f"{server.url}/snapshot")
            assert status == 200
            assert json.loads(body) == {"windows": []}

            status, _, _ = fetch(f"{server.url}/nope")
            assert status == 404
        finally:
            server.close()

    def test_unhealthy_health_is_503(self):
        server = self.make_server(
            render_health=lambda: (503, {"status": "stalled"})
        )
        try:
            status, body, _ = fetch(f"{server.url}/health")
            assert status == 503
            assert json.loads(body)["status"] == "stalled"
        finally:
            server.close()

    def test_render_crash_is_503_not_hang(self):
        def boom():
            raise ValueError("render exploded")

        server = self.make_server(render_metrics=boom)
        try:
            status, body, _ = fetch(f"{server.url}/metrics")
            assert status == 503
            assert json.loads(body)["error"] == "ValueError"
        finally:
            server.close()

    def test_racy_render_retries(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("dict resize")
            return "ok\n"

        server = self.make_server(render_metrics=flaky)
        try:
            status, body, _ = fetch(f"{server.url}/metrics")
            assert status == 200
            assert body == "ok\n"
        finally:
            server.close()


class TestLivePlane:
    def test_health_reflects_monitors_and_levels(self):
        class FakeSuite:
            checked = 123
            violations = []

        instruments = InstrumentSet()
        plane = LivePlane(
            instruments=instruments,
            progress=lambda: 1.0,
            occupancy=lambda: 7,
            free_list_depth=lambda: 93,
            monitors=FakeSuite(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["occupancy"] == 7
            assert payload["free_list_depth"] == 93
            assert payload["monitors"]["checked"] == 123
        finally:
            summary = plane.finish()
        assert summary["windows"] >= 1
        assert summary["port"] == plane.server.port

    def test_violations_flip_health_to_503(self):
        class Violation:
            monitor = "serve_monotonic"
            message = "went backwards"

        class FakeSuite:
            checked = 10
            violations = [Violation()]

        plane = LivePlane(
            instruments=InstrumentSet(),
            monitors=FakeSuite(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "violations"
            assert (
                payload["monitors"]["first_violation"]["monitor"]
                == "serve_monotonic"
            )
        finally:
            plane.finish()

    def test_finish_is_idempotent(self):
        plane = LivePlane(
            instruments=InstrumentSet(), serve_port=0, interval=0.05
        ).start()
        first = plane.finish()
        second = plane.finish()
        assert first["windows"] == second["windows"]


class TestRunnerIntegration:
    def test_soak_serves_all_endpoints_mid_run(self):
        """The acceptance check: query the plane while ops still flow."""
        results = {}
        ready = threading.Event()

        def on_ready(plane):
            results["port"] = plane.server.port
            ready.set()

        def soak():
            results["run"] = run_traced_soak(
                ops=60_000,
                monitor=True,
                serve_port=0,
                live_interval=0.05,
                serve_ready=on_ready,
            )

        thread = threading.Thread(target=soak, daemon=True)
        thread.start()
        assert ready.wait(timeout=10), "live plane never came up"
        base = f"http://127.0.0.1:{results['port']}"

        # The first rollup lands after one collector interval; poll
        # until the live counter appears (the soak runs much longer).
        import time as _time

        deadline = _time.monotonic() + 10.0
        metrics = ""
        while _time.monotonic() < deadline:
            status, metrics, headers = fetch(f"{base}/metrics")
            assert status == 200
            if "live_windows_total" in metrics:
                break
            _time.sleep(0.02)
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_live_windows_total counter" in metrics

        status, health, _ = fetch(f"{base}/health")
        assert status == 200
        payload = json.loads(health)
        assert payload["status"] == "ok"
        assert "occupancy" in payload
        assert "free_list_depth" in payload

        status, snapshot, _ = fetch(f"{base}/snapshot")
        assert status == 200
        assert "windows" in json.loads(snapshot)

        thread.join(timeout=60)
        assert not thread.is_alive()
        run = results["run"]
        assert run.live is not None
        assert run.live["windows"] >= 1
        assert run.auditor is not None
        assert run.auditor.inversions == 0
        # Port is closed after finish().
        with pytest.raises(Exception):
            urllib.request.urlopen(f"{base}/health", timeout=1)
