"""Live observability plane tests: collector, HTTP endpoints, runners.

The endpoint tests bind to port 0 (ephemeral) on 127.0.0.1 and query
the server in-process with :mod:`urllib` — no fixed ports, no external
tooling.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.events import WATCHDOG_KIND
from repro.obs.flight import StallWatchdog
from repro.obs.instruments import InstrumentSet
from repro.obs.live import LivePlane, MetricsServer, WindowedCollector
from repro.obs.runner import run_traced_soak


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8"), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), dict(error.headers)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWindowedCollector:
    def make(self, instruments=None, **kwargs):
        instruments = instruments if instruments is not None else InstrumentSet()
        clock = FakeClock()
        kwargs.setdefault("clock", clock)
        collector = WindowedCollector(instruments, **kwargs)
        collector._started_at = clock()
        collector._last_tick = clock()
        return collector, instruments, clock

    def test_window_rates(self):
        collector, instruments, clock = self.make(interval=0.5)
        instruments.counter("events_insert").inc(100)
        clock.advance(2.0)
        collector.tick()
        window = collector.windows[-1]
        assert window["ops"] == 100
        assert window["ops_per_second"] == pytest.approx(50.0)
        assert collector.live.gauge("live_ops_per_second").value == 50.0

        instruments.counter("events_insert").inc(10)
        clock.advance(1.0)
        collector.tick()
        assert collector.windows[-1]["ops"] == 10

    def test_op_cycles_percentiles_are_windowed(self):
        collector, instruments, clock = self.make()
        hist = instruments.hist("op_cycles")
        for value in (4, 4, 4, 4):
            hist.record(value)
        clock.advance(1.0)
        collector.tick()  # baseline snapshot
        for value in (8, 8, 8, 8):
            hist.record(value)
        clock.advance(1.0)
        collector.tick()
        # Only the second window's samples count toward its percentiles.
        assert collector.windows[-1]["p50_op_cycles"] >= 8

    def test_watchdog_fires_on_stall(self):
        stalls = []
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=1.0, clock=clock)
        collector = WindowedCollector(
            InstrumentSet(),
            progress=lambda: 42.0,
            watchdog=watchdog,
            on_stall=stalls.append,
            clock=clock,
        )
        collector._started_at = clock()
        collector._last_tick = clock()
        collector.tick()
        clock.advance(2.0)
        collector.tick()
        assert len(stalls) == 1
        assert (
            collector.live.counter("live_watchdog_stalls_total").value == 1
        )

    def test_racy_tick_is_skipped_not_raised(self):
        class RacyInstruments(InstrumentSet):
            def items(self):
                raise RuntimeError("dictionary changed size during iteration")

        collector, _, _ = self.make(instruments=RacyInstruments())
        collector.tick()
        assert collector.skipped == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            WindowedCollector(InstrumentSet(), interval=0.0)


class TestMetricsServer:
    def make_server(self, **overrides):
        kwargs = {
            "render_metrics": lambda: "# TYPE x gauge\nx 1\n",
            "render_health": lambda: (200, {"status": "ok"}),
            "render_snapshot": lambda: {"windows": []},
        }
        kwargs.update(overrides)
        server = MetricsServer(**kwargs)
        server.start()
        return server

    def test_endpoints(self):
        server = self.make_server()
        try:
            status, body, headers = fetch(f"{server.url}/metrics")
            assert status == 200
            assert "x 1" in body
            assert headers["Content-Type"].startswith("text/plain")

            status, body, _ = fetch(f"{server.url}/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, body, _ = fetch(f"{server.url}/snapshot")
            assert status == 200
            assert json.loads(body) == {"windows": []}

            status, _, _ = fetch(f"{server.url}/nope")
            assert status == 404
        finally:
            server.close()

    def test_unhealthy_health_is_503(self):
        server = self.make_server(
            render_health=lambda: (503, {"status": "stalled"})
        )
        try:
            status, body, _ = fetch(f"{server.url}/health")
            assert status == 503
            assert json.loads(body)["status"] == "stalled"
        finally:
            server.close()

    def test_render_crash_is_503_not_hang(self):
        def boom():
            raise ValueError("render exploded")

        server = self.make_server(render_metrics=boom)
        try:
            status, body, _ = fetch(f"{server.url}/metrics")
            assert status == 503
            assert json.loads(body)["error"] == "ValueError"
        finally:
            server.close()

    def test_racy_render_retries(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("dict resize")
            return "ok\n"

        server = self.make_server(render_metrics=flaky)
        try:
            status, body, _ = fetch(f"{server.url}/metrics")
            assert status == 200
            assert body == "ok\n"
        finally:
            server.close()


class TestLivePlane:
    def test_health_reflects_monitors_and_levels(self):
        class FakeSuite:
            checked = 123
            violations = []

        instruments = InstrumentSet()
        plane = LivePlane(
            instruments=instruments,
            progress=lambda: 1.0,
            occupancy=lambda: 7,
            free_list_depth=lambda: 93,
            monitors=FakeSuite(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["occupancy"] == 7
            assert payload["free_list_depth"] == 93
            assert payload["monitors"]["checked"] == 123
        finally:
            summary = plane.finish()
        assert summary["windows"] >= 1
        assert summary["port"] == plane.server.port

    def test_violations_flip_health_to_503(self):
        class Violation:
            monitor = "serve_monotonic"
            message = "went backwards"

        class FakeSuite:
            checked = 10
            violations = [Violation()]

        plane = LivePlane(
            instruments=InstrumentSet(),
            monitors=FakeSuite(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "violations"
            assert (
                payload["monitors"]["first_violation"]["monitor"]
                == "serve_monotonic"
            )
        finally:
            plane.finish()

    def test_finish_is_idempotent(self):
        plane = LivePlane(
            instruments=InstrumentSet(), serve_port=0, interval=0.05
        ).start()
        first = plane.finish()
        second = plane.finish()
        assert first["windows"] == second["windows"]


class TestRunnerIntegration:
    def test_soak_serves_all_endpoints_mid_run(self):
        """The acceptance check: query the plane while ops still flow."""
        results = {}
        ready = threading.Event()

        def on_ready(plane):
            results["port"] = plane.server.port
            ready.set()

        def soak():
            results["run"] = run_traced_soak(
                ops=60_000,
                monitor=True,
                serve_port=0,
                live_interval=0.05,
                serve_ready=on_ready,
            )

        thread = threading.Thread(target=soak, daemon=True)
        thread.start()
        assert ready.wait(timeout=10), "live plane never came up"
        base = f"http://127.0.0.1:{results['port']}"

        # The first rollup lands after one collector interval; poll
        # until the live counter appears (the soak runs much longer).
        import time as _time

        deadline = _time.monotonic() + 10.0
        metrics = ""
        while _time.monotonic() < deadline:
            status, metrics, headers = fetch(f"{base}/metrics")
            assert status == 200
            if "live_windows_total" in metrics:
                break
            _time.sleep(0.02)
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_live_windows_total counter" in metrics

        status, health, _ = fetch(f"{base}/health")
        assert status == 200
        payload = json.loads(health)
        assert payload["status"] == "ok"
        assert "occupancy" in payload
        assert "free_list_depth" in payload

        status, snapshot, _ = fetch(f"{base}/snapshot")
        assert status == 200
        assert "windows" in json.loads(snapshot)

        thread.join(timeout=60)
        assert not thread.is_alive()
        run = results["run"]
        assert run.live is not None
        assert run.live["windows"] >= 1
        assert run.auditor is not None
        assert run.auditor.inversions == 0
        # Port is closed after finish().
        with pytest.raises(Exception):
            urllib.request.urlopen(f"{base}/health", timeout=1)


class TestJainFairness:
    def test_balanced_is_one(self):
        from repro.obs.live import jain_fairness

        assert jain_fairness([5.0, 5.0, 5.0]) == 1.0
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_skewed_drops_toward_reciprocal_n(self):
        from repro.obs.live import jain_fairness

        # All load on one of four shards: index = 1/4.
        assert jain_fairness([8.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert 0.25 < jain_fairness([8.0, 2.0, 2.0, 2.0]) < 1.0


class TestPerShardCollector:
    def make(self, **kwargs):
        instruments = InstrumentSet()
        clock = FakeClock()
        kwargs.setdefault("clock", clock)
        collector = WindowedCollector(instruments, **kwargs)
        collector._started_at = clock()
        collector._last_tick = clock()
        return collector, instruments, clock

    def record_shard_ops(self, instruments, counts):
        for shard, amount in counts.items():
            instruments.counter("events_insert").inc(amount)
            instruments.counter(
                "events_insert", labels={"shard": shard}
            ).inc(amount)

    def test_per_shard_rates_and_fairness(self):
        collector, instruments, clock = self.make(interval=0.5)
        self.record_shard_ops(instruments, {"0": 30, "1": 10})
        clock.advance(2.0)
        collector.tick()
        live = collector.live
        assert live.gauge(
            "live_ops_per_second", labels={"shard": "0"}
        ).value == pytest.approx(15.0)
        assert live.gauge(
            "live_ops_per_second", labels={"shard": "1"}
        ).value == pytest.approx(5.0)
        window = collector.windows[-1]
        assert window["shards"]["0"]["ops"] == 30
        assert window["shards"]["1"]["ops"] == 10
        # Jain over (30, 10): (40^2) / (2 * (900 + 100)) = 0.8.
        assert window["throughput_fairness"] == pytest.approx(0.8)

    def test_rates_are_per_window_deltas(self):
        collector, instruments, clock = self.make(interval=0.5)
        self.record_shard_ops(instruments, {"0": 10, "1": 10})
        clock.advance(1.0)
        collector.tick()
        self.record_shard_ops(instruments, {"0": 50})
        clock.advance(1.0)
        collector.tick()
        window = collector.windows[-1]
        assert window["shards"]["0"]["ops"] == 50
        assert window["shards"]["1"]["ops"] == 0
        assert window["throughput_fairness"] == pytest.approx(0.5)

    def test_occupancy_skew_from_callback(self):
        collector, instruments, clock = self.make(
            interval=0.5, shard_occupancies=lambda: [9.0, 1.0, 2.0]
        )
        self.record_shard_ops(instruments, {"0": 1, "1": 1, "2": 1})
        clock.advance(1.0)
        collector.tick()
        live = collector.live
        assert live.gauge(
            "live_occupancy", labels={"shard": "0"}
        ).value == 9.0
        # max/mean = 9 / 4 = 2.25
        assert live.gauge("live_occupancy_skew").value == pytest.approx(
            2.25
        )
        assert collector.windows[-1]["occupancy_skew"] == pytest.approx(
            2.25
        )

    def test_per_shard_cycle_percentiles(self):
        collector, instruments, clock = self.make(interval=0.5)
        self.record_shard_ops(instruments, {"0": 1})
        # The series must exist before the first tick: percentiles are
        # window deltas between snapshots, so the first window that can
        # report is the one after the series' first snapshot.
        instruments.hist("op_cycles", labels={"shard": "0"})
        clock.advance(1.0)
        collector.tick()
        for _ in range(100):
            instruments.hist("op_cycles", labels={"shard": "0"}).record(10)
        instruments.hist("op_cycles", labels={"shard": "0"}).record(100)
        self.record_shard_ops(instruments, {"0": 1})
        clock.advance(1.0)
        collector.tick()
        p99 = collector.live.gauge(
            "live_p99_op_cycles", labels={"shard": "0"}
        ).value
        assert p99 >= 10

    def test_unsharded_runs_pay_nothing(self):
        collector, instruments, clock = self.make(interval=0.5)
        instruments.counter("events_insert").inc(10)
        clock.advance(1.0)
        collector.tick()
        live_names = collector.live.names()
        assert "live_occupancy_skew" not in live_names
        assert "live_throughput_fairness" not in live_names
        assert "shards" not in collector.windows[-1]


class TestHealthPerShard:
    def test_shards_and_slo_in_health_payload(self):
        class FakeAuditor:
            breached = False

            def health_status(self):
                return {
                    "serves": 4,
                    "inversions": 0,
                    "culprit_shard": None,
                    "breached_rules": [],
                    "shard_breaches": {},
                }

        plane = LivePlane(
            instruments=InstrumentSet(),
            shard_occupancies=lambda: [6.0, 2.0],
            auditor=FakeAuditor(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["shards"]["occupancies"] == [6.0, 2.0]
            assert payload["shards"]["occupancy_skew"] == pytest.approx(1.5)
            assert payload["slo"]["culprit_shard"] is None
        finally:
            plane.finish()

    def test_slo_breach_flips_health_to_503(self):
        class FakeAuditor:
            breached = True

            def health_status(self):
                return {
                    "serves": 9,
                    "inversions": 3,
                    "culprit_shard": "shard1",
                    "breached_rules": ["shard_budget"],
                    "shard_breaches": {"shard1": ["shard_budget"]},
                }

        plane = LivePlane(
            instruments=InstrumentSet(),
            auditor=FakeAuditor(),
            serve_port=0,
            interval=0.05,
        ).start()
        try:
            status, body, _ = fetch(f"{plane.server.url}/health")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "slo_breach"
            assert payload["slo"]["culprit_shard"] == "shard1"
        finally:
            plane.finish()
