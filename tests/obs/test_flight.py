"""Flight recorder and stall watchdog tests."""

import pytest

from repro.obs.events import INVARIANT_KIND, TraceEvent, WATCHDOG_KIND
from repro.obs.exporters import read_trace
from repro.obs.flight import FlightRecorder, StallWatchdog
from repro.obs.monitors import check_trace
from repro.obs.runner import run_traced_soak


def op_event(seq, kind="push"):
    return TraceEvent(seq, kind, kind, attrs={"tag": seq})


def violation_event(seq, *, monitor="serve_monotonic", offender=None):
    return TraceEvent(
        seq,
        INVARIANT_KIND,
        monitor,
        attrs={"monitor": monitor, "offender_seq": offender},
    )


class TestFlightRecorder:
    def test_passive_until_trigger(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), ring=8)
        for seq in range(20):
            recorder(op_event(seq))
        assert not recorder.triggered
        assert not path.exists()

    def test_dump_window_and_framing(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), ring=8, post_context=3)
        for seq in range(10):
            recorder(op_event(seq))
        recorder(violation_event(10, offender=9))
        assert recorder.triggered and not recorder.dumped
        for seq in range(11, 14):
            recorder(op_event(seq))
        assert recorder.dumped

        document = read_trace(str(path))
        header = document.header
        assert header["purpose"] == "flight_recorder"
        assert header["trigger"]["kind"] == INVARIANT_KIND
        assert header["trigger"]["monitor"] == "serve_monotonic"
        assert header["trigger"]["offender_seq"] == 9
        # Ring of 8: the window is the 8 most recent events.
        assert header["window"]["events"] == 8
        assert len(document.events) == 8
        # Framed like any archived trace: footer accounts every event.
        assert document.footer["emitted"] == 8
        assert document.footer["dropped"] == 0

    def test_only_first_trigger_dumps(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), ring=8, post_context=0)
        recorder(violation_event(0))
        first = path.read_text()
        recorder(violation_event(1, monitor="coverage"))
        assert path.read_text() == first
        assert recorder.summary()["trigger"]["monitor"] == "serve_monotonic"

    def test_close_flushes_truncated_aftermath(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), ring=8, post_context=100)
        recorder(op_event(0))
        recorder(violation_event(1))
        assert not recorder.dumped
        recorder.close()
        assert recorder.dumped
        assert read_trace(str(path)).footer["emitted"] == 2

    def test_watchdog_kind_triggers(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), ring=4, post_context=0)
        recorder(TraceEvent(0, WATCHDOG_KIND, "stall", attrs={}))
        assert recorder.dumped

    def test_rejects_degenerate_ring(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "x.jsonl"), ring=0)


class TestSeededFaultEndToEnd:
    def test_auto_dump_is_analyze_loadable(self, tmp_path):
        """The acceptance path: seeded fault -> auto dump -> re-conviction."""
        path = tmp_path / "flight.jsonl"
        run = run_traced_soak(
            ops=2000,
            monitor=True,
            flight_path=str(path),
            fault="monotonic",
        )
        assert run.monitors is not None and not run.monitors.ok
        first = run.monitors.violations[0]
        assert first.monitor == "serve_monotonic"
        assert run.flight is not None and run.flight.dumped

        document = read_trace(str(path))
        assert document.header["purpose"] == "flight_recorder"
        assert document.header["trigger"]["monitor"] == "serve_monotonic"
        # The dump replays through the offline monitors and convicts the
        # same monitor at the same offending event.
        suite = check_trace(document.events, header=document.header)
        assert not suite.ok
        replayed = suite.violations[0]
        assert replayed.monitor == "serve_monotonic"
        assert (
            document.header["trigger"]["offender_seq"]
            == run.monitors.violations[0].seq
        )

    def test_clean_run_never_dumps(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        run = run_traced_soak(
            ops=1000, monitor=True, flight_path=str(path)
        )
        assert run.monitors is not None and run.monitors.ok
        assert run.flight is not None and not run.flight.triggered
        assert not path.exists()


class TestStallWatchdog:
    def test_progress_keeps_it_quiet(self):
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=5.0, clock=clock)
        assert not watchdog.observe(1)
        clock.advance(4.0)
        assert not watchdog.observe(2)
        clock.advance(4.0)
        assert not watchdog.observe(3)
        assert not watchdog.stalled

    def test_stall_latches_once(self):
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=5.0, clock=clock)
        watchdog.observe(1)
        clock.advance(6.0)
        assert watchdog.observe(1)  # new stall
        assert watchdog.stalled
        clock.advance(6.0)
        assert not watchdog.observe(1)  # same stall, no re-trigger
        assert watchdog.stall_count == 1

    def test_recovery_clears_stalled_keeps_count(self):
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=5.0, clock=clock)
        watchdog.observe(1)
        clock.advance(6.0)
        watchdog.observe(1)
        assert watchdog.observe(2) is False  # progress resumes
        assert not watchdog.stalled
        assert watchdog.stall_count == 1

    def test_disarm_stops_new_stalls(self):
        clock = FakeClock()
        watchdog = StallWatchdog(timeout=5.0, clock=clock)
        watchdog.observe(1)
        watchdog.disarm()
        clock.advance(60.0)
        assert not watchdog.observe(1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            StallWatchdog(timeout=0.0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
