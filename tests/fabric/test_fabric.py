"""ScheduleFabric: equivalence, batching, spill/rebalance, checkpoints."""

import json

import pytest

from repro.bench.perf import make_flow_ops
from repro.fabric.fabric import ScheduleFabric
from repro.fabric.manager import FabricPolicy
from repro.hwsim.errors import ProtocolError
from repro.net.hardware_store import HardwareTagStore

GRANULARITY = 8.0


def drive(store, ops):
    served = []
    for op in ops:
        if op[0] == "push":
            store.push(op[1], op[2])
        else:
            served.append(store.pop_min())
    return served


def drive_batched(store, ops):
    served = []
    pending = []
    pops = 0
    for op in ops:
        if op[0] == "push":
            if pops:
                served.extend(store.pop_batch(pops))
                pops = 0
            pending.append((op[1], op[2]))
        else:
            if pending:
                store.push_batch(pending)
                pending = []
            pops += 1
    if pending:
        store.push_batch(pending)
    if pops:
        served.extend(store.pop_batch(pops))
    return served


@pytest.mark.parametrize("seed", [3, 17, 99])
def test_one_shard_fabric_matches_bare_store_per_op(seed):
    ops = make_flow_ops(2_000, seed)
    fabric = ScheduleFabric(shards=1, granularity=GRANULARITY)
    store = HardwareTagStore(granularity=GRANULARITY)
    assert drive(fabric, ops) == drive(store, ops)


@pytest.mark.parametrize("seed", [3, 17, 99])
def test_one_shard_fabric_matches_bare_store_batched(seed):
    ops = make_flow_ops(2_000, seed)
    fabric = ScheduleFabric(shards=1, granularity=GRANULARITY, fast_mode=True)
    store = HardwareTagStore(granularity=GRANULARITY, fast_mode=True)
    assert drive_batched(fabric, ops) == drive_batched(store, ops)


@pytest.mark.parametrize("seed", [3, 17, 99])
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_batched_fabric_matches_per_op_fabric(shards, seed):
    """pop_batch's runner-up fence must reproduce repeated pop_min."""
    ops = make_flow_ops(3_000, seed)
    per_op = ScheduleFabric(shards=shards, granularity=GRANULARITY)
    batched = ScheduleFabric(
        shards=shards, granularity=GRANULARITY, fast_mode=True
    )
    assert drive(per_op, ops) == drive_batched(batched, ops)


def test_service_is_quantum_monotone_on_monotone_arrivals():
    """With non-regressing arrival tags the merged stream never goes
    backwards in quantized order.  (Regressing arrivals *may* serve
    behind the global floor — each shard clamps against its own
    minimum — which is why the global invariant is checked via live
    sets, not a watermark; see FabricOrderMonitor.)
    """
    import random

    rng = random.Random(5)
    fabric = ScheduleFabric(shards=4, granularity=GRANULARITY)
    served = []
    vt = 0.0
    live = 0
    for _ in range(400):
        for _ in range(rng.randint(1, 6)):
            vt += rng.random() * 30
            fabric.push(vt, rng.randrange(64))
            live += 1
        for _ in range(rng.randint(0, min(6, live))):
            served.append(fabric.pop_min())
            live -= 1
    quanta = [int(tag / GRANULARITY) for tag, _ in served]
    space = fabric.fmt.capacity
    for previous, current in zip(quanta, quanta[1:]):
        ahead = (current - previous) % space
        assert ahead < space // 2, "service went backwards"


def test_push_pop_counts_and_occupancy():
    fabric = ScheduleFabric(shards=4, granularity=1.0)
    for flow in range(40):
        fabric.push(float(flow), flow)
    assert fabric.pushes == 40
    assert len(fabric) == 40
    assert sum(fabric.occupancies()) == 40
    assert sum(fabric.flow_live.values()) == 40
    fabric.pop_batch(40)
    assert fabric.pops == 40
    assert len(fabric) == 0
    assert fabric.flow_live == {}


def test_pop_from_empty_fabric_raises():
    fabric = ScheduleFabric(shards=2, granularity=1.0)
    with pytest.raises(ProtocolError):
        fabric.pop_min()
    fabric.push(1.0, 1)
    with pytest.raises(ProtocolError):
        fabric.pop_batch(2)


def test_spill_overflows_to_roomier_shard_without_loss():
    """Near-full home shards divert tags instead of dropping them."""
    fabric = ScheduleFabric(
        shards=2,
        granularity=1.0,
        capacity_per_shard=64,
        policy=FabricPolicy(spill_threshold=0.5, rebalance_min_backlog=10**9),
    )
    home = fabric.partitioner.shard_for(7)
    # One flow pushes far past its home shard's spill threshold.
    for index in range(100):
        fabric.push(float(index % 50), 7)
    assert len(fabric) == 100
    assert fabric.manager.spill_count > 0
    assert fabric.occupancies()[1 - home] > 0
    # Nothing was lost: every pushed tag comes back exactly once.  (The
    # exact served values need not be globally sorted — a spilled tag
    # behind its host shard's minimum is clamped up to it, the same
    # concession the single circuit makes for behind-minimum inserts.)
    served = fabric.pop_batch(100)
    assert sorted(tag for tag, _ in served) == sorted(
        float(index % 50) for index in range(100)
    )
    assert all(payload == 7 for _, payload in served)


def test_rebalance_moves_hot_flows():
    """A skewed partition triggers a rebalance that repins flows."""
    policy = FabricPolicy(
        spill_threshold=1.0,
        rebalance_ratio=2.0,
        rebalance_min_backlog=32,
        rebalance_cooldown_ops=1,
        max_moves_per_rebalance=4,
    )
    fabric = ScheduleFabric(
        shards=2, granularity=1.0, capacity_per_shard=4096, policy=policy
    )
    hot = fabric.partitioner.shard_for(11)
    # Everything lands on flow 11's home shard; the other stays empty.
    for index in range(200):
        fabric.push(float(index % 100), 11)
    assert fabric.manager.rebalance_count > 0
    assert fabric.manager.flows_moved > 0
    # The hot flow is now pinned away from its hash home.
    assert fabric.partitioner.shard_for(11) != hot
    # New pushes for that flow land on the new shard.
    before = fabric.occupancies()
    fabric.push(99.0, 11)
    after = fabric.occupancies()
    assert after[1 - hot] == before[1 - hot] + 1


@pytest.mark.parametrize("batched", [False, True])
def test_checkpoint_restore_resumes_identically(batched):
    ops = make_flow_ops(3_000, 23)
    split = len(ops) // 2
    fabric = ScheduleFabric(
        shards=4, granularity=GRANULARITY, fast_mode=batched
    )
    run = drive_batched if batched else drive
    run(fabric, ops[:split])
    # Canonicalize through JSON: checkpoints live on disk.
    state = json.loads(json.dumps(fabric.to_state()))
    restored = ScheduleFabric.from_state(state)
    assert len(restored) == len(fabric)
    assert restored.occupancies() == fabric.occupancies()
    assert run(restored, ops[split:]) == run(fabric, ops[split:])
    assert restored.operations == fabric.operations
    assert restored.cycles == fabric.cycles


def test_describe_is_json_serializable():
    fabric = ScheduleFabric(shards=4, granularity=GRANULARITY)
    drive(fabric, make_flow_ops(500, 1))
    description = fabric.describe()
    assert description["shards"] == 4
    json.dumps(description)


def test_peek_min_exact_matches_next_pop():
    fabric = ScheduleFabric(shards=4, granularity=GRANULARITY)
    assert fabric.peek_min_exact() is None
    for op in make_flow_ops(300, 2):
        if op[0] == "push":
            fabric.push(op[1], op[2])
        else:
            assert fabric.peek_min_exact() == fabric.pop_min()
