"""``python -m repro fabric``: the traced fabric-soak driver."""

import json

from repro.cli import main as cli_main
from repro.fabric.runner import main as runner_main, run_fabric_soak


def test_soak_reconciles_and_reports(tmp_path):
    run = run_fabric_soak(ops=2_000, shards=4, batched=True)
    assert run.reconciled
    assert run.served > 0
    report = run.report()
    assert "fabric soak" in report
    document = run.to_document()
    json.dumps(document)
    assert document["reconciliation"]["exact"] is True
    assert document["fabric"]["shards"] == 4


def test_checkpoint_flow_via_main(tmp_path):
    checkpoint = tmp_path / "fabric.ckpt.json"
    output = tmp_path / "report.json"
    trace = tmp_path / "trace.jsonl"
    status = runner_main(
        [
            "--ops", "2000",
            "--shards", "4",
            "--batched",
            "--monitor",
            "--checkpoint", str(checkpoint),
            "--trace", str(trace),
            "--output", str(output),
            "--format", "json",
        ]
    )
    assert status == 0
    assert checkpoint.exists()
    state = json.loads(checkpoint.read_text().strip())
    assert state["kind"] == "schedule_fabric"
    document = json.loads(output.read_text())
    assert document["checkpoint"]["resumed_match"] is True
    assert document["monitors"]["ok"] is True
    assert document["reconciliation"]["exact"] is True
    assert trace.exists()


def test_cli_dispatches_fabric_subcommand(tmp_path, capsys):
    output = tmp_path / "report.txt"
    status = cli_main(
        ["fabric", "--ops", "500", "--shards", "2", "--output", str(output)]
    )
    assert status == 0
    assert "fabric soak" in output.read_text()


def test_monitor_flags_seeded_fault(tmp_path, monkeypatch):
    """A faulty shard must drive the runner to a nonzero exit."""
    import repro.fabric.runner as runner_module
    from repro.core.sort_retrieve import FaultInjection
    from repro.fabric.fabric import ScheduleFabric

    original_init = ScheduleFabric.__init__

    def faulty_init(self, **kwargs):
        original_init(self, **kwargs)
        self.stores[1].circuit.fault_injection = FaultInjection(
            misreport_serve_offset=-2048
        )

    monkeypatch.setattr(ScheduleFabric, "__init__", faulty_init)
    status = runner_module.main(
        ["--ops", "2000", "--shards", "4", "--monitor",
         "--output", str(tmp_path / "r.txt")]
    )
    assert status == 1
