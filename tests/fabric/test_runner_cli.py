"""``python -m repro fabric``: the traced fabric-soak driver."""

import json

from repro.cli import main as cli_main
from repro.fabric.runner import main as runner_main, run_fabric_soak


def test_soak_reconciles_and_reports(tmp_path):
    run = run_fabric_soak(ops=2_000, shards=4, batched=True)
    assert run.reconciled
    assert run.served > 0
    report = run.report()
    assert "fabric soak" in report
    document = run.to_document()
    json.dumps(document)
    assert document["reconciliation"]["exact"] is True
    assert document["fabric"]["shards"] == 4


def test_checkpoint_flow_via_main(tmp_path):
    checkpoint = tmp_path / "fabric.ckpt.json"
    output = tmp_path / "report.json"
    trace = tmp_path / "trace.jsonl"
    status = runner_main(
        [
            "--ops", "2000",
            "--shards", "4",
            "--batched",
            "--monitor",
            "--checkpoint", str(checkpoint),
            "--trace", str(trace),
            "--output", str(output),
            "--format", "json",
        ]
    )
    assert status == 0
    assert checkpoint.exists()
    state = json.loads(checkpoint.read_text().strip())
    assert state["kind"] == "schedule_fabric"
    document = json.loads(output.read_text())
    assert document["checkpoint"]["resumed_match"] is True
    assert document["monitors"]["ok"] is True
    assert document["reconciliation"]["exact"] is True
    assert trace.exists()


def test_cli_dispatches_fabric_subcommand(tmp_path, capsys):
    output = tmp_path / "report.txt"
    status = cli_main(
        ["fabric", "--ops", "500", "--shards", "2", "--output", str(output)]
    )
    assert status == 0
    assert "fabric soak" in output.read_text()


def test_monitor_flags_seeded_fault(tmp_path, monkeypatch):
    """A faulty shard must drive the runner to a nonzero exit."""
    import repro.fabric.runner as runner_module
    from repro.core.sort_retrieve import FaultInjection
    from repro.fabric.fabric import ScheduleFabric

    original_init = ScheduleFabric.__init__

    def faulty_init(self, **kwargs):
        original_init(self, **kwargs)
        self.stores[1].circuit.fault_injection = FaultInjection(
            misreport_serve_offset=-2048
        )

    monkeypatch.setattr(ScheduleFabric, "__init__", faulty_init)
    status = runner_module.main(
        ["--ops", "2000", "--shards", "4", "--monitor",
         "--output", str(tmp_path / "r.txt")]
    )
    assert status == 1


def test_live_plane_over_fabric_soak(tmp_path):
    """--serve over the fabric: endpoints up, serve audit clean."""
    import json as _json
    import urllib.request

    run = run_fabric_soak(
        ops=3000, shards=4, monitor=True, serve_port=0, live_interval=0.05
    )
    assert run.live is not None
    assert run.live["windows"] >= 1
    assert run.live["skipped_ticks"] == 0 or run.live["windows"] > 0
    assert run.auditor is not None
    assert run.auditor.serves > 0
    assert run.auditor.inversions == 0
    # Per-shard watermarks: every shard component was audited.
    components = run.auditor.summary()["components"]
    assert len(components) >= 1
    # The exposition text includes both base and live families.
    text = run.metrics_text()
    assert "repro_live_windows_total" in text
    assert "repro_live_serves_total" in text
    # Server is down after the run.
    port = run.live["port"]
    try:
        urllib.request.urlopen(
            f"http://127.0.0.1:{port}/health", timeout=1
        )
        assert False, "server should be closed"
    except Exception:
        pass


def test_flight_recorder_dumps_on_fabric_fault(tmp_path, monkeypatch):
    """A seeded per-shard fault auto-dumps an analyze-loadable window."""
    import repro.fabric.runner as runner_module
    from repro.core.sort_retrieve import FaultInjection
    from repro.fabric.fabric import ScheduleFabric
    from repro.obs.exporters import read_trace

    original_init = ScheduleFabric.__init__

    def faulty_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.stores[0].circuit.fault_injection = FaultInjection(
            extra_dequeue_reads=3
        )

    monkeypatch.setattr(ScheduleFabric, "__init__", faulty_init)
    flight_path = tmp_path / "fabric_flight.jsonl"
    run = runner_module.run_fabric_soak(
        ops=1500, shards=2, monitor=True, flight_path=str(flight_path)
    )
    assert run.monitors is not None and not run.monitors.ok
    assert run.flight is not None and run.flight.dumped
    document = read_trace(str(flight_path))
    assert document.header["purpose"] == "flight_recorder"
    assert document.header["trigger"]["monitor"] == "dequeue_bound"
    assert document.footer["emitted"] == len(document.events)


def test_per_shard_attribution_in_document():
    run = run_fabric_soak(ops=1500, shards=3, workers=2, batched=True)
    document = run.to_document()
    by_component = document["reconciliation"]["by_component"]
    assert {"shard0", "shard1", "shard2"} <= set(by_component)
    # Per-component attribution covers the reconciled grand total.
    assert sum(by_component.values()) == document["reconciliation"]["traced"]
    assert document["reconciliation"]["exact"]
    assert "attribution by shard" in run.report()


def test_labeled_series_in_prometheus_metrics(tmp_path):
    metrics = tmp_path / "metrics.prom"
    status = runner_main(
        [
            "--ops",
            "1200",
            "--shards",
            "3",
            "--workers",
            "2",
            "--metrics",
            str(metrics),
            "--output",
            str(tmp_path / "report.txt"),
        ]
    )
    assert status == 0
    text = metrics.read_text()
    assert 'repro_events_insert_total{shard="0"}' in text
    # Labeled series sum to the aggregate sample.
    import re

    aggregate = None
    labeled = 0
    for line in text.splitlines():
        match = re.match(r"repro_events_insert_total(\{[^}]*\})? (\d+)", line)
        if not match:
            continue
        if match.group(1):
            labeled += int(match.group(2))
        else:
            aggregate = int(match.group(2))
    assert aggregate is not None and labeled == aggregate


def test_shard_slo_flag_arms_per_shard_rules(tmp_path):
    run = run_fabric_soak(
        ops=1000,
        shards=2,
        serve_port=0,
        live_interval=0.05,
        shard_slo_inversions=0,
    )
    assert run.auditor is not None
    # A clean soak never burns the budget, but the lanes carry the rule.
    status = run.auditor.health_status()
    assert status["shard_breaches"] == {}
    assert not run.auditor.breached
