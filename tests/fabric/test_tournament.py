"""TournamentAggregator: winner/runner-up correctness, cost bounds."""

import random

import pytest

from repro.fabric.tournament import TournamentAggregator


def wrap_min_index(tags, space):
    """Reference: index of the wrap-aware minimum, ties to the left."""
    best = None
    for index, tag in enumerate(tags):
        if tag is None:
            continue
        if best is None:
            best = index
        elif (tag - tags[best]) % space >= space // 2:
            # ``tag`` precedes the incumbent in cyclical order; ties
            # keep the incumbent (lower index wins).
            best = index
    return best


@pytest.mark.parametrize("leaves", [1, 2, 3, 4, 7, 16])
def test_winner_matches_reference_min(leaves):
    rng = random.Random(leaves)
    space = 4096
    # Wrap-aware order is only transitive while the live span stays
    # under half the tag space (the circuits' span guard), so each
    # trial draws from one half-space window — at a random phase, so
    # many trials straddle the wrap point.
    for trial in range(20):
        tree = TournamentAggregator(leaves, space=space)
        tags = [None] * leaves
        base = rng.randrange(space)
        for _ in range(50):
            leaf = rng.randrange(leaves)
            tag = rng.choice(
                [None, (base + rng.randrange(space // 2 - 1)) % space]
            )
            tags[leaf] = tag
            tree.update(leaf, tag)
            assert tree.winner == wrap_min_index(tags, space)


def test_ties_go_to_the_lower_shard():
    tree = TournamentAggregator(4, space=4096)
    for leaf in range(4):
        tree.update(leaf, 100)
    assert tree.winner == 0
    tree.update(0, None)
    assert tree.winner == 1


def test_wrap_aware_ordering():
    space = 4096
    tree = TournamentAggregator(2, space=space)
    # 4000 is *behind* 10 in cyclical order (the live window wrapped).
    tree.update(0, 10)
    tree.update(1, 4000)
    assert tree.winner == 1
    assert tree.precedes(4000, 10)
    assert not tree.precedes(10, 4000)


def test_runner_up_is_second_best():
    rng = random.Random(7)
    space = 4096
    for trial in range(15):
        tree = TournamentAggregator(8, space=space)
        tags = [None] * 8
        base = rng.randrange(space)
        for _ in range(40):
            leaf = rng.randrange(8)
            tags[leaf] = rng.choice(
                [None, (base + rng.randrange(space // 2 - 1)) % space]
            )
            tree.update(leaf, tags[leaf])
            winner = tree.winner
            runner = tree.runner_up()
            if winner is None:
                assert runner is None
                continue
            rest = list(tags)
            rest[winner] = None
            expected = wrap_min_index(rest, space)
            if expected is None:
                assert runner is None
            else:
                # Any shard holding the same second-best tag is a valid
                # fence; the implementation picks one deterministically.
                assert tags[runner] == tags[expected]


def test_update_cost_is_logarithmic():
    tree = TournamentAggregator(16, space=4096)
    before = tree.comparisons
    tree.update(5, 123)
    # One comparison per level on the leaf-to-root path: log2(16) = 4.
    assert tree.comparisons - before <= 4


def test_rebuild_matches_incremental_updates():
    rng = random.Random(42)
    tags = [rng.choice([None, rng.randrange(4096)]) for _ in range(8)]
    incremental = TournamentAggregator(8, space=4096)
    for leaf, tag in enumerate(tags):
        incremental.update(leaf, tag)
    rebuilt = TournamentAggregator(8, space=4096)
    rebuilt.rebuild(tags)
    assert rebuilt.winner == incremental.winner
    for leaf in range(8):
        assert rebuilt.leaf_tag(leaf) == incremental.leaf_tag(leaf)
