"""Per-component invariant monitors against live fabric traces."""

import pytest

from repro.bench.perf import _drive_batched, _drive_per_op, make_flow_ops
from repro.core.sort_retrieve import FaultInjection
from repro.fabric.fabric import ScheduleFabric
from repro.obs.events import TraceEvent
from repro.obs.monitors import (
    FabricBalanceMonitor,
    FabricOrderMonitor,
    MonitorConfig,
    MonitorSuite,
)
from repro.obs.tracer import Tracer


def monitored_fabric(shards=4, batched=False):
    tracer = Tracer(buffer_size=200_000)
    fabric = ScheduleFabric(
        shards=shards, granularity=8.0, fast_mode=batched, tracer=tracer
    )
    suite = MonitorSuite.for_circuit(fabric.stores[0].circuit, tracer=tracer)
    tracer.add_observer(suite)
    return fabric, tracer, suite


@pytest.mark.parametrize("batched", [False, True])
def test_clean_fabric_soak_has_zero_violations(batched):
    fabric, tracer, suite = monitored_fabric(batched=batched)
    ops = make_flow_ops(5_000, 20060101)
    drive = _drive_batched if batched else _drive_per_op
    drive(fabric, ops)
    assert suite.checked > 0
    assert suite.ok, [v.to_dict() for v in suite.violations]


def test_seeded_cross_shard_fault_is_caught_with_component():
    """A shard misreporting its served tag must trip the monitors, and
    the violations must name the faulty shard."""
    fabric, tracer, suite = monitored_fabric()
    fabric.stores[2].circuit.fault_injection = FaultInjection(
        misreport_serve_offset=-2048
    )
    _drive_per_op(fabric, make_flow_ops(5_000, 7))
    assert not suite.ok
    components = {
        violation.attrs.get("component") for violation in suite.violations
    }
    assert "shard2" in components


def test_fabric_order_monitor_catches_wrong_shard_serve():
    """Serving a shard whose head does not hold the global minimum is
    exactly the invariant the tournament maintains."""
    monitor = FabricOrderMonitor(MonitorConfig())
    events = [
        TraceEvent(0, "insert", "insert", attrs={"tag": 100, "component": "shard0"}),
        TraceEvent(1, "insert", "insert", attrs={"tag": 50, "component": "shard1"}),
    ]
    for event in events:
        assert monitor.check(event) is None
        monitor.update(event)
    # shard0 serves 100 while shard1 still holds the live 50.
    bad = TraceEvent(2, "dequeue", "dequeue", attrs={"tag": 100, "component": "shard0"})
    assert monitor.check(bad) is not None
    # The legal serve (shard1's 50) passes.
    good = TraceEvent(3, "dequeue", "dequeue", attrs={"tag": 50, "component": "shard1"})
    assert monitor.check(good) is None


def test_fabric_order_monitor_tie_goes_to_lower_shard():
    monitor = FabricOrderMonitor(MonitorConfig())
    for shard in (0, 1):
        event = TraceEvent(
            shard, "insert", "insert",
            attrs={"tag": 70, "component": f"shard{shard}"},
        )
        monitor.update(event)
    # Equal heads: shard1 serving first violates the tie rule...
    bad = TraceEvent(2, "dequeue", "dequeue", attrs={"tag": 70, "component": "shard1"})
    assert monitor.check(bad) is not None
    # ...shard0 serving first is the tournament's deterministic choice.
    good = TraceEvent(3, "dequeue", "dequeue", attrs={"tag": 70, "component": "shard0"})
    assert monitor.check(good) is None


def test_fabric_balance_monitor_catches_ledger_drift():
    monitor = FabricBalanceMonitor(MonitorConfig())
    for shard, tag in ((0, 10), (0, 11), (1, 12)):
        monitor.update(
            TraceEvent(
                0, "insert", "insert",
                attrs={
                    "tag": tag,
                    "component": f"shard{shard}",
                    "occupancy": 2 if shard == 0 and tag == 11 else 1,
                },
            )
        )
    honest = TraceEvent(
        3, "rebalance", "rebalance",
        attrs={"component": "fabric", "occupancies": [2, 1]},
    )
    assert monitor.check(honest) is None
    tampered = TraceEvent(
        4, "rebalance", "rebalance",
        attrs={"component": "fabric", "occupancies": [1, 2]},
    )
    assert monitor.check(tampered) is not None


def test_rebalance_events_reconcile_with_ledger_live():
    """A real soak that rebalances passes the balance monitor."""
    from repro.fabric.manager import FabricPolicy

    tracer = Tracer(buffer_size=200_000)
    fabric = ScheduleFabric(
        shards=2,
        granularity=1.0,
        policy=FabricPolicy(
            spill_threshold=1.0,
            rebalance_ratio=2.0,
            rebalance_min_backlog=32,
            rebalance_cooldown_ops=16,
        ),
        tracer=tracer,
    )
    suite = MonitorSuite.for_circuit(fabric.stores[0].circuit, tracer=tracer)
    tracer.add_observer(suite)
    for index in range(200):
        fabric.push(float(index % 100), 11)
    assert fabric.manager.rebalance_count > 0
    assert suite.ok, [v.to_dict() for v in suite.violations]
