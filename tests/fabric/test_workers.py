"""Process-parallel enqueue backend: parity and reconciliation."""

import pytest

from repro.bench.perf import _drive_batched, make_flow_ops
from repro.fabric.fabric import ScheduleFabric
from repro.obs.tracer import Tracer


def test_workers_match_in_process_backend():
    """The pool is a pure execution strategy: identical service order,
    identical operation and cycle counts."""
    ops = make_flow_ops(2_000, 13)
    reference = ScheduleFabric(shards=4, granularity=8.0, fast_mode=True)
    served_reference = _drive_batched(reference, ops)

    fabric = ScheduleFabric(shards=4, granularity=8.0, fast_mode=True)
    fabric.use_workers(2)
    try:
        served = _drive_batched(fabric, ops)
    finally:
        fabric.close_workers()

    assert served == served_reference
    assert fabric.operations == reference.operations
    assert fabric.cycles == reference.cycles
    assert fabric.occupancies() == reference.occupancies()


def test_worker_deltas_keep_traced_runs_reconciled():
    """Worker-side registry deltas ride home on shard_enqueue events, so
    attribution still covers every access in the restored registries."""
    tracer = Tracer(buffer_size=200_000)
    fabric = ScheduleFabric(
        shards=4, granularity=8.0, fast_mode=True, tracer=tracer
    )
    fabric.use_workers(2)
    try:
        _drive_batched(fabric, make_flow_ops(1_500, 3))
    finally:
        fabric.close_workers()
    traced = tracer.attributed_totals()
    merged = {}
    for store in fabric.stores:
        registry = store.circuit.registry
        for name in registry.names():
            stats = registry[name]
            reads, writes = merged.get(name, (0, 0))
            merged[name] = (reads + stats.reads, writes + stats.writes)
    for name, (reads, writes) in merged.items():
        mine = traced.get(name)
        got = (mine.reads, mine.writes) if mine else (0, 0)
        assert got == (reads, writes), name
    worker_events = tracer.events("shard_enqueue")
    assert any(event.attrs.get("worker") for event in worker_events)


def test_close_workers_is_idempotent():
    fabric = ScheduleFabric(shards=2, granularity=8.0, fast_mode=True)
    fabric.use_workers(2)
    assert fabric.workers == 2
    fabric.close_workers()
    fabric.close_workers()
    assert fabric.workers == 0
    # In-process path still works after the pool is gone.
    fabric.push_batch([(1.0, 1), (2.0, 2)])
    assert len(fabric) == 2


def collect_kind_counts(tracer):
    counts = {}
    for event in tracer.events():
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def test_worker_events_ship_home_and_match_in_process():
    """A traced --workers soak reconciles event-for-event: the worker's
    per-op events ride home and merge into the main trace, so the kind
    counts match the in-process backend exactly."""

    def run(workers):
        tracer = Tracer(buffer_size=200_000)
        fabric = ScheduleFabric(
            shards=4, granularity=8.0, fast_mode=True, tracer=tracer
        )
        if workers:
            fabric.use_workers(workers)
        try:
            _drive_batched(fabric, make_flow_ops(1_200, 5))
        finally:
            fabric.close_workers()
        return tracer

    reference = run(0)
    shipped = run(2)
    assert collect_kind_counts(shipped) == collect_kind_counts(reference)
    assert shipped.emitted == reference.emitted
    # Shipped shard_enqueue events record how many events came home.
    enqueues = [
        event
        for event in shipped.events("shard_enqueue")
        if event.attrs.get("worker")
    ]
    assert enqueues
    assert all("shipped" in event.attrs for event in enqueues)
    assert sum(event.attrs["shipped"] for event in enqueues) > 0
    assert all(event.attrs["worker_dropped"] == 0 for event in enqueues)


def test_worker_events_carry_shard_components():
    """Ingested worker events are component-stamped, so per-shard
    attribution covers the worker-side accesses too."""
    tracer = Tracer(buffer_size=200_000)
    fabric = ScheduleFabric(
        shards=3, granularity=8.0, fast_mode=True, tracer=tracer
    )
    fabric.use_workers(2)
    try:
        _drive_batched(fabric, make_flow_ops(900, 11))
    finally:
        fabric.close_workers()
    by_component = tracer.attributed_totals_by_component()
    shard_components = {
        name for name in by_component if name.startswith("shard")
    }
    assert shard_components == {"shard0", "shard1", "shard2"}
    attributed = sum(
        stats.total
        for totals in by_component.values()
        for stats in totals.values()
    )
    assert attributed == tracer.attributed_grand_total().total


def test_worker_pool_context_manager_closes_cleanly():
    from repro.fabric.workers import FabricWorkerPool

    with FabricWorkerPool(2) as pool:
        assert not pool.closed
    assert pool.closed


def test_worker_pool_context_manager_terminates_on_exception():
    from repro.fabric.workers import FabricWorkerPool
    from repro.hwsim.errors import ConfigurationError

    with pytest.raises(RuntimeError):
        with FabricWorkerPool(2) as pool:
            raise RuntimeError("boom")
    assert pool.closed
    with pytest.raises(ConfigurationError):
        pool.push_batches([])


def test_fabric_context_manager_reaps_workers():
    with ScheduleFabric(shards=2, granularity=8.0, fast_mode=True) as fabric:
        fabric.use_workers(2)
        fabric.push_batch([(1.0, 1), (2.0, 2)])
    assert fabric.workers == 0
