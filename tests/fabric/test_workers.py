"""Process-parallel enqueue backend: parity and reconciliation."""

import pytest

from repro.bench.perf import _drive_batched, make_flow_ops
from repro.fabric.fabric import ScheduleFabric
from repro.obs.tracer import Tracer


def test_workers_match_in_process_backend():
    """The pool is a pure execution strategy: identical service order,
    identical operation and cycle counts."""
    ops = make_flow_ops(2_000, 13)
    reference = ScheduleFabric(shards=4, granularity=8.0, fast_mode=True)
    served_reference = _drive_batched(reference, ops)

    fabric = ScheduleFabric(shards=4, granularity=8.0, fast_mode=True)
    fabric.use_workers(2)
    try:
        served = _drive_batched(fabric, ops)
    finally:
        fabric.close_workers()

    assert served == served_reference
    assert fabric.operations == reference.operations
    assert fabric.cycles == reference.cycles
    assert fabric.occupancies() == reference.occupancies()


def test_worker_deltas_keep_traced_runs_reconciled():
    """Worker-side registry deltas ride home on shard_enqueue events, so
    attribution still covers every access in the restored registries."""
    tracer = Tracer(buffer_size=200_000)
    fabric = ScheduleFabric(
        shards=4, granularity=8.0, fast_mode=True, tracer=tracer
    )
    fabric.use_workers(2)
    try:
        _drive_batched(fabric, make_flow_ops(1_500, 3))
    finally:
        fabric.close_workers()
    traced = tracer.attributed_totals()
    merged = {}
    for store in fabric.stores:
        registry = store.circuit.registry
        for name in registry.names():
            stats = registry[name]
            reads, writes = merged.get(name, (0, 0))
            merged[name] = (reads + stats.reads, writes + stats.writes)
    for name, (reads, writes) in merged.items():
        mine = traced.get(name)
        got = (mine.reads, mine.writes) if mine else (0, 0)
        assert got == (reads, writes), name
    worker_events = tracer.events("shard_enqueue")
    assert any(event.attrs.get("worker") for event in worker_events)


def test_close_workers_is_idempotent():
    fabric = ScheduleFabric(shards=2, granularity=8.0, fast_mode=True)
    fabric.use_workers(2)
    assert fabric.workers == 2
    fabric.close_workers()
    fabric.close_workers()
    assert fabric.workers == 0
    # In-process path still works after the pool is gone.
    fabric.push_batch([(1.0, 1), (2.0, 2)])
    assert len(fabric) == 2
