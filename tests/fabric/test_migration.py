"""Backlog migration: repinned flows take their queued entries along."""

import pytest

from repro.fabric.fabric import ScheduleFabric
from repro.fabric.manager import FabricPolicy
from repro.net.timer import TimerWheel
from repro.obs.monitors import MonitorSuite
from repro.obs.tracer import Tracer

#: arms a rebalance quickly and allows immediate re-arms
AGGRESSIVE = dict(
    spill_threshold=1.0,
    rebalance_ratio=2.0,
    rebalance_min_backlog=32,
    rebalance_cooldown_ops=1,
    max_moves_per_rebalance=4,
)


def _hot_fabric(**policy_overrides):
    policy = FabricPolicy(**{**AGGRESSIVE, **policy_overrides})
    return ScheduleFabric(
        shards=2, granularity=1.0, capacity_per_shard=4096, policy=policy
    )


def test_migration_moves_queued_entries():
    """The skew that armed the rebalance shrinks immediately."""
    fabric = _hot_fabric()
    for index in range(200):
        fabric.push(float(index % 100), 11)
    assert fabric.manager.rebalance_count > 0
    assert fabric.manager.entries_migrated > 0
    # Both shards now hold backlog: the migration moved roughly half the
    # gap instead of waiting for the hot shard to drain.
    occupancies = fabric.occupancies()
    assert min(occupancies) > 0
    assert len(fabric) == 200


def test_migration_disabled_restores_legacy_behavior():
    fabric = _hot_fabric(migrate_backlog=False)
    home = fabric.partitioner.shard_for(11)
    for index in range(200):
        fabric.push(float(index % 100), 11)
    assert fabric.manager.rebalance_count > 0
    assert fabric.manager.entries_migrated == 0
    # Queued entries stayed home; only post-repin arrivals landed on the
    # new shard, so the old home still carries the larger backlog.
    occupancies = fabric.occupancies()
    assert occupancies[home] > occupancies[1 - home]


def test_migration_conserves_entries_and_flow_order():
    """No tag is lost and within-flow FCFS survives the move."""
    fabric = _hot_fabric()
    # Strictly increasing tags: within-flow service order must equal
    # arrival order no matter how entries moved between shards.
    payloads = []
    for index in range(300):
        fabric.push(float(index), 11, payload=("pkt", index))
        payloads.append(("pkt", index))
    assert fabric.manager.entries_migrated > 0
    served = [fabric.pop_min() for _ in range(300)]
    served_payloads = [payload for _, payload in served]
    assert served_payloads == payloads


def test_handles_stay_valid_with_listener_remapping():
    """A caller following relocations can remove every entry by handle.

    push() itself returns the post-migration handle for the entry it
    just inserted; handles issued *earlier* are kept fresh through the
    relocation listener — the contract TimerWheel and the serve ledger
    build on.
    """
    fabric = _hot_fabric()
    handles = {}

    def remap(relocations):
        moved = [
            (new, handles.pop(old))
            for old, new in relocations.items()
            if old in handles
        ]
        for new, index in moved:
            handles[new] = index

    fabric.add_relocation_listener(remap)
    for index in range(250):
        handles[fabric.push(float(index), 11, payload=("pkt", index))] = index
    assert fabric.manager.entries_migrated > 0
    # Every tracked handle still names its own payload.
    for handle, index in sorted(handles.items()):
        tag, payload = fabric.remove(handle)
        assert tag == float(index)
        assert payload == ("pkt", index)
    assert len(fabric) == 0


def test_relocation_listener_reports_remaps():
    fabric = _hot_fabric()
    seen = {}
    fabric.add_relocation_listener(seen.update)
    live = {}
    for index in range(250):
        live[fabric.push(float(index), 11)] = index
    assert fabric.manager.entries_migrated > 0
    assert seen  # the migration announced its moves
    # Old handles disappear from the live set, new ones are resolvable.
    for old, new in seen.items():
        if old in live:
            index = live.pop(old)
            live[new] = index
    for handle, index in list(live.items())[:16]:
        tag, _ = fabric.remove(handle)
        assert tag == float(index)


def test_timer_tokens_survive_migration():
    """A TimerWheel over the fabric keeps tokens valid across moves."""
    policy = FabricPolicy(**AGGRESSIVE)
    fabric = ScheduleFabric(
        shards=2, granularity=1.0, capacity_per_shard=4096, policy=policy
    )
    wheel = TimerWheel(fabric)
    # One hot connection id: every timer lands on its home shard, which
    # arms the rebalance (the fabric routes timers on their id).
    tokens = [wheel.arm(float(index), 11) for index in range(200)]
    assert fabric.manager.entries_migrated > 0
    # Cancel a spread of tokens: every one still resolves post-move.
    for index in (1, 50, 150, 199):
        assert wheel.cancel(tokens[index]) == 11
    assert wheel.pending == 196
    # The survivors still expire in deadline order.
    fired = wheel.expire_until(500.0)
    assert [deadline for deadline, _ in fired] == sorted(
        float(index) for index in range(200) if index not in (1, 50, 150, 199)
    )


def test_migration_emits_events_and_keeps_monitors_clean():
    tracer = Tracer(buffer_size=65536)
    policy = FabricPolicy(**AGGRESSIVE)
    fabric = ScheduleFabric(
        shards=2,
        granularity=1.0,
        capacity_per_shard=4096,
        policy=policy,
        tracer=tracer,
    )
    suite = MonitorSuite.for_circuit(fabric.stores[0].circuit, tracer=tracer)
    tracer.add_observer(suite)
    for index in range(300):
        fabric.push(float(index % 100), 11)
    for _ in range(300):
        fabric.pop_min()
    migrations = tracer.events("shard_migrate")
    assert migrations
    event = migrations[0]
    assert event.attrs["entries"] >= 1
    assert event.attrs["source"] != event.attrs["target"]
    assert suite.ok, [str(v) for v in suite.violations]


def test_full_target_skips_migration_without_loss():
    """A target shard with no free slots refuses entries gracefully."""
    policy = FabricPolicy(**AGGRESSIVE)
    fabric = ScheduleFabric(
        shards=2, granularity=1.0, capacity_per_shard=150, policy=policy
    )
    # Fill both shards near capacity with distinct flows, then skew one.
    for index in range(140):
        fabric.push(float(index), 11)  # home shard of flow 11
    total = len(fabric)
    for index in range(100):
        fabric.push(float(index % 50), 11)
        total += 1
    assert len(fabric) == total  # nothing vanished, spills included
