"""FlowPartitioner: routing determinism, overrides, checkpointing."""

import pytest

from repro.fabric.partitioner import FlowPartitioner
from repro.hwsim.errors import ConfigurationError


def test_hash_policy_is_deterministic_and_in_range():
    part = FlowPartitioner(8, policy="hash")
    first = [part.shard_for(flow) for flow in range(1000)]
    second = [part.shard_for(flow) for flow in range(1000)]
    assert first == second
    assert all(0 <= shard < 8 for shard in first)


def test_hash_policy_spreads_flows():
    part = FlowPartitioner(8, policy="hash")
    counts = [0] * 8
    for flow in range(4096):
        counts[part.shard_for(flow)] += 1
    # Multiplicative hashing over a contiguous id range should land
    # within 2x of perfectly even on every shard.
    assert min(counts) > 4096 // 8 // 2
    assert max(counts) < 4096 // 8 * 2


def test_range_policy_is_contiguous():
    part = FlowPartitioner(4, policy="range", flow_space=1024)
    shards = [part.shard_for(flow) for flow in range(1024)]
    assert shards == sorted(shards)
    assert set(shards) == {0, 1, 2, 3}


def test_overrides_win_and_clear():
    part = FlowPartitioner(4, policy="hash")
    home = part.shard_for(7)
    target = (home + 1) % 4
    part.assign(7, target)
    assert part.shard_for(7) == target
    part.clear(7)
    assert part.shard_for(7) == home


def test_single_shard_everything_routes_to_zero():
    part = FlowPartitioner(1, policy="hash")
    assert {part.shard_for(flow) for flow in range(100)} == {0}


def test_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        FlowPartitioner(0)
    with pytest.raises(ConfigurationError):
        FlowPartitioner(4, policy="nope")


def test_state_roundtrip_preserves_overrides():
    part = FlowPartitioner(4, policy="hash", flow_space=512)
    part.assign(3, 2)
    part.assign(9, 0)
    restored = FlowPartitioner.from_state(part.to_state())
    for flow in range(200):
        assert restored.shard_for(flow) == part.shard_for(flow)
    assert restored.to_state() == part.to_state()
