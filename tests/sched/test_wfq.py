"""Tests for WFQ / WF²Q / WF²Q+ / SCFQ / FBFQ — the fair-queueing family."""

import random

import pytest

from repro.sched import (
    FBFQScheduler,
    GPSFluidSimulator,
    Packet,
    SCFQScheduler,
    WF2QPlusScheduler,
    WF2QScheduler,
    WFQScheduler,
    simulate,
)

RATE = 1e6  # 1 Mb/s


def poisson_trace(rng, flows, count, load=1.2, mean_bytes=600):
    trace = []
    t = 0.0
    per_packet = mean_bytes * 8 / RATE
    for _ in range(count):
        t += rng.expovariate(load / per_packet)
        trace.append(
            Packet(
                flow_id=rng.randrange(flows),
                size_bytes=rng.choice([64, 576, 1500]),
                arrival_time=t,
            )
        )
    return trace


def clone(trace):
    return [
        Packet(p.flow_id, p.size_bytes, p.arrival_time, packet_id=p.packet_id)
        for p in trace
    ]


WEIGHTS = [0.4, 0.3, 0.2, 0.1]

FQ_SCHEDULERS = [
    WFQScheduler,
    WF2QScheduler,
    WF2QPlusScheduler,
    SCFQScheduler,
    FBFQScheduler,
]


def build(scheduler_cls):
    scheduler = scheduler_cls(RATE)
    for flow_id, weight in enumerate(WEIGHTS):
        scheduler.add_flow(flow_id, weight)
    return scheduler


@pytest.mark.parametrize("scheduler_cls", FQ_SCHEDULERS)
class TestFamilyCommon:
    def test_delivers_every_packet(self, scheduler_cls, rng):
        trace = poisson_trace(rng, 4, 300)
        result = simulate(build(scheduler_cls), clone(trace))
        assert len(result.packets) == 300

    def test_departures_after_arrivals(self, scheduler_cls, rng):
        trace = poisson_trace(rng, 4, 200)
        result = simulate(build(scheduler_cls), clone(trace))
        for packet in result.packets:
            assert packet.departure_time >= packet.arrival_time

    def test_work_conserving_makespan(self, scheduler_cls, rng):
        """All work-conserving policies finish a saturated trace at the
        same instant (total bits / rate after the last arrival)."""
        trace = poisson_trace(rng, 4, 300)
        reference = simulate(build(WFQScheduler), clone(trace))
        result = simulate(build(scheduler_cls), clone(trace))
        assert result.finish_time == pytest.approx(
            reference.finish_time, rel=1e-9
        )

    def test_per_flow_fifo(self, scheduler_cls, rng):
        trace = poisson_trace(rng, 4, 300)
        result = simulate(build(scheduler_cls), clone(trace))
        for flow_packets in result.by_flow().values():
            ids = [p.packet_id for p in flow_packets]
            assert ids == sorted(ids)

    def test_tags_assigned(self, scheduler_cls, rng):
        trace = poisson_trace(rng, 4, 50)
        result = simulate(build(scheduler_cls), clone(trace))
        for packet in result.packets:
            assert packet.finish_tag is not None
            assert packet.start_tag is not None
            assert packet.finish_tag > packet.start_tag


class TestParekhGallagerBound:
    """depart_WFQ <= depart_GPS + L_max / rate, packet by packet."""

    @pytest.mark.parametrize("scheduler_cls", [WFQScheduler, WF2QScheduler])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bound_holds(self, scheduler_cls, seed):
        rng = random.Random(seed)
        trace = poisson_trace(rng, 4, 400)
        result = simulate(build(scheduler_cls), clone(trace))
        gps = GPSFluidSimulator(RATE)
        for flow_id, weight in enumerate(WEIGHTS):
            gps.set_weight(flow_id, weight)
        reference = gps.run(clone(trace))
        bound = 1500 * 8 / RATE
        for packet in result.packets:
            gps_departure = reference[packet.packet_id].departure_time
            assert packet.departure_time <= gps_departure + bound + 1e-9

    def test_wfq_tags_match_gps_tags(self):
        rng = random.Random(9)
        trace = poisson_trace(rng, 4, 100)
        scheduler = build(WFQScheduler)
        result = simulate(scheduler, clone(trace))
        gps = GPSFluidSimulator(RATE)
        for flow_id, weight in enumerate(WEIGHTS):
            gps.set_weight(flow_id, weight)
        reference = gps.run(clone(trace))
        for packet in result.packets:
            assert packet.finish_tag == pytest.approx(
                reference[packet.packet_id].finish_tag, rel=1e-9
            )


class TestWF2QEligibility:
    def test_wf2q_never_runs_ahead_of_gps(self):
        """WF²Q serves only eligible packets (S <= V), so a packet never
        *starts* before its GPS start time."""
        scheduler = WF2QScheduler(RATE)
        scheduler.add_flow(0, 0.5)
        scheduler.add_flow(1, 0.5)
        trace = [
            Packet(0, 1500, 0.0),
            Packet(0, 1500, 0.0),
            Packet(0, 1500, 0.0),
            Packet(1, 1500, 0.0),
        ]
        result = simulate(scheduler, trace)
        # With equal weights, flow 1's packet cannot be starved to the
        # end: WF2Q interleaves.
        order = [p.flow_id for p in result.packets]
        assert order.index(1) < 3

    def test_wf2qplus_counts_two_sorts_per_packet(self, rng):
        scheduler = build(WF2QPlusScheduler)
        trace = poisson_trace(rng, 4, 100)
        simulate(scheduler, clone(trace))
        # The paper: WF2Q+ 'requires two sort operations per packet'.
        assert scheduler.sort_operations >= 2 * 100


class TestSCFQAndFBFQ:
    def test_scfq_virtual_time_is_monotone(self, rng):
        scheduler = build(SCFQScheduler)
        trace = poisson_trace(rng, 4, 200)
        tags = []
        result = simulate(scheduler, clone(trace))
        for packet in result.packets:
            tags.append(packet.finish_tag)
        # SCFQ service tags are non-decreasing (the monotone property the
        # paper's deferred marker deletion relies on).
        assert all(b >= a - 1e-9 for a, b in zip(tags, tags[1:]))

    def test_fbfq_frame_recalibration(self):
        scheduler = FBFQScheduler(RATE, frame_bits=8000)
        scheduler.add_flow(0, 0.9)
        scheduler.add_flow(1, 0.1)
        trace = [Packet(0, 1000, 0.0) for _ in range(10)]
        trace += [Packet(1, 1000, 0.05)]
        result = simulate(scheduler, trace)
        assert len(result.packets) == 11
