"""Property-based fairness tests across the scheduler families."""

import random

from hypothesis import given, settings, strategies as st

from repro.sched import (
    DRRScheduler,
    GPSFluidSimulator,
    Packet,
    WF2QScheduler,
    WFQScheduler,
    simulate,
)

RATE = 1e6


def random_trace(seed, flows, count):
    rng = random.Random(seed)
    trace = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(250.0)
        trace.append(
            Packet(
                flow_id=rng.randrange(flows),
                size_bytes=rng.choice([64, 576, 1500]),
                arrival_time=t,
            )
        )
    return trace


def clone(trace):
    return [
        Packet(p.flow_id, p.size_bytes, p.arrival_time, packet_id=p.packet_id)
        for p in trace
    ]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    weights=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=5
    ),
)
def test_pg_bound_property(seed, weights):
    """Parekh–Gallager holds for arbitrary weights and random traffic."""
    trace = random_trace(seed, len(weights), 150)
    scheduler = WFQScheduler(RATE)
    gps = GPSFluidSimulator(RATE)
    for flow_id, weight in enumerate(weights):
        scheduler.add_flow(flow_id, weight)
        gps.set_weight(flow_id, weight)
    result = simulate(scheduler, clone(trace))
    reference = gps.run(clone(trace))
    bound = 1500 * 8 / RATE
    for packet in result.packets:
        assert (
            packet.departure_time
            <= reference[packet.packet_id].departure_time + bound + 1e-9
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_wfq_and_wf2q_same_makespan(seed):
    """Both are work-conserving: identical busy periods."""
    trace = random_trace(seed, 3, 120)
    results = []
    for scheduler_cls in (WFQScheduler, WF2QScheduler):
        scheduler = scheduler_cls(RATE)
        for flow_id in range(3):
            scheduler.add_flow(flow_id, 1.0 / 3.0)
        results.append(simulate(scheduler, clone(trace)).finish_time)
    # WF2Q's eligibility slack can shift service instants by nanoseconds.
    assert abs(results[0] - results[1]) < 1e-6


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    flows=st.integers(min_value=2, max_value=6),
)
def test_drr_multiset_conservation(seed, flows):
    trace = random_trace(seed, flows, 150)
    scheduler = DRRScheduler(RATE)
    for flow_id in range(flows):
        scheduler.add_flow(flow_id, 1.0)
    result = simulate(scheduler, clone(trace))
    assert len(result.packets) == len(trace)
    assert sorted(p.packet_id for p in result.packets) == sorted(
        p.packet_id for p in trace
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_wfq_service_order_is_tag_order_within_backlog(seed):
    """While continuously backlogged, WFQ serves in finishing-tag order
    apart from arrivals that land mid-service."""
    trace = random_trace(seed, 4, 100)
    scheduler = WFQScheduler(RATE)
    for flow_id in range(4):
        scheduler.add_flow(flow_id, 0.25)
    result = simulate(scheduler, clone(trace))
    # The multiset departs completely and tags exist.
    assert all(p.finish_tag is not None for p in result.packets)
