"""Unit tests for the WFQ virtual-time engine (paper eq. (1))."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched.virtual_time import VirtualClock


class TestTagRules:
    def test_first_packet_starts_at_virtual_time(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        tags = clock.on_arrival(1, size_bits=100, arrival_time=0.0)
        assert tags.start_tag == 0.0
        assert tags.finish_tag == 100.0

    def test_back_to_back_packets_chain_finish_tags(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        clock.on_arrival(1, 100, 0.0)
        tags = clock.on_arrival(1, 100, 0.0)
        assert tags.start_tag == 100.0
        assert tags.finish_tag == 200.0

    def test_weight_divides_tag_increment(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 4.0)
        tags = clock.on_arrival(1, 100, 0.0)
        assert tags.finish_tag == 25.0

    def test_idle_flow_restarts_from_virtual_time(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        clock.register(2, 1.0)
        clock.on_arrival(1, 100, 0.0)
        # Flow 1 finishes GPS at t=1; by t=5 V has stopped at 100.
        tags = clock.on_arrival(2, 100, 5.0)
        assert tags.start_tag == 100.0


class TestEquation1:
    def test_next_departure_formula(self):
        """Next(t) = t + (F_min - V(t)) * sum(phi_busy) / rate."""
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        clock.register(2, 3.0)
        clock.on_arrival(1, 100, 0.0)  # F = 100
        clock.on_arrival(2, 100, 0.0)  # F = 33.33
        assert clock.minimum_finish_tag == pytest.approx(100.0 / 3.0)
        # busy weight 4, V=0: Next = 0 + 33.33 * 4 / 100 = 1.333
        assert clock.next_departure_time() == pytest.approx(4.0 / 3.0)

    def test_idle_system_has_no_next_departure(self):
        clock = VirtualClock(rate_bps=100.0)
        assert clock.next_departure_time() is None

    def test_departure_iteration_advances_virtual_time(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        clock.register(2, 3.0)
        clock.on_arrival(1, 100, 0.0)
        clock.on_arrival(2, 100, 0.0)
        # After flow 2's GPS departure (t=4/3) only flow 1 is busy, so V
        # accelerates: V(2) = 33.33 + (2 - 4/3) * 100 / 1 = 100.
        clock.advance_to(2.0)
        assert clock.virtual_time == pytest.approx(100.0)
        assert clock.busy_weight == pytest.approx(0.0)

    def test_virtual_time_slope_depends_on_busy_set(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 1.0)
        clock.register(2, 1.0)
        clock.on_arrival(1, 1000, 0.0)
        clock.on_arrival(2, 1000, 0.0)
        clock.advance_to(1.0)
        # Two equal busy flows: dV/dt = rate / 2.
        assert clock.virtual_time == pytest.approx(50.0)


class TestRobustness:
    def test_time_cannot_move_backwards(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(rate_bps=0)
        clock = VirtualClock()
        with pytest.raises(ConfigurationError):
            clock.register(1, 0.0)
        with pytest.raises(ConfigurationError):
            clock.on_arrival(1, 0, 0.0)

    def test_reset(self):
        clock = VirtualClock(rate_bps=100.0)
        clock.register(1, 2.0)
        clock.on_arrival(1, 100, 0.0)
        clock.reset()
        assert clock.virtual_time == 0.0
        assert clock.busy_weight == 0.0
        assert clock.weight_of(1) == 2.0  # weights survive

    def test_unregistered_flow_defaults_to_unit_weight(self):
        clock = VirtualClock(rate_bps=100.0)
        tags = clock.on_arrival(99, 100, 0.0)
        assert tags.finish_tag == 100.0
