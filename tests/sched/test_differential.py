"""Differential tests: independent implementations must agree.

Several pieces of the library compute the same mathematics through
different code paths; feeding them identical inputs is a powerful
cross-check:

* the GPS fluid simulator and the WFQ virtual clock both iterate
  eq. (1) — finish tags must match exactly;
* the WFQ scheduler with a heap tag store and with the hardware circuit
  at an ultra-fine quantum must produce near-identical schedules;
* H-PFQ with a flat one-level hierarchy must reduce to WF²Q+-like
  weighted sharing.
"""

import random

import pytest

from repro.net.hardware_store import HardwareTagStore
from repro.sched import (
    GPSFluidSimulator,
    HPFQScheduler,
    Packet,
    VirtualClock,
    WF2QPlusScheduler,
    WFQScheduler,
    simulate,
)

RATE = 1e6
WEIGHTS = (0.4, 0.3, 0.2, 0.1)


def random_trace(seed, count=250):
    rng = random.Random(seed)
    trace = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(250.0)
        trace.append(
            Packet(
                flow_id=rng.randrange(len(WEIGHTS)),
                size_bytes=rng.choice([64, 576, 1500]),
                arrival_time=t,
            )
        )
    return trace


def clone(trace):
    return [
        Packet(p.flow_id, p.size_bytes, p.arrival_time, packet_id=p.packet_id)
        for p in trace
    ]


class TestGpsVsVirtualClock:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_finish_tags_identical(self, seed):
        trace = random_trace(seed)
        clock = VirtualClock(RATE)
        gps = GPSFluidSimulator(RATE)
        for flow_id, weight in enumerate(WEIGHTS):
            clock.register(flow_id, weight)
            gps.set_weight(flow_id, weight)
        gps_tags = gps.finish_tags(clone(trace))
        for packet in trace:
            tags = clock.on_arrival(
                packet.flow_id, packet.size_bits, packet.arrival_time
            )
            assert tags.finish_tag == pytest.approx(
                gps_tags[packet.packet_id], rel=1e-9
            )


class TestHeapVsHardwareStore:
    def test_ultra_fine_quantum_matches_heap_schedule(self):
        """At a quantum far below any tag gap, the hardware store's
        schedule equals the heap's except for clamped inserts."""
        trace = random_trace(11, count=150)
        heap_scheduler = WFQScheduler(RATE)
        hw_scheduler = WFQScheduler(
            RATE,
            tag_store=HardwareTagStore(granularity=800.0, capacity=512),
        )
        for flow_id, weight in enumerate(WEIGHTS):
            heap_scheduler.add_flow(flow_id, weight)
            hw_scheduler.add_flow(flow_id, weight)
        heap_result = simulate(heap_scheduler, clone(trace))
        hw_result = simulate(hw_scheduler, clone(trace))
        heap_order = [p.packet_id for p in heap_result.packets]
        hw_order = [p.packet_id for p in hw_result.packets]
        agreement = sum(a == b for a, b in zip(heap_order, hw_order))
        assert agreement / len(heap_order) > 0.7
        # And identical per-flow FIFO regardless of quantum.
        for flow_id in range(len(WEIGHTS)):
            heap_flow = [
                p.packet_id for p in heap_result.packets if p.flow_id == flow_id
            ]
            hw_flow = [
                p.packet_id for p in hw_result.packets if p.flow_id == flow_id
            ]
            assert heap_flow == hw_flow


class TestHpfqReduction:
    def test_flat_hpfq_tracks_wf2qplus_shares(self):
        """A one-level H-PFQ is WF²Q+ over the same weights: long-run
        shares agree closely under saturation."""
        def shares(scheduler):
            trace = []
            for flow_id in range(len(WEIGHTS)):
                for _ in range(80):
                    trace.append(Packet(flow_id, 500, 0.0))
            result = simulate(scheduler, trace)
            horizon = result.finish_time / 2
            bits = {}
            for packet in result.packets:
                if packet.departure_time <= horizon:
                    bits[packet.flow_id] = (
                        bits.get(packet.flow_id, 0) + packet.size_bits
                    )
            total = sum(bits.values())
            return {f: b / total for f, b in bits.items()}

        hpfq = HPFQScheduler(RATE)
        reference = WF2QPlusScheduler(RATE)
        for flow_id, weight in enumerate(WEIGHTS):
            hpfq.add_flow(flow_id, weight)
            reference.add_flow(flow_id, weight)
        hpfq_shares = shares(hpfq)
        reference_shares = shares(reference)
        for flow_id in range(len(WEIGHTS)):
            assert hpfq_shares[flow_id] == pytest.approx(
                reference_shares[flow_id], abs=0.06
            )
