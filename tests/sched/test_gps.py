"""Unit tests for the fluid GPS reference simulator."""

import pytest

from repro.sched.gps import GPSFluidSimulator
from repro.sched.packet import Packet


def make(flow, size, t):
    return Packet(flow_id=flow, size_bytes=size, arrival_time=t)


class TestSingleFlow:
    def test_one_packet_gets_full_rate(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)  # 1000 bytes/s
        packet = make(1, 100, 0.0)
        results = gps.run([packet])
        departure = results[packet.packet_id]
        assert departure.departure_time == pytest.approx(0.1)

    def test_fifo_within_flow(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        first = make(1, 100, 0.0)
        second = make(1, 100, 0.0)
        results = gps.run([first, second])
        assert results[first.packet_id].departure_time == pytest.approx(0.1)
        assert results[second.packet_id].departure_time == pytest.approx(0.2)


class TestWeightedSharing:
    def test_equal_flows_share_equally(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        # Both served at half rate: both finish at 0.2 s.
        assert results[a.packet_id].departure_time == pytest.approx(0.2)
        assert results[b.packet_id].departure_time == pytest.approx(0.2)

    def test_weights_bias_completion(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.set_weight(1, 3.0)
        gps.set_weight(2, 1.0)
        a = make(1, 100, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        # Flow 1 at 3/4 rate finishes its 100 bytes first; flow 2 then
        # accelerates.
        assert (
            results[a.packet_id].departure_time
            < results[b.packet_id].departure_time
        )

    def test_departure_order_follows_finish_tags(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.set_weight(1, 1.0)
        gps.set_weight(2, 2.0)
        a = make(1, 200, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        assert (
            results[b.packet_id].finish_tag < results[a.packet_id].finish_tag
        )
        assert (
            results[b.packet_id].departure_time
            <= results[a.packet_id].departure_time
        )


class TestWorkConservation:
    def test_total_work_equals_capacity(self):
        """With a saturated link, the last fluid departure happens at
        exactly total_bits / rate."""
        gps = GPSFluidSimulator(rate_bps=8000.0)
        packets = [make(i % 3, 125, 0.0) for i in range(12)]
        results = gps.run(packets)
        last = max(d.departure_time for d in results.values())
        total_bits = 12 * 125 * 8
        assert last == pytest.approx(total_bits / 8000.0)

    def test_idle_gap_preserved(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        b = make(1, 100, 10.0)
        results = gps.run([a, b])
        assert results[b.packet_id].departure_time == pytest.approx(10.1)

    def test_finish_tags_helper(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        tags = gps.finish_tags([a])
        assert tags[a.packet_id] == pytest.approx(800.0)


class TestIncrementalCoreParity:
    """The streaming GpsAccrualCore is the batch simulator, refactored.

    The online SLO auditor's exact-reconciliation guarantee rests on
    the two producing bit-identical floats — pin it here.
    """

    def random_trace(self, seed, flows, count):
        import random

        rng = random.Random(seed)
        trace = []
        t = 0.0
        for _ in range(count):
            t += rng.expovariate(100.0)
            trace.append(
                make(rng.randrange(flows), rng.choice([64, 576, 1500]), t)
            )
        return trace

    @pytest.mark.parametrize("seed", [1, 42, 20060101])
    def test_streaming_matches_batch_exactly(self, seed):
        from repro.sched.gps import GpsAccrualCore

        weights = {0: 0.5, 1: 0.3, 2: 0.2}
        trace = self.random_trace(seed, len(weights), 150)

        batch = GPSFluidSimulator(rate_bps=1e6)
        for flow_id, weight in weights.items():
            batch.set_weight(flow_id, weight)
        reference = batch.run(list(trace))

        core = GpsAccrualCore(1e6, weights=weights)
        streamed = {}
        for packet in sorted(
            trace, key=lambda p: (p.arrival_time, p.packet_id)
        ):
            for packet_id, departure in core.arrive(
                packet.flow_id,
                packet.packet_id,
                packet.size_bits,
                packet.arrival_time,
            ):
                streamed[packet_id] = departure
        for packet_id, departure in core.finish():
            streamed[packet_id] = departure

        assert set(streamed) == set(reference)
        for packet_id, departure in streamed.items():
            # Exact float equality, not approx: same op order by design.
            assert (
                departure.departure_time
                == reference[packet_id].departure_time
            )
            assert departure.finish_tag == reference[packet_id].finish_tag

    def test_incremental_emission_is_causal(self):
        from repro.sched.gps import GpsAccrualCore

        core = GpsAccrualCore(8000.0)
        assert core.arrive(1, 0, 800, 0.0) == []
        # A later arrival past the first packet's fluid departure emits it.
        emitted = core.arrive(1, 1, 800, 1.0)
        assert [packet_id for packet_id, _ in emitted] == [0]
        assert emitted[0][1].departure_time == pytest.approx(0.1)
        assert core.backlog == 1
        drained = core.finish()
        assert [packet_id for packet_id, _ in drained] == [1]

    def test_rejects_time_travel(self):
        from repro.hwsim.errors import ConfigurationError
        from repro.sched.gps import GpsAccrualCore

        core = GpsAccrualCore(8000.0)
        core.arrive(1, 0, 800, 1.0)
        with pytest.raises(ConfigurationError):
            core.arrive(1, 1, 800, 0.5)

    def test_finish_is_idempotent(self):
        from repro.sched.gps import GpsAccrualCore

        core = GpsAccrualCore(8000.0)
        core.arrive(1, 0, 800, 0.0)
        assert len(core.finish()) == 1
        assert core.finish() == []

    def test_work_at_matches_curves(self):
        from repro.sched.gps import GpsAccrualCore

        core = GpsAccrualCore(8000.0)
        core.arrive(1, 0, 800, 0.0)
        core.arrive(2, 1, 800, 0.0)
        core.finish()
        # Equal weights, both backlogged: each accrues at half rate.
        assert core.work_at(1, 0.1) == pytest.approx(400.0)
