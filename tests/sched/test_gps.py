"""Unit tests for the fluid GPS reference simulator."""

import pytest

from repro.sched.gps import GPSFluidSimulator
from repro.sched.packet import Packet


def make(flow, size, t):
    return Packet(flow_id=flow, size_bytes=size, arrival_time=t)


class TestSingleFlow:
    def test_one_packet_gets_full_rate(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)  # 1000 bytes/s
        packet = make(1, 100, 0.0)
        results = gps.run([packet])
        departure = results[packet.packet_id]
        assert departure.departure_time == pytest.approx(0.1)

    def test_fifo_within_flow(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        first = make(1, 100, 0.0)
        second = make(1, 100, 0.0)
        results = gps.run([first, second])
        assert results[first.packet_id].departure_time == pytest.approx(0.1)
        assert results[second.packet_id].departure_time == pytest.approx(0.2)


class TestWeightedSharing:
    def test_equal_flows_share_equally(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        # Both served at half rate: both finish at 0.2 s.
        assert results[a.packet_id].departure_time == pytest.approx(0.2)
        assert results[b.packet_id].departure_time == pytest.approx(0.2)

    def test_weights_bias_completion(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.set_weight(1, 3.0)
        gps.set_weight(2, 1.0)
        a = make(1, 100, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        # Flow 1 at 3/4 rate finishes its 100 bytes first; flow 2 then
        # accelerates.
        assert (
            results[a.packet_id].departure_time
            < results[b.packet_id].departure_time
        )

    def test_departure_order_follows_finish_tags(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.set_weight(1, 1.0)
        gps.set_weight(2, 2.0)
        a = make(1, 200, 0.0)
        b = make(2, 100, 0.0)
        results = gps.run([a, b])
        assert (
            results[b.packet_id].finish_tag < results[a.packet_id].finish_tag
        )
        assert (
            results[b.packet_id].departure_time
            <= results[a.packet_id].departure_time
        )


class TestWorkConservation:
    def test_total_work_equals_capacity(self):
        """With a saturated link, the last fluid departure happens at
        exactly total_bits / rate."""
        gps = GPSFluidSimulator(rate_bps=8000.0)
        packets = [make(i % 3, 125, 0.0) for i in range(12)]
        results = gps.run(packets)
        last = max(d.departure_time for d in results.values())
        total_bits = 12 * 125 * 8
        assert last == pytest.approx(total_bits / 8000.0)

    def test_idle_gap_preserved(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        b = make(1, 100, 10.0)
        results = gps.run([a, b])
        assert results[b.packet_id].departure_time == pytest.approx(10.1)

    def test_finish_tags_helper(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        a = make(1, 100, 0.0)
        tags = gps.finish_tags([a])
        assert tags[a.packet_id] == pytest.approx(800.0)
