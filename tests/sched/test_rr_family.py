"""Tests for the round-robin family: WRR, DRR, MDRR, CBQ, SRR."""

import random

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched import (
    CBQScheduler,
    DRRScheduler,
    MDRRScheduler,
    Packet,
    SRRScheduler,
    WRRScheduler,
    simulate,
)

RATE = 1e6


def saturating_trace(flows, packets_per_flow, size_bytes=500):
    """Everything arrives at t=0: pure bandwidth-sharing test."""
    trace = []
    for flow_id in range(flows):
        for _ in range(packets_per_flow):
            trace.append(Packet(flow_id, size_bytes, 0.0))
    return trace


def delivered_bits_by_flow(result, horizon):
    bits = {}
    for packet in result.packets:
        if packet.departure_time <= horizon:
            bits[packet.flow_id] = bits.get(packet.flow_id, 0) + packet.size_bits
    return bits


class TestWRR:
    def test_equal_weights_equal_service(self):
        scheduler = WRRScheduler(RATE, mean_packet_bytes=500)
        for flow_id in range(4):
            scheduler.add_flow(flow_id, 1.0)
        result = simulate(scheduler, saturating_trace(4, 50))
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        values = list(bits.values())
        assert max(values) / min(values) < 1.3

    def test_weighted_slots(self):
        scheduler = WRRScheduler(RATE, mean_packet_bytes=500)
        scheduler.add_flow(0, 3.0)
        scheduler.add_flow(1, 1.0)
        result = simulate(scheduler, saturating_trace(2, 60))
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[0] / bits[1] == pytest.approx(3.0, rel=0.25)

    def test_wrr_is_size_blind(self):
        """The paper's criticism: WRR counts packets, so a flow sending
        large packets steals bandwidth from an equal-weight flow sending
        small ones."""
        scheduler = WRRScheduler(RATE, mean_packet_bytes=500)
        scheduler.add_flow(0, 1.0)
        scheduler.add_flow(1, 1.0)
        trace = [Packet(0, 1500, 0.0) for _ in range(40)]
        trace += [Packet(1, 100, 0.0) for _ in range(40)]
        result = simulate(scheduler, trace)
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        # Flow 0 receives ~15x the bandwidth despite equal weights.
        assert bits[0] / bits[1] > 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WRRScheduler(RATE, mean_packet_bytes=0)


class TestDRR:
    def test_drr_is_size_fair(self):
        """DRR fixes WRR: byte-accurate shares without mean-size input."""
        scheduler = DRRScheduler(RATE, quantum_bytes=1500)
        scheduler.add_flow(0, 1.0)
        scheduler.add_flow(1, 1.0)
        trace = [Packet(0, 1500, 0.0) for _ in range(40)]
        trace += [Packet(1, 100, 0.0) for _ in range(600)]
        result = simulate(scheduler, trace)
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[0] / bits[1] == pytest.approx(1.0, rel=0.2)

    def test_weighted_quantum(self):
        scheduler = DRRScheduler(RATE)
        scheduler.add_flow(0, 3.0)
        scheduler.add_flow(1, 1.0)
        result = simulate(scheduler, saturating_trace(2, 80))
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[0] / bits[1] == pytest.approx(3.0, rel=0.3)

    def test_small_quantum_accumulates(self):
        """A quantum below the packet size must still make progress."""
        scheduler = DRRScheduler(RATE, quantum_bytes=100)
        scheduler.add_flow(0, 1.0)
        result = simulate(scheduler, [Packet(0, 1500, 0.0)])
        assert len(result.packets) == 1

    def test_delay_grows_with_flow_count(self):
        """The paper's central RR criticism: a newly busy flow waits for
        the whole round, so worst-case delay scales with flow count."""

        def worst_delay(flows):
            scheduler = DRRScheduler(RATE)
            for flow_id in range(flows):
                scheduler.add_flow(flow_id, 1.0)
            trace = []
            for flow_id in range(flows):
                for _ in range(10):
                    trace.append(Packet(flow_id, 1500, 0.0))
            probe = Packet(flows - 1, 64, 0.0)
            result = simulate(scheduler, trace)
            last_per_flow = {
                fid: max(p.delay for p in pkts)
                for fid, pkts in result.by_flow().items()
            }
            return max(last_per_flow.values())

        assert worst_delay(32) > worst_delay(4) * 2


class TestMDRR:
    def test_priority_queue_gets_low_delay(self):
        scheduler = MDRRScheduler(RATE, priority_flow=0, strict=True)
        scheduler.add_flow(1, 1.0)
        scheduler.add_flow(2, 1.0)
        trace = [Packet(1, 1500, 0.0) for _ in range(20)]
        trace += [Packet(2, 1500, 0.0) for _ in range(20)]
        trace += [Packet(0, 100, 0.001)]  # VoIP packet arrives mid-burst
        result = simulate(scheduler, trace)
        voip = [p for p in result.packets if p.flow_id == 0][0]
        others = [p.delay for p in result.packets if p.flow_id != 0]
        assert voip.delay < sorted(others)[len(others) // 2]

    def test_alternate_mode_shares_with_drr(self):
        scheduler = MDRRScheduler(RATE, priority_flow=0, strict=False)
        scheduler.add_flow(1, 1.0)
        trace = [Packet(0, 500, 0.0) for _ in range(40)]
        trace += [Packet(1, 500, 0.0) for _ in range(40)]
        result = simulate(scheduler, trace)
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[1] > 0  # DRR side is not starved

    def test_cannot_register_priority_flow_twice(self):
        scheduler = MDRRScheduler(RATE, priority_flow=0)
        with pytest.raises(ConfigurationError):
            scheduler.add_flow(0, 1.0)


class TestCBQ:
    def build(self):
        scheduler = CBQScheduler(RATE)
        scheduler.add_class("gold", 3.0)
        scheduler.add_class("bronze", 1.0)
        scheduler.add_flow_to_class(0, "gold")
        scheduler.add_flow_to_class(1, "bronze")
        return scheduler

    def test_class_weights_respected(self):
        scheduler = self.build()
        result = simulate(scheduler, saturating_trace(2, 80))
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[0] / bits[1] == pytest.approx(3.0, rel=0.35)

    def test_idle_class_bandwidth_is_borrowed(self):
        scheduler = self.build()
        trace = [Packet(1, 500, 0.0) for _ in range(40)]  # bronze only
        result = simulate(scheduler, trace)
        # Work conservation: bronze gets the whole link.
        assert result.finish_time == pytest.approx(
            40 * 500 * 8 / RATE, rel=1e-6
        )

    def test_unclassed_flow_rejected(self):
        scheduler = self.build()
        with pytest.raises(ConfigurationError):
            simulate(scheduler, [Packet(9, 100, 0.0)])

    def test_duplicate_class_rejected(self):
        scheduler = self.build()
        with pytest.raises(ConfigurationError):
            scheduler.add_class("gold", 1.0)


class TestSRR:
    def test_stratification_by_weight(self):
        scheduler = SRRScheduler(RATE)
        scheduler.add_flow(0, 0.5)  # class 1
        scheduler.add_flow(1, 0.25)  # class 2
        scheduler.add_flow(2, 0.05)  # class 5
        assert scheduler._flow_class[0] == 1
        assert scheduler._flow_class[1] == 2
        assert scheduler._flow_class[2] == 5

    def test_heavy_class_served_more_often(self):
        scheduler = SRRScheduler(RATE)
        scheduler.add_flow(0, 0.5)
        scheduler.add_flow(1, 0.0625)  # class 4: 1 slot per 16
        result = simulate(scheduler, saturating_trace(2, 60))
        bits = delivered_bits_by_flow(result, result.finish_time / 2)
        assert bits[0] / bits[1] > 3.0

    def test_all_packets_delivered(self, rng):
        scheduler = SRRScheduler(RATE)
        for flow_id, weight in enumerate((0.5, 0.25, 0.125, 0.0625)):
            scheduler.add_flow(flow_id, weight)
        trace = []
        t = 0.0
        for _ in range(200):
            t += rng.expovariate(300.0)
            trace.append(Packet(rng.randrange(4), 500, t))
        result = simulate(scheduler, trace)
        assert len(result.packets) == 200

    def test_weight_below_stratification_range_rejected(self):
        scheduler = SRRScheduler(RATE, max_classes=4)
        with pytest.raises(ConfigurationError):
            scheduler.add_flow(0, 0.001)
