"""Tests for the single-link simulation loop itself."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched import Packet, WFQScheduler, simulate
from repro.sched.base import PacketScheduler


class TestSimulateLoop:
    def test_empty_trace(self):
        scheduler = WFQScheduler(1e6)
        result = simulate(scheduler, [])
        assert result.packets == []
        assert result.finish_time == 0.0

    def test_single_packet_timing(self):
        scheduler = WFQScheduler(1e6)
        scheduler.add_flow(0, 1.0)
        result = simulate(scheduler, [Packet(0, 125, 1.0)])
        # 125 bytes = 1000 bits at 1 Mb/s = 1 ms
        assert result.packets[0].departure_time == pytest.approx(1.001)

    def test_non_preemptive_link(self):
        """A long packet in service delays a later-arriving short one."""
        scheduler = WFQScheduler(1e6)
        scheduler.add_flow(0, 0.5)
        scheduler.add_flow(1, 0.5)
        long_packet = Packet(0, 12500, 0.0)  # 100 ms of service
        short_packet = Packet(1, 125, 0.001)
        result = simulate(scheduler, [long_packet, short_packet])
        assert short_packet.departure_time >= long_packet.departure_time

    def test_idle_gaps_respected(self):
        scheduler = WFQScheduler(1e6)
        scheduler.add_flow(0, 1.0)
        trace = [Packet(0, 125, 0.0), Packet(0, 125, 5.0)]
        result = simulate(scheduler, trace)
        assert result.packets[1].departure_time == pytest.approx(5.001)

    def test_unsorted_trace_is_sorted_internally(self):
        scheduler = WFQScheduler(1e6)
        scheduler.add_flow(0, 1.0)
        trace = [Packet(0, 125, 2.0), Packet(0, 125, 1.0)]
        result = simulate(scheduler, trace)
        assert len(result.packets) == 2
        assert result.packets[0].arrival_time == 1.0

    def test_by_flow_grouping(self):
        scheduler = WFQScheduler(1e6)
        scheduler.add_flow(0, 0.5)
        scheduler.add_flow(1, 0.5)
        trace = [Packet(0, 125, 0.0), Packet(1, 125, 0.0), Packet(0, 125, 0.0)]
        result = simulate(scheduler, trace)
        grouped = result.by_flow()
        assert len(grouped[0]) == 2
        assert len(grouped[1]) == 1

    def test_broken_scheduler_detected(self):
        class Stuck(PacketScheduler):
            name = "stuck"

            def enqueue(self, packet, now):
                self.flows.get(packet.flow_id).queue.append(packet)

            def select_next(self, now):
                return None  # backlogged forever

        with pytest.raises(ConfigurationError):
            simulate(Stuck(1e6), [Packet(0, 125, 0.0)])

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            WFQScheduler(0.0)

    def test_transmission_time(self):
        scheduler = WFQScheduler(8e6)
        assert scheduler.transmission_time(Packet(0, 1000, 0.0)) == pytest.approx(
            1e-3
        )
