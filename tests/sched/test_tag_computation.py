"""Tests for the fixed-point WFQ tag-computation circuit (ref. [8])."""

import random

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched.tag_computation import FixedPointVirtualClock


class TestBasicDatapath:
    def test_single_packet(self):
        clock = FixedPointVirtualClock(rate_bps=100.0, frac_bits=8)
        clock.register(1, 1.0)
        tags = clock.on_arrival(1, size_bits=100, arrival_time=0.0)
        assert tags.start_units == 0
        # 100 bits x reciprocal(1.0) = 100 x 256 units.
        assert tags.finish_units == 100 * 256

    def test_reciprocal_weight_multiply(self):
        clock = FixedPointVirtualClock(rate_bps=100.0, frac_bits=8)
        clock.register(1, 4.0)
        tags = clock.on_arrival(1, 100, 0.0)
        # 100 / 4 = 25 real units = 6400 fixed units.
        assert clock.to_real(tags.finish_units) == pytest.approx(25.0)

    def test_back_to_back_chain(self):
        clock = FixedPointVirtualClock(rate_bps=100.0, frac_bits=8)
        clock.register(1, 1.0)
        first = clock.on_arrival(1, 100, 0.0)
        second = clock.on_arrival(1, 100, 0.0)
        assert second.start_units == first.finish_units

    def test_tags_are_monotone_per_session(self):
        rng = random.Random(2)
        clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=4)
        clock.register(1, 0.3)
        t = 0.0
        last = -1
        for _ in range(200):
            t += rng.expovariate(2000.0)
            tags = clock.on_arrival(1, rng.choice([512, 4608, 12000]), t)
            assert tags.finish_units > last
            last = tags.finish_units

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPointVirtualClock(frac_bits=-1)
        with pytest.raises(ConfigurationError):
            FixedPointVirtualClock(rate_bps=0.0)
        clock = FixedPointVirtualClock(frac_bits=2)
        with pytest.raises(ConfigurationError):
            clock.register(1, 0.0)
        with pytest.raises(ConfigurationError):
            clock.register(1, 100.0)  # reciprocal rounds to zero
        with pytest.raises(ConfigurationError):
            clock.max_error_units()  # tracking disabled


class TestPrecision:
    def run_mix(self, frac_bits, packets=1500, seed=1):
        rng = random.Random(seed)
        clock = FixedPointVirtualClock(
            rate_bps=1e6, frac_bits=frac_bits, track_error=True
        )
        for flow, weight in enumerate((0.4, 0.3, 0.2, 0.1)):
            clock.register(flow, weight)
        t = 0.0
        for _ in range(packets):
            t += rng.expovariate(3000.0)
            clock.on_arrival(
                rng.randrange(4), rng.choice([64, 576, 1500]) * 8, t
            )
        return clock

    def test_error_shrinks_with_precision(self):
        errors = [
            self.run_mix(bits).max_error_units() / (1 << bits)
            for bits in (2, 6, 10)
        ]
        assert errors[0] > 4 * errors[1] > 16 * errors[2]

    def test_rounding_produces_duplicates(self):
        """Section III-C's premise: rounded-off computation can assign
        the same finishing tag to packets of different sessions —
        equal-weight CBR sessions arriving together collide exactly."""
        clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=4)
        clock.register(1, 0.5)
        clock.register(2, 0.5)
        for step in range(50):
            t = step * 1e-3
            clock.on_arrival(1, 640, t)
            clock.on_arrival(2, 640, t)
        assert clock.duplicate_tags > 0

    def test_zero_increment_clamped(self):
        """A tiny packet on a heavy weight still advances the tag."""
        clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=0)
        clock.register(1, 1.0)
        first = clock.on_arrival(1, 1, 0.0)
        second = clock.on_arrival(1, 1, 0.0)
        assert second.finish_units > first.finish_units


class TestIntegrationWithSortCircuit:
    def test_fixed_point_tags_feed_the_hardware_store(self):
        """End-to-end Fig. 1 path with hardware arithmetic everywhere:
        fixed-point tag computation -> quantized sort/retrieve."""
        from repro.net.hardware_store import HardwareTagStore

        rng = random.Random(3)
        clock = FixedPointVirtualClock(rate_bps=1e6, frac_bits=8)
        for flow, weight in enumerate((0.5, 0.3, 0.2)):
            clock.register(flow, weight)
        store = HardwareTagStore(granularity=2**8 * 4000.0, capacity=256)
        t = 0.0
        served = []
        for step in range(600):
            t += rng.expovariate(2500.0)
            flow = rng.randrange(3)
            tags = clock.on_arrival(flow, rng.choice([512, 4608]), t)
            store.push(float(tags.finish_units), flow)
            if len(store) > 16:
                served.append(store.pop_min()[0])
        store.circuit.check_invariants()
        assert len(served) > 500
