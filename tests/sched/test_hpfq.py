"""Tests for hierarchical packet fair queueing (ref. [6])."""

from collections import Counter

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched import HPFQScheduler, Packet, simulate


def saturate(scheduler, flows, count=200, size=500):
    for flow_id in flows:
        for _ in range(count):
            scheduler.enqueue(Packet(flow_id, size, 0.0), 0.0)


def serve_counts(scheduler, services):
    order = [scheduler.select_next(0.0).flow_id for _ in range(services)]
    return Counter(order)


class TestHierarchyConstruction:
    def test_classes_and_flows(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.add_class("org", weight=0.5)
        scheduler.attach_flow(1, parent="org")
        assert 1 in scheduler._leaves

    def test_duplicate_class_rejected(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.add_class("org")
        with pytest.raises(ConfigurationError):
            scheduler.add_class("org")

    def test_unknown_parent_rejected(self):
        scheduler = HPFQScheduler(1e6)
        with pytest.raises(ConfigurationError):
            scheduler.add_class("x", parent="nope")
        with pytest.raises(ConfigurationError):
            scheduler.attach_flow(1, parent="nope")

    def test_leaf_cannot_parent(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.attach_flow(1)
        with pytest.raises(ConfigurationError):
            scheduler.add_class("x", parent="flow:1")

    def test_duplicate_flow_rejected(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.attach_flow(1)
        with pytest.raises(ConfigurationError):
            scheduler.attach_flow(1)

    def test_unattached_flow_rejected_at_enqueue(self):
        scheduler = HPFQScheduler(1e6)
        with pytest.raises(ConfigurationError):
            scheduler.enqueue(Packet(9, 100, 0.0), 0.0)


class TestFlatFairness:
    def test_flat_hierarchy_matches_weights(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.add_flow(0, 0.75)
        scheduler.add_flow(1, 0.25)
        saturate(scheduler, (0, 1))
        counts = serve_counts(scheduler, 200)
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.2)


class TestNestedGuarantees:
    def build(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.add_class("org_a", weight=0.9)
        scheduler.add_class("org_b", weight=0.1)
        scheduler.attach_flow(0, parent="org_a", weight=0.75)
        scheduler.attach_flow(1, parent="org_a", weight=0.25)
        scheduler.attach_flow(2, parent="org_b", weight=1.0)
        return scheduler

    def test_two_level_shares(self):
        scheduler = self.build()
        saturate(scheduler, (0, 1, 2), count=400)
        counts = serve_counts(scheduler, 600)
        org_a = counts[0] + counts[1]
        assert org_a / counts[2] == pytest.approx(9.0, rel=0.25)
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.25)

    def test_idle_sibling_capacity_is_inherited(self):
        """When org_b is idle, its share flows to org_a's flows in *their*
        ratio — the link-sharing semantics CBQ only approximates."""
        scheduler = self.build()
        saturate(scheduler, (0, 1), count=300)
        counts = serve_counts(scheduler, 300)
        assert counts[2] == 0
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.25)

    def test_intra_class_isolation(self):
        """A misbehaving sibling inside org_a cannot touch org_b's 10%."""
        scheduler = self.build()
        saturate(scheduler, (0,), count=800)  # flow 0 floods
        saturate(scheduler, (2,), count=100)
        counts = serve_counts(scheduler, 500)
        assert counts[2] >= 40  # ~10% of 500, quantization slack

    def test_full_simulation_loop(self):
        scheduler = self.build()
        trace = []
        for flow_id in range(3):
            for _ in range(60):
                trace.append(Packet(flow_id, 500, 0.0))
        result = simulate(scheduler, trace)
        assert len(result.packets) == 180
        for packet in result.packets:
            assert packet.finish_tag is not None


class TestThreeLevels:
    def test_deep_hierarchy(self):
        scheduler = HPFQScheduler(1e6)
        scheduler.add_class("isp", weight=1.0)
        scheduler.add_class("business", parent="isp", weight=0.8)
        scheduler.add_class("residential", parent="isp", weight=0.2)
        scheduler.attach_flow(0, parent="business", weight=1.0)
        scheduler.attach_flow(1, parent="residential", weight=1.0)
        saturate(scheduler, (0, 1), count=300)
        counts = serve_counts(scheduler, 300)
        assert counts[0] / counts[1] == pytest.approx(4.0, rel=0.3)
