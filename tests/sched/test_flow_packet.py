"""Tests for the packet and flow primitives."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.sched.flow import Flow, FlowTable
from repro.sched.packet import Packet


class TestPacket:
    def test_size_bits(self):
        assert Packet(0, 125, 0.0).size_bits == 1000

    def test_unique_ids(self):
        a = Packet(0, 100, 0.0)
        b = Packet(0, 100, 0.0)
        assert a.packet_id != b.packet_id

    def test_explicit_id_preserved(self):
        packet = Packet(0, 100, 0.0, packet_id=12345)
        assert packet.packet_id == 12345

    def test_delay_requires_departure(self):
        packet = Packet(0, 100, 1.0)
        assert packet.delay is None
        packet.departure_time = 3.5
        assert packet.delay == pytest.approx(2.5)

    def test_repr_is_informative(self):
        text = repr(Packet(7, 100, 0.25))
        assert "flow=7" in text
        assert "100B" in text


class TestFlow:
    def test_backlog_and_head(self):
        flow = Flow(flow_id=1, weight=0.5)
        assert not flow.backlogged
        assert flow.head is None
        packet = Packet(1, 100, 0.0)
        flow.queue.append(packet)
        assert flow.backlogged
        assert flow.head is packet

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            Flow(flow_id=1, weight=0.0)


class TestFlowTable:
    def test_add_and_get(self):
        table = FlowTable()
        flow = table.add(1, 0.5)
        assert table.get(1) is flow
        assert 1 in table
        assert len(table) == 1

    def test_duplicate_rejected(self):
        table = FlowTable()
        table.add(1)
        with pytest.raises(ConfigurationError):
            table.add(1)

    def test_get_auto_registers(self):
        table = FlowTable()
        flow = table.get(9)
        assert flow.weight == 1.0
        assert 9 in table

    def test_total_and_backlogged_weight(self):
        table = FlowTable()
        table.add(1, 0.6)
        table.add(2, 0.4)
        assert table.total_weight == pytest.approx(1.0)
        assert table.backlogged_weight == 0.0
        table.get(1).queue.append(Packet(1, 100, 0.0))
        assert table.backlogged_weight == pytest.approx(0.6)

    def test_backlogged_flows_iterator(self):
        table = FlowTable()
        table.add(1)
        table.add(2)
        table.get(2).queue.append(Packet(2, 100, 0.0))
        backlogged = list(table.backlogged_flows())
        assert len(backlogged) == 1
        assert backlogged[0].flow_id == 2

    def test_guaranteed_rate_stored(self):
        table = FlowTable()
        flow = table.add(1, 0.5, guaranteed_rate_bps=2e6)
        assert flow.guaranteed_rate_bps == 2e6
