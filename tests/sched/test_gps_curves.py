"""Tests for the GPS fluid service curves."""

import pytest

from repro.sched.gps import GPSFluidSimulator
from repro.sched.packet import Packet


def make(flow, size, t, pid=None):
    kwargs = {"packet_id": pid} if pid is not None else {}
    return Packet(flow, size, t, **kwargs)


class TestServiceCurves:
    def test_single_flow_linear_ramp(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.run([make(1, 100, 0.0)])  # 800 bits at full rate
        assert gps.work_at(1, 0.0) == pytest.approx(0.0)
        assert gps.work_at(1, 0.05) == pytest.approx(400.0)
        assert gps.work_at(1, 0.1) == pytest.approx(800.0)
        assert gps.work_at(1, 5.0) == pytest.approx(800.0)  # flat after

    def test_two_flows_half_rate_each(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.run([make(1, 100, 0.0), make(2, 100, 0.0)])
        assert gps.work_at(1, 0.1) == pytest.approx(400.0)
        assert gps.work_at(2, 0.1) == pytest.approx(400.0)

    def test_rate_accelerates_when_competitor_finishes(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.set_weight(1, 3.0)
        gps.set_weight(2, 1.0)
        gps.run([make(1, 100, 0.0), make(2, 100, 0.0)])
        # Flow 1 (3/4 rate) finishes at 800/(6000) = 0.1333 s; flow 2 had
        # 2000 b/s until then, full rate after.
        at_finish = gps.work_at(2, 800.0 / 6000.0)
        assert at_finish == pytest.approx(2000.0 * 800.0 / 6000.0, rel=1e-6)
        assert gps.work_at(2, 0.2) > at_finish

    def test_idle_period_is_flat(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.run([make(1, 100, 0.0), make(1, 100, 10.0)])
        assert gps.work_at(1, 0.1) == pytest.approx(800.0)
        assert gps.work_at(1, 5.0) == pytest.approx(800.0)  # idle gap
        assert gps.work_at(1, 10.05) == pytest.approx(1200.0)

    def test_unknown_flow_is_zero(self):
        gps = GPSFluidSimulator(rate_bps=8000.0)
        gps.run([make(1, 100, 0.0)])
        assert gps.work_at(99, 1.0) == 0.0

    def test_total_work_conserved(self):
        """Sum of all curves at the end equals total offered bits."""
        gps = GPSFluidSimulator(rate_bps=8000.0)
        packets = [make(i % 3, 125, 0.01 * i) for i in range(15)]
        gps.run(packets)
        total = sum(gps.work_at(flow, 100.0) for flow in range(3))
        assert total == pytest.approx(15 * 1000.0, rel=1e-9)
