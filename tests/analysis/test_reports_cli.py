"""Tests for the artifact report generators and the CLI."""

import pytest

from repro.analysis import reports
from repro.cli import ARTIFACTS, build_parser, main, run_artifact


class TestReports:
    def test_table1_mentions_every_method(self):
        text = reports.table1(populations=(64,))
        for method in ("multibit_tree", "binary_cam", "tcam", "binning"):
            assert method in text

    def test_table2_shape(self):
        text = reports.table2()
        assert "Clock (MHz)" in text

    def test_fig7_and_fig8(self):
        assert "unit-gate delays" in reports.fig7()
        assert "LUTs" in reports.fig8()

    def test_fig6_renders_windows(self):
        text = reports.fig6(windows=4)
        assert "w0" in text

    def test_throughput_numbers(self):
        text = reports.throughput()
        assert "35.8 M" in text
        assert "40" in text

    def test_qos_covers_policies(self):
        text = reports.qos()
        assert "wfq" in text and "drr" in text
        assert "n/a" in text  # untag-based policy has no inversion count

    def test_memory_and_shapes(self):
        assert "QDRII" in reports.memory()
        assert "3 x 4" in reports.shapes()

    def test_demo_asserts_sortedness(self):
        text = reports.demo()
        assert "sorted order" in text

    def test_fairness_shows_both_policies(self):
        text = reports.fairness()
        assert "wfq" in text and "wf2q" in text

    def test_e2e_shows_hop_sweep(self):
        text = reports.e2e()
        assert "PG bound" in text


class TestCli:
    def test_every_artifact_registered_runs(self):
        # Just the fast ones directly; table1/qos are covered above.
        for name in ("table2", "fig7", "fig8", "memory", "shapes", "demo"):
            assert run_artifact(name)

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_single_artifact_command(self, capsys):
        assert main(["demo"]) == 0
        assert "sorted order" in capsys.readouterr().out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_artifact_table_is_consistent(self):
        for name, (generator, description) in ARTIFACTS.items():
            assert callable(generator)
            assert description
