"""Tests for the Fig. 6 tag-distribution profiler."""

import random

import pytest

from repro.analysis.distributions import (
    TagDistributionProfiler,
    mean_drift_per_window,
    render_windows,
)
from repro.hwsim.errors import ConfigurationError


class TestProfiler:
    def test_windows_partition_time(self):
        profiler = TagDistributionProfiler(window_s=1.0)
        profiler.record(0.5, 10.0)
        profiler.record(1.5, 20.0)
        profiler.record(1.9, 30.0)
        profiles = profiler.profiles()
        assert [p.window_index for p in profiles] == [0, 1]
        assert profiles[1].count == 2

    def test_statistics(self):
        profiler = TagDistributionProfiler(window_s=10.0)
        for tag in (10.0, 20.0, 30.0):
            profiler.record(0.0, tag)
        profile = profiler.profiles()[0]
        assert profile.mean == pytest.approx(20.0)
        assert profile.minimum == 10.0
        assert profile.maximum == 30.0
        assert profile.spread == 20.0
        assert profile.skewness == pytest.approx(0.0, abs=1e-9)

    def test_histogram_sums_to_count(self):
        rng = random.Random(1)
        profiler = TagDistributionProfiler(window_s=1.0, histogram_bins=8)
        for _ in range(100):
            profiler.record(0.5, rng.gauss(50, 10))
        profile = profiler.profiles()[0]
        assert sum(profile.histogram) == 100

    def test_skewness_sign(self):
        """A VoIP-like left-weighted profile has positive skew (mass near
        the minimum, tail to the right)."""
        profiler = TagDistributionProfiler(window_s=1.0)
        rng = random.Random(2)
        for _ in range(500):
            profiler.record(0.1, rng.expovariate(1.0))
        assert profiler.profiles()[0].skewness > 0.5

    def test_empty(self):
        profiler = TagDistributionProfiler(window_s=1.0)
        assert profiler.profiles() == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TagDistributionProfiler(window_s=0.0)
        with pytest.raises(ConfigurationError):
            TagDistributionProfiler(window_s=1.0, histogram_bins=1)


class TestDrift:
    def test_forward_drift_detected(self):
        """Fig. 6's arrow: the distribution moves forward over time."""
        profiler = TagDistributionProfiler(window_s=1.0)
        rng = random.Random(3)
        for step in range(300):
            t = step * 0.01
            profiler.record(t, 100.0 * t + rng.gauss(0, 5))
        drift = mean_drift_per_window(profiler.profiles())
        assert drift is not None
        assert drift > 0

    def test_drift_needs_two_windows(self):
        profiler = TagDistributionProfiler(window_s=10.0)
        profiler.record(0.0, 1.0)
        assert mean_drift_per_window(profiler.profiles()) is None


class TestRendering:
    def test_render_contains_windows(self):
        profiler = TagDistributionProfiler(window_s=1.0)
        profiler.record(0.5, 10.0)
        profiler.record(1.5, 20.0)
        text = render_windows(profiler.profiles())
        assert "FIG. 6" in text
        assert "w0" in text
        assert "w1" in text
