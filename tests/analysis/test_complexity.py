"""Tests for the Table I measurement harness."""

import pytest

from repro.analysis.complexity import (
    MethodMeasurement,
    measure_all,
    measure_method,
    render_table1,
    scaling_exponent,
)
from repro.baselines import (
    BinaryCAMQueue,
    MultiBitTreeQueue,
    SortedLinkedListQueue,
    TernaryCAMQueue,
)
from repro.hwsim.errors import ConfigurationError


class TestMeasureMethod:
    def test_measures_worst_and_average(self):
        queue = SortedLinkedListQueue()
        measurement = measure_method(queue, population=64, tag_range=4096)
        assert measurement.method == "sorted_list"
        assert measurement.worst_insert > 0
        assert measurement.average_insert > 0
        assert measurement.population == 64

    def test_worst_total_uses_binding_operation(self):
        sort_side = MethodMeasurement(
            method="x",
            model="sort",
            complexity="",
            population=1,
            worst_insert=10,
            worst_extract=2,
            average_insert=1,
            average_extract=1,
        )
        search_side = MethodMeasurement(
            method="x",
            model="search",
            complexity="",
            population=1,
            worst_insert=2,
            worst_extract=10,
            average_insert=1,
            average_extract=1,
        )
        assert sort_side.worst_total == 10
        assert search_side.worst_total == 10

    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            measure_method(
                SortedLinkedListQueue(), population=0, tag_range=16
            )


class TestScalingSplit:
    """The qualitative split of Table I: N-dependent vs N-independent."""

    def measure_at(self, factory, populations):
        return [
            measure_method(factory(), population=n, tag_range=4096, seed=1)
            for n in populations
        ]

    def test_sorted_list_scales_linearly(self):
        measurements = self.measure_at(
            SortedLinkedListQueue, (128, 512, 2048)
        )
        assert scaling_exponent(measurements) > 0.6

    def test_tree_is_population_independent(self):
        measurements = self.measure_at(
            lambda: MultiBitTreeQueue(capacity=4096), (128, 512, 2048)
        )
        assert scaling_exponent(measurements) < 0.2

    def test_tcam_is_population_independent(self):
        measurements = self.measure_at(
            lambda: TernaryCAMQueue(word_bits=12), (128, 512, 2048)
        )
        assert scaling_exponent(measurements) < 0.2

    def test_tree_beats_cam_absolutely(self):
        tree = measure_method(
            MultiBitTreeQueue(capacity=4096), population=1024, tag_range=4096
        )
        cam = measure_method(
            BinaryCAMQueue(tag_range=4096), population=1024, tag_range=4096
        )
        assert tree.worst_total < cam.worst_total

    def test_scaling_exponent_needs_two_points(self):
        single = measure_method(
            SortedLinkedListQueue(), population=16, tag_range=64
        )
        with pytest.raises(ConfigurationError):
            scaling_exponent([single])


class TestMeasureAll:
    def test_all_methods_all_populations(self):
        factories = {
            "sorted_list": SortedLinkedListQueue,
            "tcam": lambda: TernaryCAMQueue(word_bits=12),
        }
        measurements = measure_all(factories, populations=(32, 64))
        assert len(measurements) == 4

    def test_render(self):
        factories = {"sorted_list": SortedLinkedListQueue}
        text = render_table1(measure_all(factories, populations=(32,)))
        assert "TABLE I" in text
        assert "sorted_list" in text
