"""Tests for the sweep utilities."""

import pytest

from repro.analysis.sweeps import (
    SweepPoint,
    crossover,
    geometric_grid,
    monotone_nondecreasing,
    monotone_nonincreasing,
    render_series,
    sweep,
)
from repro.hwsim.errors import ConfigurationError


def points(values):
    return [SweepPoint(parameter=i, value=v) for i, v in enumerate(values)]


class TestSweep:
    def test_evaluates_in_order(self):
        result = sweep([1, 2, 3], lambda p: p * 10)
        assert [(p.parameter, p.value) for p in result] == [
            (1, 10),
            (2, 20),
            (3, 30),
        ]


class TestMonotone:
    def test_nonincreasing(self):
        assert monotone_nonincreasing(points([5, 4, 4, 2]))
        assert not monotone_nonincreasing(points([5, 6]))
        assert monotone_nonincreasing(points([5, 5.5]), slack=1.0)

    def test_nondecreasing(self):
        assert monotone_nondecreasing(points([1, 2, 2, 9]))
        assert not monotone_nondecreasing(points([3, 1]))


class TestCrossover:
    def test_crossover_point(self):
        a = points([1, 2, 8, 9])
        b = points([5, 5, 5, 5])
        assert crossover(a, b) == 2  # A wins at 0, 1; loses from 2

    def test_always_wins(self):
        assert crossover(points([1, 1]), points([5, 5])) == float("inf")

    def test_never_wins(self):
        assert crossover(points([9, 9]), points([5, 5])) == float("-inf")

    def test_mismatched_grid(self):
        a = [SweepPoint(1, 1.0)]
        b = [SweepPoint(2, 1.0)]
        with pytest.raises(ConfigurationError):
            crossover(a, b)


class TestGrid:
    def test_geometric_grid_endpoints(self):
        grid = geometric_grid(1.0, 100.0, 3)
        assert grid[0] == pytest.approx(1.0)
        assert grid[1] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_grid(0.0, 10.0, 3)
        with pytest.raises(ConfigurationError):
            geometric_grid(1.0, 10.0, 1)


class TestRender:
    def test_render_series(self):
        series = {"a": points([1.0, 2.0]), "b": points([3.0, 4.0])}
        text = render_series("TITLE", series, unit="ns")
        assert "TITLE" in text
        assert "a" in text and "b" in text
        assert "ns" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("t", {})
