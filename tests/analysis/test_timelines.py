"""Tests for timeline analysis."""

import pytest

from repro.analysis.timelines import (
    backlog_series,
    busy_periods,
    interleaving_index,
    peak_backlog,
    service_timeline,
    utilization,
)
from repro.sched import DRRScheduler, Packet, WFQScheduler, simulate
from repro.sched.base import SimulationResult


def departed(flow, size, arrive, depart):
    packet = Packet(flow, size, arrive)
    packet.departure_time = depart
    return packet


class TestBusyPeriods:
    def test_single_busy_period(self):
        result = SimulationResult(
            packets=[
                departed(0, 125, 0.0, 1.0),
                departed(0, 125, 0.5, 2.0),
            ],
            finish_time=2.0,
        )
        periods = busy_periods(result)
        assert len(periods) == 1
        assert periods[0].packets == 2
        assert periods[0].end == 2.0

    def test_idle_gap_splits_periods(self):
        result = SimulationResult(
            packets=[
                departed(0, 125, 0.0, 1.0),
                departed(0, 125, 5.0, 6.0),
            ],
            finish_time=6.0,
        )
        periods = busy_periods(result)
        assert len(periods) == 2
        assert periods[0].duration == pytest.approx(1.0)

    def test_empty_result(self):
        assert busy_periods(SimulationResult()) == []


class TestBacklog:
    def test_step_series(self):
        result = SimulationResult(
            packets=[
                departed(0, 125, 0.0, 2.0),
                departed(0, 125, 1.0, 3.0),
            ],
            finish_time=3.0,
        )
        series = backlog_series(result)
        assert series == [(0.0, 1), (1.0, 2), (2.0, 1), (3.0, 0)]
        assert peak_backlog(result) == 2

    def test_bits_mode(self):
        result = SimulationResult(
            packets=[departed(0, 125, 0.0, 1.0)], finish_time=1.0
        )
        assert peak_backlog(result, in_bits=True) == 1000

    def test_simultaneous_events_collapse(self):
        result = SimulationResult(
            packets=[
                departed(0, 125, 0.0, 1.0),
                departed(1, 125, 0.0, 2.0),
            ],
            finish_time=2.0,
        )
        series = backlog_series(result)
        assert series[0] == (0.0, 2)


class TestDerivedMetrics:
    def make_run(self, scheduler_cls):
        scheduler = scheduler_cls(1e6)
        scheduler.add_flow(0, 0.5)
        scheduler.add_flow(1, 0.5)
        trace = []
        for flow_id in (0, 1):
            for _ in range(40):
                trace.append(Packet(flow_id, 500, 0.0))
        return simulate(scheduler, trace)

    def test_saturated_run_is_fully_utilized(self):
        result = self.make_run(WFQScheduler)
        assert utilization(result) == pytest.approx(1.0)

    def test_service_timeline_partition(self):
        result = self.make_run(WFQScheduler)
        timeline = service_timeline(result)
        assert len(timeline[0]) == 40
        assert len(timeline[1]) == 40
        assert timeline[0] == sorted(timeline[0])

    def test_fair_queueing_interleaves_finely(self):
        """Equal-weight equal-size flows under WFQ alternate almost
        perfectly; DRR with a large quantum produces per-flow runs."""
        wfq = interleaving_index(self.make_run(WFQScheduler))
        drr = interleaving_index(
            self.make_run(
                lambda rate: DRRScheduler(rate, quantum_bytes=8 * 500)
            )
        )
        assert wfq > 0.9
        assert drr < wfq

    def test_interleaving_degenerate(self):
        result = SimulationResult(
            packets=[departed(0, 1, 0.0, 1.0)], finish_time=1.0
        )
        assert interleaving_index(result) == 1.0
