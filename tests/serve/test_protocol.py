"""Wire protocol: codec round-trips and verb schema validation."""

import pytest

from repro.serve.protocol import (
    ProtocolDecodeError,
    VERBS,
    decode_line,
    encode,
    error_response,
    ok_response,
    validate_request,
)


class TestCodec:
    def test_roundtrip(self):
        message = {"op": "enqueue", "flow": 3, "size": 1500, "id": 7}
        assert decode_line(encode(message).strip()) == message

    def test_float_tags_roundtrip_exactly(self):
        tag = 0.1 + 0.2  # not representable prettily; repr-exact anyway
        message = {"op": "reschedule", "handle": 1, "tag": tag}
        assert decode_line(encode(message))["tag"] == tag

    def test_encode_is_one_line(self):
        wire = encode({"op": "stats", "note": "a\nb"})
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolDecodeError):
            decode_line(b"{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolDecodeError):
            decode_line(b"[1,2,3]")


class TestValidation:
    def test_all_verbs_have_schemas(self):
        assert set(VERBS) == {
            "hello",
            "open",
            "close",
            "enqueue",
            "cancel",
            "reschedule",
            "drain",
            "stats",
            "snapshot",
            "shutdown",
        }

    def test_valid_requests_pass(self):
        for message in [
            {"op": "hello"},
            {"op": "open", "tenant": "t", "flow": 1, "rate_bps": 1e6},
            {
                "op": "open",
                "tenant": "t",
                "flow": 1,
                "rate_bps": 1e6,
                "burst_bits": 100.0,
                "delay_target_s": 0.5,
            },
            {"op": "enqueue", "flow": 1, "size": 64, "id": "x"},
            {"op": "cancel", "handle": 0},
            {"op": "reschedule", "handle": 0, "tag": 12.5},
            {"op": "drain", "count": 10},
            {"op": "stats"},
        ]:
            assert validate_request(message) is None, message

    def test_missing_op(self):
        assert "op" in validate_request({"flow": 1})

    def test_unknown_op(self):
        assert "unknown op" in validate_request({"op": "frobnicate"})

    def test_missing_required_field(self):
        reason = validate_request({"op": "enqueue", "flow": 1})
        assert "size" in reason

    def test_wrong_type_rejected(self):
        reason = validate_request(
            {"op": "enqueue", "flow": 1, "size": "big"}
        )
        assert "size" in reason

    def test_bool_is_not_an_int(self):
        reason = validate_request(
            {"op": "enqueue", "flow": True, "size": 64}
        )
        assert "flow" in reason

    def test_unknown_field_rejected(self):
        reason = validate_request(
            {"op": "enqueue", "flow": 1, "size": 64, "sise": 64}
        )
        assert "sise" in reason


class TestResponses:
    def test_ok_echoes_id(self):
        response = ok_response({"op": "stats", "id": 42}, extra=1)
        assert response == {"ok": True, "id": 42, "extra": 1}

    def test_error_carries_reason(self):
        response = error_response({"op": "stats"}, "nope")
        assert response == {"ok": False, "reason": "nope"}

    def test_no_id_no_echo(self):
        assert "id" not in ok_response({"op": "stats"})
