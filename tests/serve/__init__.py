"""Service-plane tests."""
