"""Backpressure marking schemes against a real shared buffer."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.buffer import SharedPacketBuffer
from repro.sched.packet import Packet
from repro.serve.backpressure import BackpressureController


def fill(buffer, count):
    for index in range(count):
        buffer.store(Packet(flow_id=0, size_bytes=64, arrival_time=0.0))


class TestShared:
    def test_clear_buffer_accepts_unmarked(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(buffer, scheme="shared")
        decision = controller.decide(1)
        assert decision.accept and not decision.mark
        assert controller.accepted == 1

    def test_marks_above_fraction(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(
            buffer, scheme="shared", mark_fraction=0.5, reject_fraction=0.9
        )
        fill(buffer, 50)
        decision = controller.decide(1)
        assert decision.accept and decision.mark
        assert controller.marked == 1

    def test_rejects_above_reject_fraction(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(
            buffer, scheme="shared", mark_fraction=0.5, reject_fraction=0.9
        )
        fill(buffer, 90)
        decision = controller.decide(1)
        assert not decision.accept
        assert "reject threshold" in decision.reason
        assert controller.rejected == 1


class TestPerQueue:
    def test_marks_on_flow_backlog_only(self):
        buffer = SharedPacketBuffer(1000)
        backlogs = {1: 5, 2: 64}
        controller = BackpressureController(
            buffer,
            scheme="per_queue",
            per_queue_mark=64,
            flow_backlog=backlogs.get,
        )
        assert not controller.decide(1).mark
        assert controller.decide(2).mark

    def test_requires_backlog_accessor(self):
        with pytest.raises(ConfigurationError):
            BackpressureController(
                SharedPacketBuffer(10), scheme="per_queue"
            )


class TestWeighted:
    def test_threshold_scales_with_weight_share(self):
        buffer = SharedPacketBuffer(100)
        backlogs = {1: 10, 2: 10}
        shares = {1: 0.5, 2: 0.05}
        controller = BackpressureController(
            buffer,
            scheme="weighted",
            mark_fraction=0.65,  # mark region: 65 slots
            flow_backlog=backlogs.get,
            weight_share=shares.get,
        )
        # Flow 1 may hold 32 slots unmarked; flow 2 only 3.
        assert not controller.decide(1).mark
        assert controller.decide(2).mark

    def test_one_packet_floor(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(
            buffer,
            scheme="weighted",
            flow_backlog=lambda _f: 0,
            weight_share=lambda _f: 0.0,
        )
        assert not controller.decide(1).mark


class TestConfigAndState:
    def test_bad_scheme(self):
        with pytest.raises(ConfigurationError):
            BackpressureController(SharedPacketBuffer(4), scheme="magic")

    def test_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            BackpressureController(
                SharedPacketBuffer(4),
                mark_fraction=0.9,
                reject_fraction=0.5,
            )

    def test_state_roundtrip(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(buffer, scheme="shared")
        fill(buffer, 70)
        controller.decide(1)
        controller.decide(1)
        state = controller.to_state()
        fresh = BackpressureController(buffer, scheme="shared")
        fresh.load_state(state)
        assert fresh.accepted == controller.accepted
        assert fresh.marked == controller.marked

    def test_state_scheme_mismatch_rejected(self):
        buffer = SharedPacketBuffer(100)
        controller = BackpressureController(buffer, scheme="shared")
        other = BackpressureController(
            buffer, scheme="per_queue", flow_backlog=lambda _f: 0
        )
        with pytest.raises(ConfigurationError):
            other.load_state(controller.to_state())

    def test_describe_reports_thresholds(self):
        controller = BackpressureController(
            SharedPacketBuffer(100),
            mark_fraction=0.65,
            reject_fraction=0.9,
        )
        description = controller.describe()
        assert description["mark_threshold"] == 65
        assert description["reject_threshold"] == 90
