"""ServeEngine verbs, the asyncio front end, and workload slice parity."""

import asyncio
import json
import threading
import time

import pytest

from repro.serve import lifecycle
from repro.serve.client import ServeClient, build_script, run_script
from repro.serve.server import (
    ServeConfig,
    ServeEngine,
    WfqServer,
    derive_granularity,
)


def small_config(**overrides):
    base = dict(
        link_rate_bps=1e9,
        shards=4,
        buffer_capacity=512,
        table_capacity=512,
        min_rate_bps=1e6,
    )
    base.update(overrides)
    return ServeConfig(**base)


def opened_engine(config=None, flows=4, rate=2e6):
    engine = ServeEngine(config or small_config())
    for flow in range(flows):
        response = engine.handle_request(
            {"op": "open", "tenant": "t", "flow": flow, "rate_bps": rate}
        )
        assert response["ok"], response
    return engine


class TestDeriveGranularity:
    def test_headroom_rule(self):
        from repro.core.words import PAPER_FORMAT

        granularity = derive_granularity(1e9, 1e6)
        worst = 1500 * 8 / (1e6 / 1e9)
        assert granularity == pytest.approx(
            128 * worst / (PAPER_FORMAT.capacity // 2)
        )

    def test_lighter_floor_coarser_quantum(self):
        assert derive_granularity(1e9, 1e5) > derive_granularity(1e9, 1e6)

    def test_positive_rates_required(self):
        from repro.hwsim.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            derive_granularity(1e9, 0.0)


class TestEngineVerbs:
    def test_hello_reports_link(self):
        engine = ServeEngine(small_config())
        response = engine.handle_request({"op": "hello"})
        assert response["ok"]
        assert response["link_rate_bps"] == 1e9
        assert response["shards"] == 4
        engine.close()

    def test_enqueue_requires_open_session(self):
        engine = ServeEngine(small_config())
        response = engine.handle_request(
            {"op": "enqueue", "flow": 9, "size": 100}
        )
        assert not response["ok"]
        assert "no open session" in response["reason"]
        engine.close()

    def test_enqueue_drain_serves_in_tag_order(self):
        engine = opened_engine()
        for index in range(40):
            assert engine.handle_request(
                {"op": "enqueue", "flow": index % 4, "size": 1000}
            )["ok"]
        response = engine.handle_request({"op": "drain", "count": 40})
        tags = [record["tag"] for record in response["served"]]
        seqs = [record["seq"] for record in response["served"]]
        assert seqs == list(range(40))
        assert tags == sorted(tags)
        assert response["backlog"] == 0
        engine.close()

    def test_equal_weights_serve_fairly(self):
        engine = opened_engine(flows=4)
        for index in range(80):
            engine.handle_request(
                {"op": "enqueue", "flow": index % 4, "size": 1000}
            )
        served = engine.handle_request({"op": "drain", "count": 80})[
            "served"
        ]
        counts = {}
        for record in served:
            counts[record["flow"]] = counts.get(record["flow"], 0) + 1
        assert counts == {0: 20, 1: 20, 2: 20, 3: 20}
        engine.close()

    def test_cancel_then_drain_skips_packet(self):
        engine = opened_engine(flows=1)
        handles = [
            engine.handle_request(
                {"op": "enqueue", "flow": 0, "size": 100 + i}
            )["handle"]
            for i in range(3)
        ]
        assert engine.handle_request(
            {"op": "cancel", "handle": handles[1]}
        )["ok"]
        served = engine.handle_request({"op": "drain", "count": 10})[
            "served"
        ]
        assert [record["size"] for record in served] == [100, 102]
        # A spent handle is gone.
        assert not engine.handle_request(
            {"op": "cancel", "handle": handles[1]}
        )["ok"]
        engine.close()

    def test_reschedule_moves_service_order(self):
        engine = opened_engine(flows=1)
        first = engine.handle_request(
            {"op": "enqueue", "flow": 0, "size": 100}
        )
        second = engine.handle_request(
            {"op": "enqueue", "flow": 0, "size": 200}
        )
        # Push the first packet far behind the second.
        moved = engine.handle_request(
            {
                "op": "reschedule",
                "handle": first["handle"],
                "tag": second["tag"] + 64 * engine.granularity,
            }
        )
        assert moved["ok"]
        served = engine.handle_request({"op": "drain", "count": 2})[
            "served"
        ]
        assert [record["size"] for record in served] == [200, 100]
        engine.close()

    def test_reschedule_span_reject_keeps_entry_live(self):
        engine = opened_engine(flows=1)
        handle = engine.handle_request(
            {"op": "enqueue", "flow": 0, "size": 100}
        )["handle"]
        response = engine.handle_request(
            {
                "op": "reschedule",
                "handle": handle,
                "tag": engine.granularity * 10_000_000.0,
            }
        )
        assert not response["ok"]
        # The packet is still queued and still cancellable.
        assert engine.handle_request({"op": "cancel", "handle": handle})[
            "ok"
        ]
        engine.close()

    def test_backpressure_rejects_at_threshold(self):
        engine = opened_engine(
            small_config(
                buffer_capacity=64,
                mark_fraction=0.5,
                reject_fraction=0.75,
            ),
            flows=1,
        )
        marked = rejected = 0
        for _ in range(64):
            response = engine.handle_request(
                {"op": "enqueue", "flow": 0, "size": 100}
            )
            if not response["ok"]:
                rejected += 1
                assert response["ecn"]
            elif response["ecn"]:
                marked += 1
        assert rejected == 16  # 64 - 48 reject threshold
        assert marked > 0
        assert engine.counters["backpressure_rejected"] == 16
        engine.close()

    def test_close_refused_while_backlogged_then_allowed(self):
        engine = opened_engine(flows=1)
        engine.handle_request({"op": "enqueue", "flow": 0, "size": 100})
        refused = engine.handle_request({"op": "close", "flow": 0})
        assert not refused["ok"]
        engine.handle_request({"op": "drain", "count": 1})
        closed = engine.handle_request({"op": "close", "flow": 0})
        assert closed["ok"]
        assert closed["served"] == 1
        engine.close()

    def test_validation_errors_are_responses(self):
        engine = ServeEngine(small_config())
        response = engine.handle_request({"op": "warp", "id": 3})
        assert not response["ok"]
        assert response["id"] == 3
        assert engine.counters["errors"] == 1
        engine.close()

    def test_stats_document_shape(self):
        engine = opened_engine()
        stats = engine.handle_request({"op": "stats"})["stats"]
        for key in (
            "vnow",
            "served_seq",
            "counters",
            "sessions",
            "admission",
            "buffer",
            "backpressure",
            "fabric",
            "table",
        ):
            assert key in stats
        json.dumps(stats)
        engine.close()


class TestWorkloadParity:
    """The client's deterministic script is slice-safe: running it in
    one piece or split across a snapshot/restore boundary produces the
    same service stream."""

    class EngineClient:
        """ServeClient look-alike driving an engine in process."""

        def __init__(self, engine):
            self.engine = engine

        def hello(self):
            return self.engine.handle_request({"op": "hello"})

        def open_flow(self, tenant, flow, rate_bps, **optional):
            message = {
                "op": "open",
                "tenant": tenant,
                "flow": flow,
                "rate_bps": rate_bps,
            }
            message.update(optional)
            return self.engine.handle_request(message)

        def enqueue(self, flow, size):
            return self.engine.handle_request(
                {"op": "enqueue", "flow": flow, "size": size}
            )

        def cancel(self, handle):
            return self.engine.handle_request(
                {"op": "cancel", "handle": handle}
            )

        def reschedule(self, handle, tag):
            return self.engine.handle_request(
                {"op": "reschedule", "handle": handle, "tag": tag}
            )

        def drain(self, count):
            return self.engine.handle_request(
                {"op": "drain", "count": count}
            )

    def test_split_run_matches_uninterrupted_run(self):
        script = build_script(seed=7, flows=16, tenants=3, ops=400)
        config = small_config(serve_log=None)

        reference = ServeEngine(config)
        run_script(self.EngineClient(reference), script)
        reference_tail = reference.handle_request(
            {"op": "drain", "count": 10_000}
        )["served"]

        # Interrupted: half the script, snapshot, restore, the rest.
        first = ServeEngine(small_config())
        run_script(self.EngineClient(first), script, stop=250)
        state = json.loads(json.dumps(lifecycle.capture_state(first)))
        first.close()
        resumed = ServeEngine(small_config())
        lifecycle.restore_state(resumed, state)
        run_script(self.EngineClient(resumed), script, start=250)
        resumed_tail = resumed.handle_request(
            {"op": "drain", "count": 10_000}
        )["served"]

        assert resumed_tail == reference_tail
        assert resumed.served_seq == reference.served_seq
        # Everything but the raw request count (the resumed client sends
        # its own hello) must match exactly.
        reference_stats = reference.stats()
        resumed_stats = resumed.stats()
        reference_stats["counters"].pop("requests")
        resumed_stats["counters"].pop("requests")
        assert resumed_stats == reference_stats
        reference.close()
        resumed.close()

    def test_build_script_is_deterministic(self):
        kwargs = dict(seed=3, flows=8, tenants=2, ops=100)
        assert build_script(**kwargs) == build_script(**kwargs)
        assert build_script(**{**kwargs, "seed": 4}) != build_script(
            **kwargs
        )


class TestAsyncioServer:
    def _serve_in_thread(self, engine):
        server = WfqServer(engine)
        done = threading.Event()
        result = {}

        def runner():
            result["status"] = asyncio.run(server.serve())
            done.set()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while server.port is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.port is not None, "server did not come up"
        return server, done, result

    def test_tcp_roundtrip_and_shutdown(self, tmp_path):
        config = small_config(
            snapshot_path=str(tmp_path / "snap.json"),
            serve_log=str(tmp_path / "serve.jsonl"),
        )
        engine = ServeEngine(config)
        server, done, result = self._serve_in_thread(engine)
        with ServeClient("127.0.0.1", server.port, retries=10) as client:
            assert client.hello()["ok"]
            assert client.open_flow("acme", 1, 2e6)["admitted"]
            handles = [
                client.enqueue(1, 100 + index)["handle"]
                for index in range(5)
            ]
            assert client.cancel(handles[0])["ok"]
            served = client.drain(10)["served"]
            assert [record["size"] for record in served] == [
                101,
                102,
                103,
                104,
            ]
            stats = client.stats()["stats"]
            assert stats["sessions"]["open"] == 1
            assert client.snapshot()["ok"]
            assert client.shutdown()["ok"]
        assert done.wait(10)
        assert result["status"] == 0
        # Shutdown wrote the final snapshot and the serve log.
        state = lifecycle.read_snapshot(config.snapshot_path)
        assert state["served_seq"] == 4
        with open(config.serve_log, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["seq"] for line in lines] == [0, 1, 2, 3]

    def test_malformed_line_gets_error_response(self):
        engine = ServeEngine(small_config())
        server, done, _ = self._serve_in_thread(engine)
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(b"{nope\n")
            response = json.loads(sock.makefile().readline())
            assert not response["ok"]
            assert "malformed" in response["reason"]
            sock.sendall(b'{"op":"shutdown"}\n')
            sock.makefile().readline()
        assert done.wait(10)

    def test_paced_drain_serves_without_client_drains(self, tmp_path):
        config = small_config(
            drain_mode="paced",
            serve_log=str(tmp_path / "serve.jsonl"),
        )
        engine = ServeEngine(config)
        server, done, _ = self._serve_in_thread(engine)
        with ServeClient("127.0.0.1", server.port, retries=10) as client:
            client.open_flow("acme", 1, 2e6)
            for index in range(20):
                client.enqueue(1, 1000)
            deadline = time.monotonic() + 10
            backlog = 20
            while backlog and time.monotonic() < deadline:
                backlog = client.stats()["stats"]["fabric"]["backlog"]
                time.sleep(0.05)
            assert backlog == 0
            client.shutdown()
        assert done.wait(10)
