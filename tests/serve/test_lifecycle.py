"""Snapshots: exact capture/restore and the continued-service proof."""

import json
import os

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.serve import lifecycle
from repro.serve.server import ServeConfig, ServeEngine


def small_config(**overrides):
    base = dict(
        link_rate_bps=1e9,
        shards=4,
        buffer_capacity=512,
        table_capacity=512,
        min_rate_bps=1e6,
    )
    base.update(overrides)
    return ServeConfig(**base)


def loaded_engine(config=None, flows=8, enqueues=120, drains=40):
    engine = ServeEngine(config or small_config())
    for flow in range(flows):
        engine.handle_request(
            {
                "op": "open",
                "tenant": f"t{flow % 3}",
                "flow": flow,
                "rate_bps": 2e6 + flow,
            }
        )
    for index in range(enqueues):
        engine.handle_request(
            {
                "op": "enqueue",
                "flow": index % flows,
                "size": 64 + index % 1400,
            }
        )
    engine.handle_request({"op": "drain", "count": drains})
    return engine


class TestCaptureRestore:
    def test_snapshot_is_json_serializable(self):
        engine = loaded_engine()
        state = lifecycle.capture_state(engine)
        json.dumps(state)
        engine.close()

    def test_restored_engine_continues_identical_service(self):
        """The provable guarantee: snapshot → restore → identical order."""
        engine = loaded_engine()
        state = json.loads(json.dumps(lifecycle.capture_state(engine)))
        fresh = ServeEngine(small_config())
        lifecycle.restore_state(fresh, state)
        # Continue BOTH engines with the same mixed tail and compare
        # every response — service order, tags, handles, stats.
        tail = []
        for index in range(60):
            tail.append(
                {"op": "enqueue", "flow": index % 8, "size": 500 + index}
            )
            if index % 7 == 0:
                tail.append({"op": "drain", "count": 5})
        tail.append({"op": "drain", "count": 10_000})
        for request in tail:
            assert engine.handle_request(request) == fresh.handle_request(
                request
            )
        assert engine.served_seq == fresh.served_seq
        assert engine.stats() == fresh.stats()
        engine.close()
        fresh.close()

    def test_restore_rejects_config_mismatch(self):
        engine = loaded_engine()
        state = lifecycle.capture_state(engine)
        other = ServeEngine(small_config(shards=2))
        with pytest.raises(ConfigurationError):
            lifecycle.restore_state(other, state)
        engine.close()
        other.close()

    def test_restore_rejects_wrong_kind(self):
        engine = ServeEngine(small_config())
        with pytest.raises(ConfigurationError):
            lifecycle.restore_state(engine, {"kind": "other"})
        engine.close()

    def test_token_ledger_survives(self):
        engine = ServeEngine(small_config())
        engine.handle_request(
            {"op": "open", "tenant": "t", "flow": 1, "rate_bps": 2e6}
        )
        tokens = [
            engine.handle_request(
                {"op": "enqueue", "flow": 1, "size": 100 + i}
            )["handle"]
            for i in range(5)
        ]
        state = json.loads(json.dumps(lifecycle.capture_state(engine)))
        fresh = ServeEngine(small_config())
        lifecycle.restore_state(fresh, state)
        # A pre-snapshot handle cancels post-restore.
        response = fresh.handle_request(
            {"op": "cancel", "handle": tokens[2]}
        )
        assert response["ok"]
        assert response["flow"] == 1
        engine.close()
        fresh.close()


class TestDiskFormat:
    def test_write_read_roundtrip(self, tmp_path):
        engine = loaded_engine()
        path = str(tmp_path / "snap.json")
        state = lifecycle.capture_state(engine)
        lifecycle.write_snapshot(path, state)
        assert lifecycle.read_snapshot(path) == json.loads(
            json.dumps(state)
        )
        engine.close()

    def test_write_is_atomic_replace(self, tmp_path):
        engine = loaded_engine()
        path = str(tmp_path / "snap.json")
        lifecycle.write_snapshot(path, lifecycle.capture_state(engine))
        first = os.stat(path).st_ino
        lifecycle.write_snapshot(path, lifecycle.capture_state(engine))
        assert os.stat(path).st_ino != first  # replaced, not rewritten
        assert not [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith(".serve-snapshot-")
        ]
        engine.close()

    def test_read_rejects_non_snapshot(self, tmp_path):
        path = str(tmp_path / "other.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"kind": "other"}, handle)
        with pytest.raises(ConfigurationError):
            lifecycle.read_snapshot(path)


class TestSnapshotPolicy:
    def test_zero_interval_never_due(self):
        policy = lifecycle.SnapshotPolicy(0)
        assert not any(policy.due() for _ in range(100))

    def test_fires_every_interval(self):
        policy = lifecycle.SnapshotPolicy(10)
        fired = [index for index in range(35) if policy.due()]
        assert fired == [9, 19, 29]

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            lifecycle.SnapshotPolicy(-1)
