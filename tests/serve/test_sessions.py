"""SessionManager: the open/close bridge from SLAs to live state."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.net.admission import AdmissionController
from repro.net.scheduler_system import HardwareWFQSystem
from repro.net.session_table import SessionStateTable


def make_manager(link=10e6, table_capacity=8, utilization=1.0):
    from repro.serve.sessions import SessionManager

    scheduler = HardwareWFQSystem(link, granularity=64.0)
    admission = AdmissionController(link, utilization_limit=utilization)
    table = SessionStateTable(table_capacity)
    return SessionManager(scheduler, admission, table), scheduler


class TestOpen:
    def test_open_registers_everywhere(self):
        manager, scheduler = make_manager()
        decision = manager.open("acme", 1, 2e6)
        assert decision.admitted
        assert manager.count == 1
        assert manager.session(1).tenant == "acme"
        assert scheduler.flows.get(1).weight == pytest.approx(0.2)
        assert manager.table.record_of(1) is not None
        assert manager.tenant_counts() == {"acme": 1}

    def test_admission_reject_opens_nothing(self):
        manager, scheduler = make_manager(utilization=0.5)
        decision = manager.open("acme", 1, 9e6)
        assert not decision.admitted
        assert manager.count == 0
        assert manager.rejected == 1
        assert 1 not in scheduler.flows

    def test_invalid_sla_is_a_rejection_not_an_exception(self):
        manager, _ = make_manager()
        decision = manager.open("acme", 1, -5.0)
        assert not decision.admitted
        assert manager.rejected == 1

    def test_table_capacity_failure_rolls_back_admission(self):
        manager, _ = make_manager(table_capacity=1)
        assert manager.open("a", 1, 1e6).admitted
        # Keep flow 1's record fresh so it is not idle-evictable.
        decision = manager.open("b", 2, 1e6)
        assert not decision.admitted
        assert "session setup failed" in decision.reason
        # The failed open released its committed rate.
        assert manager.admission.committed_rate_bps == pytest.approx(1e6)


class TestClose:
    def test_close_releases_everything(self):
        manager, _ = make_manager()
        manager.open("acme", 1, 2e6)
        session = manager.close(1)
        assert session.flow_id == 1
        assert manager.count == 0
        assert manager.admission.committed_rate_bps == 0.0
        assert manager.table.record_of(1) is None
        assert manager.tenant_counts() == {}

    def test_close_unknown_flow_raises(self):
        manager, _ = make_manager()
        with pytest.raises(ConfigurationError):
            manager.close(9)

    def test_close_refused_while_backlogged(self):
        manager, _ = make_manager()
        manager.open("acme", 1, 2e6)
        with pytest.raises(ConfigurationError):
            manager.close(1, backlog=3)
        assert manager.count == 1  # still open

    def test_reopen_after_close_renegotiates_weight(self):
        manager, scheduler = make_manager()
        manager.open("acme", 1, 2e6)
        manager.close(1)
        assert manager.open("acme", 1, 4e6).admitted
        assert scheduler.flows.get(1).weight == pytest.approx(0.4)


class TestState:
    def test_roundtrip_restores_sessions_and_tenants(self):
        import json

        manager, _ = make_manager()
        manager.open("acme", 1, 2e6)
        manager.open("acme", 2, 1e6)
        manager.open("globex", 3, 1e6)
        manager.session(1).enqueued = 7
        manager.session(1).served = 4
        state = json.loads(json.dumps(manager.to_state()))
        fresh, _ = make_manager()
        fresh.load_state(state)
        assert fresh.count == 3
        assert fresh.tenant_counts() == {"acme": 2, "globex": 1}
        assert fresh.session(1).enqueued == 7
        assert fresh.session(1).served == 4
        assert fresh.opened == manager.opened

    def test_kind_checked(self):
        manager, _ = make_manager()
        with pytest.raises(ConfigurationError):
            manager.load_state({"kind": "other"})
