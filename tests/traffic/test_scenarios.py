"""Unit tests for composed traffic scenarios."""

import pytest

from repro.traffic.scenarios import (
    heavy_tail_stress,
    uniform_poisson,
    voip_skewed,
    voip_video_data_mix,
)


class TestVoipVideoData:
    def test_structure(self):
        scenario = voip_video_data_mix(packets_per_flow=50, seed=1)
        assert scenario.flow_count == 8
        assert len(scenario.realtime_flows) == 4
        assert len(scenario.trace) == 8 * 50

    def test_weights_sum_to_one(self):
        scenario = voip_video_data_mix(packets_per_flow=10)
        assert sum(scenario.weights.values()) == pytest.approx(1.0)

    def test_trace_is_time_sorted(self):
        scenario = voip_video_data_mix(packets_per_flow=50, seed=2)
        times = [p.arrival_time for p in scenario.trace]
        assert times == sorted(times)

    def test_clone_trace_is_independent(self):
        scenario = voip_video_data_mix(packets_per_flow=10)
        cloned = scenario.clone_trace()
        cloned[0].departure_time = 99.0
        assert scenario.trace[0].departure_time is None
        assert cloned[0].packet_id == scenario.trace[0].packet_id

    def test_offered_load_tracks_target(self):
        scenario = voip_video_data_mix(
            rate_bps=10e6, packets_per_flow=400, load=0.9, seed=3
        )
        # Flows end at different times (each emits a fixed packet count),
        # so offered load is the sum of per-flow rates over each flow's
        # own active span.
        per_flow_rate = {}
        for packet in scenario.trace:
            bits, end = per_flow_rate.get(packet.flow_id, (0, 0.0))
            per_flow_rate[packet.flow_id] = (
                bits + packet.size_bits,
                max(end, packet.arrival_time),
            )
        offered = sum(bits / end for bits, end in per_flow_rate.values())
        assert offered == pytest.approx(0.9 * 10e6, rel=0.4)


class TestOtherScenarios:
    def test_uniform_poisson(self):
        scenario = uniform_poisson(flows=5, packets_per_flow=20)
        assert scenario.flow_count == 5
        assert len(scenario.trace) == 100

    def test_voip_skewed_all_realtime(self):
        scenario = voip_skewed(flows=8, packets_per_flow=10)
        assert len(scenario.realtime_flows) == 8

    def test_heavy_tail_overload(self):
        scenario = heavy_tail_stress(flows=4, packets_per_flow=50, load=1.2)
        assert len(scenario.trace) == 200

    def test_deterministic_by_seed(self):
        a = uniform_poisson(packets_per_flow=20, seed=9)
        b = uniform_poisson(packets_per_flow=20, seed=9)
        assert [p.arrival_time for p in a.trace] == [
            p.arrival_time for p in b.trace
        ]
