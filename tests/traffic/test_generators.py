"""Unit tests for arrival-process generators."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.traffic.generators import (
    CBRArrivals,
    OnOffArrivals,
    ParetoArrivals,
    PoissonArrivals,
    merge,
)
from repro.traffic.packet_sizes import FixedSize


class TestPoisson:
    def test_count_and_ordering(self):
        generator = PoissonArrivals(1, 1000.0, FixedSize(100), seed=1)
        packets = generator.packets(200)
        assert len(packets) == 200
        times = [p.arrival_time for p in packets]
        assert times == sorted(times)
        assert all(p.flow_id == 1 for p in packets)

    def test_rate_is_respected(self):
        generator = PoissonArrivals(1, 1000.0, FixedSize(100), seed=2)
        packets = generator.packets(5000)
        duration = packets[-1].arrival_time
        assert 5000 / duration == pytest.approx(1000.0, rel=0.1)

    def test_determinism_by_seed(self):
        a = PoissonArrivals(1, 100.0, FixedSize(100), seed=7).packets(50)
        b = PoissonArrivals(1, 100.0, FixedSize(100), seed=7).packets(50)
        assert [p.arrival_time for p in a] == [p.arrival_time for p in b]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(1, 0.0, FixedSize(100))
        generator = PoissonArrivals(1, 10.0, FixedSize(100))
        with pytest.raises(ConfigurationError):
            generator.packets(-1)


class TestCBR:
    def test_fixed_spacing_without_jitter(self):
        generator = CBRArrivals(1, 100.0, FixedSize(80))
        packets = generator.packets(10)
        gaps = [
            b.arrival_time - a.arrival_time
            for a, b in zip(packets, packets[1:])
        ]
        assert all(gap == pytest.approx(0.01) for gap in gaps)

    def test_jitter_bounded(self):
        generator = CBRArrivals(
            1, 100.0, FixedSize(80), jitter_fraction=0.2, seed=1
        )
        packets = generator.packets(200)
        gaps = [
            b.arrival_time - a.arrival_time
            for a, b in zip(packets, packets[1:])
        ]
        assert all(0.009 <= gap <= 0.011 for gap in gaps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CBRArrivals(1, 100.0, FixedSize(80), jitter_fraction=1.0)


class TestOnOff:
    def test_burstiness(self):
        """On-off traffic shows much higher gap variance than Poisson at
        the same mean rate."""
        onoff = OnOffArrivals(
            1,
            peak_rate_pps=2000.0,
            size_model=FixedSize(500),
            mean_on_s=0.05,
            mean_off_s=0.15,
            seed=3,
        )
        poisson = PoissonArrivals(1, onoff.mean_rate_pps, FixedSize(500), seed=3)
        burst_packets = onoff.packets(1000)
        smooth_packets = poisson.packets(1000)

        def gap_cv(packets):
            gaps = [
                b.arrival_time - a.arrival_time
                for a, b in zip(packets, packets[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var**0.5 / mean

        assert gap_cv(burst_packets) > gap_cv(smooth_packets) * 1.5

    def test_mean_rate(self):
        onoff = OnOffArrivals(
            1, 1000.0, FixedSize(100), mean_on_s=0.1, mean_off_s=0.3
        )
        assert onoff.mean_rate_pps == pytest.approx(250.0)


class TestPareto:
    def test_mean_rate_approximate(self):
        generator = ParetoArrivals(1, 500.0, FixedSize(100), alpha=2.5, seed=5)
        packets = generator.packets(5000)
        rate = 5000 / packets[-1].arrival_time
        assert rate == pytest.approx(500.0, rel=0.2)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            ParetoArrivals(1, 100.0, FixedSize(100), alpha=1.0)


class TestMerge:
    def test_merge_sorts_globally(self):
        a = PoissonArrivals(1, 100.0, FixedSize(80), seed=1).packets(50)
        b = PoissonArrivals(2, 100.0, FixedSize(80), seed=2).packets(50)
        merged = merge([a, b])
        assert len(merged) == 100
        times = [p.arrival_time for p in merged]
        assert times == sorted(times)


class TestBulkSynthesis:
    """The vectorized soak path: same distributions, one call."""

    def test_count_ordering_and_flow(self):
        generator = PoissonArrivals(3, 1000.0, FixedSize(100), seed=1)
        packets = generator.packets_bulk(5000)
        assert len(packets) == 5000
        times = [p.arrival_time for p in packets]
        assert times == sorted(times)
        assert all(p.flow_id == 3 and p.size_bytes == 100 for p in packets)

    def test_rate_matches_per_op_distribution(self):
        for make in (
            lambda: PoissonArrivals(1, 2000.0, FixedSize(64), seed=4),
            lambda: CBRArrivals(1, 2000.0, jitter_fraction=0.3, seed=4),
            lambda: ParetoArrivals(1, 2000.0, FixedSize(64), seed=4),
        ):
            bulk_duration = make().packets_bulk(4000)[-1].arrival_time
            per_op_duration = make().packets(4000)[-1].arrival_time
            assert bulk_duration == pytest.approx(per_op_duration, rel=0.15)

    def test_deterministic_and_stateful(self):
        fresh = [
            p.arrival_time
            for p in PoissonArrivals(1, 100.0, FixedSize(10), seed=2).packets_bulk(20)
        ]
        again = [
            p.arrival_time
            for p in PoissonArrivals(1, 100.0, FixedSize(10), seed=2).packets_bulk(20)
        ]
        assert fresh == again
        generator = PoissonArrivals(1, 100.0, FixedSize(10), seed=2)
        generator.packets_bulk(20)
        continued = [p.arrival_time for p in generator.packets_bulk(20)]
        assert continued != fresh  # the RNG stream advanced

    def test_onoff_falls_back_to_per_op_stream(self):
        """The on-off state machine has no vectorized form; the bulk
        call must still work by delegating to the reference path."""
        make = lambda: OnOffArrivals(1, 5000.0, FixedSize(100), seed=6)
        bulk = make().packets_bulk(300)
        per_op = make().packets(300)
        assert [p.arrival_time for p in bulk] == [
            p.arrival_time for p in per_op
        ]

    def test_validation_and_empty(self):
        generator = PoissonArrivals(1, 100.0, FixedSize(10), seed=0)
        assert generator.packets_bulk(0) == []
        with pytest.raises(ConfigurationError):
            generator.packets_bulk(-1)

    def test_bulk_trace_merges_flows(self):
        from repro.traffic.generators import bulk_trace

        processes = [
            PoissonArrivals(0, 500.0, FixedSize(40), seed=3),
            CBRArrivals(1, 500.0, seed=3),
        ]
        trace = bulk_trace(processes, 200)
        assert len(trace) == 400
        times = [p.arrival_time for p in trace]
        assert times == sorted(times)
        assert {p.flow_id for p in trace} == {0, 1}
        with pytest.raises(ConfigurationError):
            bulk_trace(processes, [200])
