"""Unit tests for packet-size models."""

import random

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.traffic.packet_sizes import (
    PAPER_MEAN_PACKET_BYTES,
    BoundedParetoSize,
    EmpiricalMix,
    FixedSize,
    PacketSizeModel,
    UniformSize,
    internet_mix,
    voice_heavy_mix,
)


class TestFixedSize:
    def test_always_same(self, rng):
        model = FixedSize(80)
        assert all(model.sample(rng) == 80 for _ in range(10))
        assert model.mean() == 80.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedSize(0)


class TestUniformSize:
    def test_bounds(self, rng):
        model = UniformSize(40, 1500)
        samples = [model.sample(rng) for _ in range(500)]
        assert min(samples) >= 40
        assert max(samples) <= 1500
        assert model.mean() == 770.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformSize(100, 50)


class TestEmpiricalMix:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            EmpiricalMix(((40, 0.5), (1500, 0.4)))

    def test_samples_come_from_support(self, rng):
        model = internet_mix()
        support = {40, 576, 1500}
        assert all(model.sample(rng) in support for _ in range(300))

    def test_empirical_mean_tracks_model_mean(self):
        rng = random.Random(1)
        model = internet_mix()
        samples = [model.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(
            model.mean(), rel=0.05
        )

    def test_voice_mix_is_near_paper_mean(self):
        """The paper sizes throughput at a 140-byte average packet."""
        assert voice_heavy_mix().mean() == pytest.approx(
            PAPER_MEAN_PACKET_BYTES, rel=0.15
        )


class TestBoundedPareto:
    def test_bounds_respected(self, rng):
        model = BoundedParetoSize(low=40, high=1500, alpha=1.2)
        samples = [model.sample(rng) for _ in range(500)]
        assert min(samples) >= 40
        assert max(samples) <= 1500

    def test_heavy_tail_shape(self):
        """Most mass near the minimum, a real tail near the maximum."""
        rng = random.Random(2)
        model = BoundedParetoSize(low=40, high=1500, alpha=1.2)
        samples = [model.sample(rng) for _ in range(5000)]
        small = sum(1 for s in samples if s < 200)
        large = sum(1 for s in samples if s > 1000)
        assert small > len(samples) / 2
        assert large > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedParetoSize(low=100, high=100)
        with pytest.raises(ConfigurationError):
            BoundedParetoSize(alpha=0)


class TestBulkSampling:
    """Vectorized size draws agree with each model's support and mean."""

    def bulk_rng(self):
        import numpy as np

        return np.random.default_rng(123)

    def test_fixed(self):
        sizes = FixedSize(80).sample_bulk(self.bulk_rng(), 100)
        assert len(sizes) == 100
        assert all(int(s) == 80 for s in sizes)

    def test_uniform_bounds(self):
        model = UniformSize(40, 1500)
        sizes = model.sample_bulk(self.bulk_rng(), 2000)
        assert all(40 <= int(s) <= 1500 for s in sizes)
        mean = sum(int(s) for s in sizes) / len(sizes)
        assert mean == pytest.approx(model.mean(), rel=0.1)

    def test_empirical_support_and_mean(self):
        model = internet_mix()
        sizes = model.sample_bulk(self.bulk_rng(), 5000)
        assert set(int(s) for s in sizes) <= {40, 576, 1500}
        mean = sum(int(s) for s in sizes) / len(sizes)
        assert mean == pytest.approx(model.mean(), rel=0.1)

    def test_bounded_pareto_bounds_and_mean(self):
        model = BoundedParetoSize(40, 1500, alpha=1.3)
        sizes = model.sample_bulk(self.bulk_rng(), 5000)
        assert all(40 <= int(s) <= 1500 for s in sizes)
        mean = sum(int(s) for s in sizes) / len(sizes)
        assert mean == pytest.approx(model.mean(), rel=0.15)

    def test_base_class_fallback_loops_over_sample(self):
        class Doubling(PacketSizeModel):
            def sample(self, rng):
                return rng.randint(1, 2) * 100

            def mean(self):
                return 150.0

        sizes = Doubling().sample_bulk(self.bulk_rng(), 50)
        assert len(sizes) == 50
        assert set(sizes) <= {100, 200}
