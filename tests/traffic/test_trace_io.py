"""Tests for CSV trace persistence."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.traffic import uniform_poisson
from repro.traffic.trace_io import load_trace, save_trace


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        scenario = uniform_poisson(flows=4, packets_per_flow=25, seed=3)
        path = tmp_path / "trace.csv"
        save_trace(path, scenario.trace)
        loaded = load_trace(path)
        assert len(loaded) == len(scenario.trace)
        for original, restored in zip(scenario.trace, loaded):
            assert restored.packet_id == original.packet_id
            assert restored.flow_id == original.flow_id
            assert restored.size_bytes == original.size_bytes
            assert restored.arrival_time == original.arrival_time

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sched import WFQScheduler, simulate

        scenario = uniform_poisson(flows=4, packets_per_flow=40, seed=5)
        path = tmp_path / "trace.csv"
        save_trace(path, scenario.trace)

        def run(trace):
            scheduler = WFQScheduler(scenario.rate_bps)
            for flow_id, weight in scenario.weights.items():
                scheduler.add_flow(flow_id, weight)
            return simulate(scheduler, trace)

        original = run(scenario.clone_trace())
        replayed = run(load_trace(path))
        assert [p.packet_id for p in original.packets] == [
            p.packet_id for p in replayed.packets
        ]
        assert [p.departure_time for p in original.packets] == [
            p.departure_time for p in replayed.packets
        ]


class TestValidation:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "packet_id,flow_id,size_bytes,arrival_time\n1,2,3\n"
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "packet_id,flow_id,size_bytes,arrival_time\n1,2,x,0.0\n"
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_invalid_values(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "packet_id,flow_id,size_bytes,arrival_time\n1,2,0,0.0\n"
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)
        path.write_text(
            "packet_id,flow_id,size_bytes,arrival_time\n1,2,64,-1.0\n"
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)
