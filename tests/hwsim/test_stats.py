"""Unit tests for access accounting."""

import pytest

from repro.hwsim.stats import AccessStats, OperationProbe, StatsRegistry


class TestAccessStats:
    def test_starts_at_zero(self):
        stats = AccessStats()
        assert stats.reads == 0
        assert stats.writes == 0
        assert stats.total == 0

    def test_record_and_total(self):
        stats = AccessStats()
        stats.record_read()
        stats.record_write(3)
        assert stats.reads == 1
        assert stats.writes == 3
        assert stats.total == 4

    def test_snapshot_is_independent(self):
        stats = AccessStats()
        stats.record_read(2)
        snap = stats.snapshot()
        stats.record_read(5)
        assert snap.reads == 2
        assert stats.reads == 7

    def test_delta_since(self):
        stats = AccessStats()
        stats.record_read(2)
        before = stats.snapshot()
        stats.record_read(3)
        stats.record_write(4)
        delta = stats.delta_since(before)
        assert delta.reads == 3
        assert delta.writes == 4

    def test_reset(self):
        stats = AccessStats()
        stats.record_write(9)
        stats.reset()
        assert stats.total == 0


class TestOperationProbe:
    def test_records_per_operation_deltas(self):
        stats = AccessStats()
        probe = OperationProbe()
        with probe.operation(stats):
            stats.record_read(3)
        with probe.operation(stats):
            stats.record_write(7)
        assert probe.samples == [3, 7]
        assert probe.worst_case == 7
        assert probe.average == 5.0
        assert probe.count == 2

    def test_empty_probe(self):
        probe = OperationProbe()
        assert probe.worst_case == 0
        assert probe.average == 0.0

    def test_exception_records_partial_delta_as_failed(self):
        stats = AccessStats()
        probe = OperationProbe()
        with pytest.raises(ValueError):
            with probe.operation(stats):
                stats.record_read(3)
                raise ValueError("boom")
        # The partial delta stays visible in worst-case accounting...
        assert probe.samples == [3]
        assert probe.worst_case == 3
        # ...and is tagged as failed.
        assert probe.failed_samples == [3]
        assert probe.failure_count == 1

    def test_failed_operation_can_dominate_worst_case(self):
        stats = AccessStats()
        probe = OperationProbe()
        with probe.operation(stats):
            stats.record_read(2)
        with pytest.raises(RuntimeError):
            with probe.operation(stats):
                stats.record_write(9)
                raise RuntimeError("mid-operation fault")
        assert probe.worst_case == 9
        assert probe.count == 2
        assert probe.failure_count == 1

    def test_reset(self):
        stats = AccessStats()
        probe = OperationProbe()
        with probe.operation(stats):
            stats.record_read()
        with pytest.raises(ValueError):
            with probe.operation(stats):
                raise ValueError("boom")
        probe.reset()
        assert probe.count == 0
        assert probe.failure_count == 0


class TestStatsRegistry:
    def test_register_and_total(self):
        registry = StatsRegistry()
        a = registry.register("a", AccessStats())
        b = registry.register("b", AccessStats())
        a.record_read(2)
        b.record_write(3)
        total = registry.total()
        assert total.reads == 2
        assert total.writes == 3

    def test_duplicate_name_rejected(self):
        registry = StatsRegistry()
        registry.register("a", AccessStats())
        with pytest.raises(ValueError):
            registry.register("a", AccessStats())

    def test_lookup_and_iteration(self):
        registry = StatsRegistry()
        stats = registry.register("mem", AccessStats())
        assert registry["mem"] is stats
        assert "mem" in registry
        assert registry.names() == ["mem"]

    def test_reset_all(self):
        registry = StatsRegistry()
        stats = registry.register("mem", AccessStats())
        stats.record_read(4)
        registry.reset_all()
        assert registry.total().total == 0

    def test_unregister_frees_the_name(self):
        registry = StatsRegistry()
        stats = registry.register("mem", AccessStats())
        assert registry.unregister("mem") is stats
        assert "mem" not in registry
        # The name is reusable by a re-created component.
        registry.register("mem", AccessStats())

    def test_unregister_unknown_name(self):
        registry = StatsRegistry()
        with pytest.raises(KeyError):
            registry.unregister("ghost")

    def test_register_replace(self):
        registry = StatsRegistry()
        old = registry.register("mem", AccessStats())
        old.record_read(5)
        new = registry.register("mem", AccessStats(), replace=True)
        assert registry["mem"] is new
        assert registry.total().total == 0

    def test_snapshot_all_and_deltas_since(self):
        registry = StatsRegistry()
        a = registry.register("a", AccessStats())
        b = registry.register("b", AccessStats())
        a.record_read(2)
        snapshot = registry.snapshot_all()
        a.record_read(3)
        a.record_write(1)
        # b is untouched: it must not appear in the deltas.
        deltas = registry.deltas_since(snapshot)
        assert set(deltas) == {"a"}
        assert deltas["a"].reads == 3
        assert deltas["a"].writes == 1
        # Snapshots are independent copies.
        assert snapshot["a"].reads == 2
        assert b.total == 0

    def test_deltas_since_covers_late_registrations(self):
        registry = StatsRegistry()
        registry.register("early", AccessStats())
        snapshot = registry.snapshot_all()
        late = registry.register("late", AccessStats())
        late.record_write(4)
        deltas = registry.deltas_since(snapshot)
        assert deltas["late"].writes == 4
