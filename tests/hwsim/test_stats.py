"""Unit tests for access accounting."""

import pytest

from repro.hwsim.stats import AccessStats, OperationProbe, StatsRegistry


class TestAccessStats:
    def test_starts_at_zero(self):
        stats = AccessStats()
        assert stats.reads == 0
        assert stats.writes == 0
        assert stats.total == 0

    def test_record_and_total(self):
        stats = AccessStats()
        stats.record_read()
        stats.record_write(3)
        assert stats.reads == 1
        assert stats.writes == 3
        assert stats.total == 4

    def test_snapshot_is_independent(self):
        stats = AccessStats()
        stats.record_read(2)
        snap = stats.snapshot()
        stats.record_read(5)
        assert snap.reads == 2
        assert stats.reads == 7

    def test_delta_since(self):
        stats = AccessStats()
        stats.record_read(2)
        before = stats.snapshot()
        stats.record_read(3)
        stats.record_write(4)
        delta = stats.delta_since(before)
        assert delta.reads == 3
        assert delta.writes == 4

    def test_reset(self):
        stats = AccessStats()
        stats.record_write(9)
        stats.reset()
        assert stats.total == 0


class TestOperationProbe:
    def test_records_per_operation_deltas(self):
        stats = AccessStats()
        probe = OperationProbe()
        with probe.operation(stats):
            stats.record_read(3)
        with probe.operation(stats):
            stats.record_write(7)
        assert probe.samples == [3, 7]
        assert probe.worst_case == 7
        assert probe.average == 5.0
        assert probe.count == 2

    def test_empty_probe(self):
        probe = OperationProbe()
        assert probe.worst_case == 0
        assert probe.average == 0.0

    def test_exception_discards_sample(self):
        stats = AccessStats()
        probe = OperationProbe()
        with pytest.raises(ValueError):
            with probe.operation(stats):
                stats.record_read()
                raise ValueError("boom")
        assert probe.samples == []

    def test_reset(self):
        stats = AccessStats()
        probe = OperationProbe()
        with probe.operation(stats):
            stats.record_read()
        probe.reset()
        assert probe.count == 0


class TestStatsRegistry:
    def test_register_and_total(self):
        registry = StatsRegistry()
        a = registry.register("a", AccessStats())
        b = registry.register("b", AccessStats())
        a.record_read(2)
        b.record_write(3)
        total = registry.total()
        assert total.reads == 2
        assert total.writes == 3

    def test_duplicate_name_rejected(self):
        registry = StatsRegistry()
        registry.register("a", AccessStats())
        with pytest.raises(ValueError):
            registry.register("a", AccessStats())

    def test_lookup_and_iteration(self):
        registry = StatsRegistry()
        stats = registry.register("mem", AccessStats())
        assert registry["mem"] is stats
        assert "mem" in registry
        assert registry.names() == ["mem"]

    def test_reset_all(self):
        registry = StatsRegistry()
        stats = registry.register("mem", AccessStats())
        stats.record_read(4)
        registry.reset_all()
        assert registry.total().total == 0
