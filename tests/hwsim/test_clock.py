"""Unit tests for the cycle clock."""

import pytest

from repro.hwsim.clock import Clock
from repro.hwsim.errors import ConfigurationError


class Recorder:
    def __init__(self):
        self.cycles = []

    def tick(self, cycle):
        self.cycles.append(cycle)


class TestClock:
    def test_step_advances_counter(self):
        clock = Clock()
        assert clock.step(3) == 3
        assert clock.cycle == 3

    def test_components_tick_in_order(self):
        clock = Clock()
        first, second = Recorder(), Recorder()
        clock.register(first)
        clock.register(second)
        clock.step(2)
        assert first.cycles == [0, 1]
        assert second.cycles == [0, 1]

    def test_period_and_elapsed(self):
        clock = Clock(frequency_hz=100e6)
        assert clock.period_s == pytest.approx(10e-9)
        clock.step(5)
        assert clock.elapsed_s() == pytest.approx(50e-9)

    def test_cycles_for_seconds(self):
        clock = Clock(frequency_hz=1e6)
        assert clock.cycles_for_seconds(1e-3) == 1000

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Clock(frequency_hz=0)
        clock = Clock()
        with pytest.raises(ConfigurationError):
            clock.step(-1)
        with pytest.raises(ConfigurationError):
            clock.cycles_for_seconds(-1.0)
