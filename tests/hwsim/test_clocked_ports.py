"""Integration: clocked single-port discipline across components.

Drives SinglePortSRAM/DualPortSRAM through a real Clock and verifies the
per-cycle port rules the pipelined circuit depends on.
"""

import pytest

from repro.hwsim.clock import Clock
from repro.hwsim.errors import PortConflictError
from repro.hwsim.memory import DualPortSRAM, SinglePortSRAM


class TestClockedSinglePort:
    def test_one_access_per_cycle_pattern(self):
        clock = Clock()
        memory = SinglePortSRAM(8, enforce_port=True)
        clock.register(memory)
        # Fig. 9's 4-cycle pattern: R, R, W, W — one access per cycle.
        memory.read(0)
        clock.step()
        memory.read(1)
        clock.step()
        memory.write(2, "a")
        clock.step()
        memory.write(3, "b")
        assert memory.stats.reads == 2
        assert memory.stats.writes == 2

    def test_double_access_without_tick_raises(self):
        clock = Clock()
        memory = SinglePortSRAM(8, enforce_port=True)
        clock.register(memory)
        memory.read(0)
        with pytest.raises(PortConflictError):
            memory.write(1, "x")

    def test_many_cycles_many_accesses(self):
        clock = Clock()
        memory = SinglePortSRAM(4, enforce_port=True)
        clock.register(memory)
        for cycle in range(100):
            memory.write(cycle % 4, cycle)
            clock.step()
        assert memory.stats.writes == 100

    def test_two_memories_share_a_clock(self):
        clock = Clock()
        tree_sram = SinglePortSRAM(4, name="tree", enforce_port=True)
        translation = SinglePortSRAM(4, name="xlat", enforce_port=True)
        clock.register(tree_sram)
        clock.register(translation)
        # Different memories may be accessed in the same cycle — that is
        # exactly the distributed-memory parallelism of the paper.
        tree_sram.read(0)
        translation.write(0, 5)
        clock.step()
        tree_sram.write(1, 3)
        translation.read(0)
        assert tree_sram.stats.total == 2
        assert translation.stats.total == 2


class TestClockedDualPort:
    def test_read_write_same_cycle(self):
        clock = Clock()
        memory = DualPortSRAM(4, enforce_port=True)
        clock.register(memory)
        memory.write(0, "x")
        assert memory.read(0) == "x"
        clock.step()
        memory.write(1, "y")
        assert memory.read(1) == "y"

    def test_qdr_style_throughput_doubling(self):
        """A dual-port memory completes the 2R+2W splice in 2 cycles."""
        clock = Clock()
        single = SinglePortSRAM(8, enforce_port=True)
        dual = DualPortSRAM(8, enforce_port=True)
        clock.register(single)
        clock.register(dual)

        def splice_single():
            start = clock.cycle
            single.read(0)
            clock.step()
            single.read(1)
            clock.step()
            single.write(0, "a")
            clock.step()
            single.write(1, "b")
            clock.step()
            return clock.cycle - start

        def splice_dual():
            start = clock.cycle
            dual.read(0)
            dual.write(2, "a")
            clock.step()
            dual.read(1)
            dual.write(3, "b")
            clock.step()
            return clock.cycle - start

        assert splice_single() == 4
        assert splice_dual() == 2
