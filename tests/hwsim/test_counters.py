"""Unit tests for hardware counters."""

import pytest

from repro.hwsim.counters import SaturatingCounter, WrappingCounter
from repro.hwsim.errors import ConfigurationError


class TestSaturatingCounter:
    def test_take_hands_out_sequential_addresses(self):
        counter = SaturatingCounter(3)
        assert [counter.take() for _ in range(3)] == [0, 1, 2]
        assert counter.saturated

    def test_take_after_saturation_raises(self):
        counter = SaturatingCounter(1)
        counter.take()
        with pytest.raises(ConfigurationError):
            counter.take()

    def test_increment_saturates_silently(self):
        counter = SaturatingCounter(2)
        counter.increment()
        counter.increment()
        counter.increment()
        assert counter.value == 2

    def test_reset(self):
        counter = SaturatingCounter(2)
        counter.take()
        counter.reset()
        assert counter.value == 0
        assert not counter.saturated

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(-1)


class TestWrappingCounter:
    def test_wraps_and_counts_laps(self):
        counter = WrappingCounter(4)
        counter.increment(9)
        assert counter.value == 1
        assert counter.wraps == 2

    def test_distance_to(self):
        counter = WrappingCounter(16, start=12)
        assert counter.distance_to(2) == 6
        assert counter.distance_to(12) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            WrappingCounter(0)
        with pytest.raises(ConfigurationError):
            WrappingCounter(4, start=4)
        counter = WrappingCounter(4)
        with pytest.raises(ConfigurationError):
            counter.increment(-1)
        with pytest.raises(ConfigurationError):
            counter.distance_to(4)
