"""Unit tests for the memory models."""

import pytest

from repro.hwsim.errors import AddressError, ConfigurationError, PortConflictError
from repro.hwsim.memory import (
    DualPortSRAM,
    RegisterFile,
    SinglePortSRAM,
    make_tree_level_memory,
)


class TestRegisterFile:
    def test_read_write(self):
        memory = RegisterFile(4, word_bits=16)
        memory.write(2, 0xBEEF)
        assert memory.read(2) == 0xBEEF
        assert memory.stats.reads == 1
        assert memory.stats.writes == 1

    def test_many_accesses_same_cycle_allowed(self):
        memory = RegisterFile(8)
        for address in range(8):
            memory.write(address, address)
        assert [memory.read(a) for a in range(8)] == list(range(8))

    def test_bounds(self):
        memory = RegisterFile(4)
        with pytest.raises(AddressError):
            memory.read(4)
        with pytest.raises(AddressError):
            memory.write(-1, 0)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(0)

    def test_total_bits(self):
        assert RegisterFile(16, word_bits=16).total_bits == 256


class TestSinglePortSRAM:
    def test_port_conflict_detected(self):
        memory = SinglePortSRAM(4, enforce_port=True)
        memory.write(0, 1)
        with pytest.raises(PortConflictError):
            memory.read(0)

    def test_tick_releases_port(self):
        memory = SinglePortSRAM(4, enforce_port=True)
        memory.write(0, 1)
        memory.tick(0)
        assert memory.read(0) == 1

    def test_end_cycle_releases_port(self):
        memory = SinglePortSRAM(4, enforce_port=True)
        memory.write(1, 5)
        memory.end_cycle()
        memory.write(1, 6)
        assert memory.peek(1) == 6

    def test_unenforced_mode(self):
        memory = SinglePortSRAM(4, enforce_port=False)
        memory.write(0, 1)
        memory.write(1, 2)
        assert memory.read(0) == 1
        assert memory.read(1) == 2

    def test_peek_poke_bypass_accounting(self):
        memory = SinglePortSRAM(4)
        memory.poke(3, "x")
        assert memory.peek(3) == "x"
        assert memory.stats.total == 0


class TestDualPortSRAM:
    def test_one_read_one_write_per_cycle(self):
        memory = DualPortSRAM(4)
        memory.write(0, 1)
        assert memory.read(0) == 1  # different ports: legal

    def test_second_read_conflicts(self):
        memory = DualPortSRAM(4)
        memory.read(0)
        with pytest.raises(PortConflictError):
            memory.read(1)

    def test_second_write_conflicts(self):
        memory = DualPortSRAM(4)
        memory.write(0, 1)
        with pytest.raises(PortConflictError):
            memory.write(1, 2)

    def test_tick_releases_both(self):
        memory = DualPortSRAM(4)
        memory.read(0)
        memory.write(0, 1)
        memory.tick(0)
        memory.read(0)
        memory.write(1, 2)


class TestTreeLevelFactory:
    def test_shallow_levels_are_registers(self):
        memory = make_tree_level_memory(0, 16, 1)
        assert isinstance(memory, RegisterFile)
        memory = make_tree_level_memory(1, 16, 16)
        assert isinstance(memory, RegisterFile)

    def test_deep_levels_are_sram(self):
        memory = make_tree_level_memory(2, 16, 256)
        assert isinstance(memory, SinglePortSRAM)

    def test_paper_layout_bit_counts(self):
        """Paper Section III-A: 272 register bits, 4 kbit SRAM level."""
        level0 = make_tree_level_memory(0, 16, 1)
        level1 = make_tree_level_memory(1, 16, 16)
        level2 = make_tree_level_memory(2, 16, 256)
        assert level0.total_bits + level1.total_bits == 272
        assert level2.total_bits == 4096
