"""Unit tests for the unit-gate cost model."""

import pytest

from repro.hwsim.errors import ConfigurationError
from repro.hwsim.gates import (
    Cost,
    and_gate,
    fanout_buffer,
    gate,
    gates_to_luts,
    mux,
    or_gate,
    priority_chain,
    xor_gate,
)


class TestCost:
    def test_serial_composition_adds(self):
        combined = Cost(2, 3).then(Cost(5, 7))
        assert combined.delay == 7
        assert combined.area == 10

    def test_parallel_composition_maxes_delay(self):
        combined = Cost(2, 3).alongside(Cost(5, 7))
        assert combined.delay == 5
        assert combined.area == 10

    def test_zero_is_identity(self):
        cost = Cost(4, 4)
        assert cost.then(Cost.zero()) == cost
        assert cost.alongside(Cost.zero()).delay == cost.delay


class TestGates:
    def test_two_input_gate(self):
        cost = gate(2)
        assert cost.delay == 1.0
        assert cost.area == 1.0

    def test_wide_gate_decomposes_logarithmically(self):
        cost = gate(16)
        assert cost.delay == 4.0  # log2(16)
        assert cost.area == 15.0  # n - 1

    def test_inverter_is_cheap(self):
        cost = gate(1)
        assert cost.delay == 0.0
        assert cost.area == 0.5

    def test_and_or_are_monotone_gates(self):
        assert and_gate(8) == or_gate(8) == gate(8)

    def test_xor_costs_double(self):
        assert xor_gate().delay == 2.0

    def test_mux_tree(self):
        assert mux(1) == Cost.zero()
        assert mux(4).delay == 4.0  # two 2:1 levels
        assert mux(4).area == 6.0

    def test_priority_chain_is_linear(self):
        assert priority_chain(8).delay == 2 * priority_chain(4).delay

    def test_fanout_buffer(self):
        assert fanout_buffer(1) == Cost.zero()
        assert fanout_buffer(16).delay == 2.0  # log4(16)

    def test_gates_to_luts(self):
        assert gates_to_luts(30.0) == pytest.approx(10.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            gate(0)
        with pytest.raises(ConfigurationError):
            mux(0)
        with pytest.raises(ConfigurationError):
            priority_chain(-1)
        with pytest.raises(ConfigurationError):
            fanout_buffer(0)
        with pytest.raises(ConfigurationError):
            gates_to_luts(-1.0)
