"""Perf-regression harness for the sort/retrieve hot paths.

Three scenario families, all deterministic per seed:

* **insert soaks** — fill a circuit with a sorted-random tag load,
  per-op :meth:`~repro.core.sort_retrieve.TagSortRetrieveCircuit.insert`
  versus one :meth:`~repro.core.sort_retrieve.TagSortRetrieveCircuit.insert_batch`,
  swept across the five matcher topologies and three word formats;
* **dequeue soaks** — drain the same loads per-op versus
  :meth:`~repro.core.sort_retrieve.TagSortRetrieveCircuit.dequeue_batch`;
* the **headline mixed soak** — 100k bursty push/pop operations through
  :class:`~repro.net.hardware_store.HardwareTagStore` (paper word
  format, default matcher), per-op versus the batched fast-mode path,
  with the served sequences compared element-wise before any timing is
  trusted;
* the **fabric scale-out phase** — the flow-attributed mixed workload
  through :class:`~repro.fabric.fabric.ScheduleFabric` at 1/4/16
  shards versus one circuit, reporting modeled (makespan-cycle)
  speedup and tournament-aggregation overhead; the full preset gates
  on the largest fabric reaching
  :data:`FABRIC_MIN_MODELED_SPEEDUP`× one circuit's enqueue
  throughput;
* the **turbo engine phase** — the headline workload driven per-op and
  batched on both engines (gate-accurate vs access-fused turbo),
  best-of-3 timed, with served order and per-structure access/cycle
  accounting asserted *exactly equal* across engines before any
  speedup is reported; the full preset gates on turbo reaching
  :data:`TURBO_MIN_SPEEDUP`× the gate per-op baseline, and every
  preset gates on turbo per-op beating the batched gate path;
* the **timer dynamic-update phase** — the :mod:`repro.net.timer`
  churn scenario (insert/cancel/repin-heavy, most entries never reach
  service) on both engines, with fired sequences, cycle totals, and
  per-structure accounting asserted exactly equal; the regression
  fence for the remove/retag cost model;
* the **vector engine phase** — rounds of
  :data:`VECTOR_BATCH_WIDTH`-wide ``insert_batch``/``dequeue_batch``
  pairs on the numpy array engine versus the gate and turbo engines,
  served sequences asserted identical before timing; every preset
  gates on vector reaching :data:`VECTOR_MIN_SPEEDUP`× the turbo
  per-op baseline (the phase skips itself gracefully without numpy).

The ``--mode {gate,turbo,vector}`` flag selects which engine the
matcher, size, headline, fabric, and distribution phases run on (the
turbo, timer, and vector phases always measure their engine pairs;
``--mode vector`` skips the matcher sweep, which has no meaning for
the array engine); the mode is recorded in the document and
``--check`` refuses to compare baselines across modes.

Each scenario records wall throughput (machine-dependent, best of
:data:`BENCH_REPEATS` timed passes) and memory accesses and circuit
cycles per operation (machine-independent).  A separate **untimed**
instrumented pass adds per-phase distribution data (p50/p90/p99/max
access counts, occupancy, free-list depth) through the
:mod:`repro.obs` telemetry layer.  The results land in
``BENCH_sort_retrieve.json``; ``--check`` re-runs the suite and fails
when throughput drops more than 20% below the committed baseline or
when the access counts grow beyond the same tolerance.  Throughput is
compared after dividing out the two runs' calibration speed scores
(:func:`machine_speed_score`), so a host in a different speed state
than at baseline-recording time does not read as a code change.

Baselines also carry a **forensic reference trace**
(``BENCH_sort_retrieve.trace.jsonl``): the full framed event stream of
a short deterministic per-op soak.  When ``--check`` finds a
regression, the same workload is re-traced and diffed against the
reference (:mod:`repro.obs.diff`), so the failure report pinpoints the
first diverging logical operation and the per-kind access deltas —
not just "it got slower".
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

from ..core.engine import VALID_MODES, make_circuit, numpy_or_none
from ..core.matching import ALL_MATCHERS, DEFAULT_MATCHER
from ..core.sort_retrieve import TagSortRetrieveCircuit
from ..core.words import PAPER_FORMAT, WordFormat
from ..net.hardware_store import HardwareTagStore
from ..obs.diff import TraceCompatibilityError, diff_traces
from ..obs.events import build_trace_header
from ..obs.exporters import read_trace
from ..obs.instruments import Histogram
from ..obs.probes import StandardProbes
from ..obs.tracer import Tracer

#: Baseline file name, committed at the repository root.
BASELINE_FILENAME = "BENCH_sort_retrieve.json"

#: Allowed fractional slowdown (or access growth) before --check fails.
REGRESSION_TOLERANCE = 0.20

#: The batched mixed soak must beat the per-op path by this factor.
#: Originally 2.0; relaxed when the shared store adapter shed its
#: per-push property-chain overhead (the turbo PR), which sped the
#: per-op denominator up without touching the batched path — the
#: machine-independent amortization claim (batched accesses_per_op <
#: per-op accesses_per_op) is asserted separately and unchanged.
HEADLINE_MIN_SPEEDUP = 1.5

#: Wall-clock comparisons need at least this much timed work to be
#: meaningful; shorter scenarios are checked only on their
#: machine-independent access and cycle counts.
MIN_TIMED_WALL_SECONDS = 0.2

#: Word formats swept by the size scenarios: 8-, 12- (paper) and 16-bit.
SIZE_SWEEP: Tuple[Tuple[str, WordFormat], ...] = (
    ("w8", WordFormat(levels=2, literal_bits=4)),
    ("w12", PAPER_FORMAT),
    ("w16", WordFormat(levels=4, literal_bits=4)),
)

#: Document schema: 2 added the per-phase ``distributions`` block;
#: 3 pairs the baseline with a committed forensic reference trace;
#: 4 adds the ``fabric`` scale-out phase (shard sweep + modeled speedup);
#: 5 adds the ``turbo`` engine phase, the run ``mode``, and the
#: ``machine`` header (python/platform/CPU count plus a calibration
#: speed score; identity fields warn-only in --check, the score
#: renormalizes wall floors);
#: 6 adds the ``timer`` dynamic-update phase (timer-wheel churn through
#: remove/retag on both engines, exact parity);
#: 7 adds the ``vector`` array-engine phase (wide-batch drains on the
#: numpy data plane vs the turbo per-op path, exact service parity)
#: and extends the run ``mode`` to the vector engine.
_SCHEMA = 7

#: Every timed section runs this many times and reports its fastest
#: wall clock.  Min-of-N filters scheduler bursts on shared hosts (a
#: burst only survives if it spans every repeat); the
#: machine-independent access/cycle metrics are deterministic per seed,
#: so they are recorded once.
BENCH_REPEATS = 3

#: The turbo engine must beat the gate-accurate per-op path by this
#: factor on the full preset (the PR's headline acceptance claim).
TURBO_MIN_SPEEDUP = 3.0

#: The vector engine's wide-batch drain must beat the turbo per-op path
#: by this factor — at every preset, because the vector phase pins its
#: own batch width (the shape the array engine exists for), so the
#: smoke run measures the same shape, just fewer rounds of it.
VECTOR_MIN_SPEEDUP = 10.0

#: Batch width of the vector phase's wide-batch rounds: two tag spaces
#: per insert_batch/dequeue_batch pair (each distinct tag served four
#: deep), the granularity at which one array op retires thousands of
#: logical operations and the per-call overhead of the array engine
#: amortizes out.
VECTOR_BATCH_WIDTH = 8192

#: Shard counts swept by the fabric scale-out phase.
FABRIC_SHARD_SWEEP: Tuple[int, ...] = (1, 4, 16)

#: Modeled (makespan-cycle) enqueue speedup the largest fabric in the
#: sweep must reach over one circuit, full preset only.
FABRIC_MIN_MODELED_SPEEDUP = 4.0

#: Operations in the committed forensic reference trace.
REFERENCE_TRACE_OPS = 2_000


#: Iterations of the calibration kernel timed by :func:`machine_speed_score`.
_CALIBRATION_OPS = 50_000


def _calibration_kernel(ops: int = _CALIBRATION_OPS) -> int:
    """A fixed pure-Python workload shaped like the hot paths: integer
    arithmetic, dict stores, and a tight attribute-free loop."""
    acc = 0
    sink = {}
    for i in range(ops):
        sink[i & 1023] = acc
        acc ^= (acc << 1) & 0xFFFFFF
        acc += i
    return acc


def machine_speed_score() -> float:
    """Calibration-kernel iterations per second, best of five runs.

    Wall throughput is only comparable across runs after dividing out
    how fast the machine happened to be: on shared or thermally
    throttled hosts the same code swings well past the regression
    tolerance between otherwise-identical runs.
    :func:`check_against_baseline` divides current throughput by the
    ratio of this score between the two documents, so a uniformly slow
    (or fast) machine state cancels out and only code-relative wall
    changes remain visible.
    """
    best = float("inf")
    for _ in range(5):
        seconds, _ = _timed(_calibration_kernel)
        best = min(best, seconds)
    return round(_CALIBRATION_OPS / best, 1)


def machine_info() -> Dict:
    """The machine header recorded in every bench document.

    Wall-clock numbers are machine-dependent; the committed baseline
    carries this block so ``--check`` can *warn* (never fail) when the
    comparison crosses interpreters or hardware, and can renormalize
    wall floors by the calibration speed score when the same machine is
    merely in a different speed state.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_ops_per_second": machine_speed_score(),
    }


def machine_mismatch_warnings(current: Dict, baseline: Dict) -> List[str]:
    """Human-readable cross-machine warnings (empty = same machine).

    Deliberately separate from :func:`check_against_baseline`: a
    machine mismatch makes wall-clock comparisons *suspect*, not
    *wrong*, so it warns instead of failing the check.
    """
    old = baseline.get("machine")
    if not old:
        return [
            "baseline has no machine header (pre-schema-5); regenerate "
            "it to enable cross-machine comparison warnings"
        ]
    new = current.get("machine") or machine_info()
    warnings = []
    for key in ("python", "implementation", "platform", "cpu_count"):
        if old.get(key) != new.get(key):
            warnings.append(
                f"baseline {key} {old.get(key)!r} != current "
                f"{new.get(key)!r}; wall-clock comparisons may be noise"
            )
    old_cal = old.get("calibration_ops_per_second")
    new_cal = new.get("calibration_ops_per_second")
    if old_cal and new_cal:
        ratio = new_cal / old_cal
        if ratio > 1.5 or ratio < 1 / 1.5:
            warnings.append(
                f"machine speed score moved {ratio:.2f}x between runs "
                f"({old_cal:,.0f} -> {new_cal:,.0f} calibration ops/s); "
                "wall floors are renormalized by this factor"
            )
    return warnings


def _sorted_tags(fmt: WordFormat, count: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    return sorted(rng.randrange(fmt.capacity) for _ in range(count))


def _timed(fn) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _scenario(
    name: str,
    *,
    ops: int,
    seconds: float,
    accesses: int,
    cycles: int,
    **extra,
) -> Dict:
    record = {
        "name": name,
        "ops": ops,
        "seconds": round(seconds, 6),
        "ops_per_second": round(ops / seconds, 1) if seconds > 0 else 0.0,
        "accesses_per_op": round(accesses / ops, 4) if ops else 0.0,
        "cycles_per_op": round(cycles / ops, 4) if ops else 0.0,
    }
    record.update(extra)
    return record


def _bench_insert_dequeue(
    label: str,
    fmt: WordFormat,
    matcher_factory,
    count: int,
    seed: int,
    mode: str = "gate",
) -> List[Dict]:
    """Per-op and batched insert+dequeue soaks on one configuration.

    Each discipline repeats :data:`BENCH_REPEATS` times on a fresh
    circuit and keeps its fastest wall clock; the access/cycle counts
    are deterministic, so the first pass records them.
    """
    tags = _sorted_tags(fmt, count, seed)
    capacity = count

    def fresh():
        return make_circuit(
            fmt, capacity=capacity, matcher_factory=matcher_factory,
            mode=mode,
        )

    best: Dict[str, float] = {}
    metrics: Dict[str, Tuple[int, int]] = {}

    def record(key: str, seconds: float, accesses: int, cycles: int) -> None:
        if key not in best or seconds < best[key]:
            best[key] = seconds
        metrics.setdefault(key, (accesses, cycles))

    for _ in range(BENCH_REPEATS):
        # -- per-op insert, then per-op dequeue on the filled circuit
        circuit = fresh()
        seconds, _ = _timed(lambda: [circuit.insert(tag) for tag in tags])
        stats = circuit.registry.total()
        record("insert_per_op", seconds, stats.total, circuit.cycles)
        before = circuit.registry.total()
        cycles_before = circuit.cycles
        seconds, _ = _timed(
            lambda: [circuit.dequeue_min() for _ in range(count)]
        )
        stats = circuit.registry.total()
        record(
            "dequeue_per_op",
            seconds,
            stats.total - before.total,
            circuit.cycles - cycles_before,
        )

        # -- batched insert, then one batched dequeue of everything
        circuit = fresh()
        seconds, _ = _timed(lambda: circuit.insert_batch(tags))
        stats = circuit.registry.total()
        record("insert_batch", seconds, stats.total, circuit.cycles)
        before = circuit.registry.total()
        cycles_before = circuit.cycles
        seconds, _ = _timed(lambda: circuit.dequeue_batch(count))
        stats = circuit.registry.total()
        record(
            "dequeue_batch",
            seconds,
            stats.total - before.total,
            circuit.cycles - cycles_before,
        )

    return [
        _scenario(
            f"{key}:{label}",
            ops=count,
            seconds=best[key],
            accesses=metrics[key][0],
            cycles=metrics[key][1],
        )
        for key in (
            "insert_per_op", "dequeue_per_op", "insert_batch", "dequeue_batch"
        )
    ]


def make_mixed_ops(count: int, seed: int, *, max_backlog: int = 512) -> List:
    """A bursty, WFQ-shaped push/pop stream of ``count`` operations.

    Pushes carry drifting virtual-time finish tags (so the tag space
    wraps many times over a long soak); the backlog is soft-capped so
    the live span stays inside the wrap window at the benchmark's
    granularity.
    """
    rng = random.Random(seed)
    ops: List = []
    live = 0
    vt = 0.0
    while len(ops) < count:
        for _ in range(rng.randint(1, 12)):
            if len(ops) >= count:
                break
            vt += rng.random() * 30
            finish = max(0.0, vt + rng.random() * 200 - 20)
            ops.append(("push", finish, len(ops)))
            live += 1
        pops = rng.randint(1, 12)
        if live > max_backlog:
            pops = live - max_backlog // 2
        for _ in range(min(pops, live)):
            if len(ops) >= count:
                break
            ops.append(("pop",))
            live -= 1
    return ops


def make_flow_ops(
    count: int,
    seed: int,
    *,
    flows: int = 256,
    max_backlog: int = 512,
) -> List:
    """A flow-attributed variant of :func:`make_mixed_ops`.

    Same bursty, drifting-virtual-time shape, but every push carries a
    flow id from a bounded population instead of a sequence number —
    the routing key the scheduling fabric partitions on.  Bursts stick
    to a handful of flows (arrivals are per-session trains in a real
    scheduler), so spill and rebalance pressure is realistic rather
    than perfectly pre-mixed.
    """
    rng = random.Random(seed)
    ops: List = []
    live = 0
    vt = 0.0
    while len(ops) < count:
        burst_flows = [rng.randrange(flows) for _ in range(rng.randint(1, 4))]
        for _ in range(rng.randint(1, 12)):
            if len(ops) >= count:
                break
            vt += rng.random() * 30
            finish = max(0.0, vt + rng.random() * 200 - 20)
            ops.append(("push", finish, rng.choice(burst_flows)))
            live += 1
        pops = rng.randint(1, 12)
        if live > max_backlog:
            pops = live - max_backlog // 2
        for _ in range(min(pops, live)):
            if len(ops) >= count:
                break
            ops.append(("pop",))
            live -= 1
    return ops


def _drive_per_op(store: HardwareTagStore, ops: List) -> List:
    served = []
    for op in ops:
        if op[0] == "push":
            store.push(op[1], op[2])
        else:
            served.append(store.pop_min())
    return served


def _drive_batched(store: HardwareTagStore, ops: List) -> List:
    served: List = []
    pending_push: List = []
    pending_pop = 0
    for op in ops:
        if op[0] == "push":
            if pending_pop:
                served.extend(store.pop_batch(pending_pop))
                pending_pop = 0
            pending_push.append((op[1], op[2]))
        else:
            if pending_push:
                store.push_batch(pending_push)
                pending_push = []
            pending_pop += 1
    if pending_push:
        store.push_batch(pending_push)
    if pending_pop:
        served.extend(store.pop_batch(pending_pop))
    return served


def reference_trace_path(baseline_path: str) -> str:
    """``BENCH_sort_retrieve.json`` → ``BENCH_sort_retrieve.trace.jsonl``."""
    if baseline_path.endswith(".json"):
        return baseline_path[: -len(".json")] + ".trace.jsonl"
    return baseline_path + ".trace.jsonl"


def record_reference_trace(
    destination: Optional[str] = None,
    *,
    seed: int = 20060101,
    ops: int = REFERENCE_TRACE_OPS,
) -> Tuple[List, Dict]:
    """Drive the deterministic forensic workload with a live tracer.

    A short per-op mixed soak (same generator as the headline scenario)
    whose full event stream is the *forensic reference*: committed
    alongside the baseline JSON so that a ``--check`` regression can be
    diffed operation-by-operation against the exact run that set the
    bar.  Returns ``(events, header)``; when ``destination`` is given
    the framed JSONL trace is also streamed there.

    Built directly on the tracer rather than :mod:`repro.obs.runner`
    (which imports this module — the dependency must stay one-way).
    """
    tracer = Tracer(buffer_size=max(ops * 4, 4096), sink=destination)
    store = HardwareTagStore(granularity=8.0, tracer=tracer)
    tracer.write_header(
        build_trace_header(
            seed=seed,
            mode="per_op",
            config=store.describe(),
            ops=ops,
            purpose="bench_reference",
        )
    )
    _drive_per_op(store, make_mixed_ops(ops, seed))
    tracer.flush()
    tracer.close()
    return tracer.events(), tracer.header


def _forensic_diff(baseline_path: str, seed: int) -> None:
    """On a ``--check`` regression, diff reference traces to stderr."""
    trace_path = reference_trace_path(baseline_path)
    try:
        reference = read_trace(trace_path)
    except FileNotFoundError:
        print(
            f"  (no reference trace at {trace_path} — schema-2 era "
            f"baseline; rerun 'python -m repro bench' to record one and "
            f"enable forensic diffs)",
            file=sys.stderr,
        )
        return
    events, header = record_reference_trace(seed=seed)
    try:
        diff = diff_traces(
            reference.events,
            events,
            header_a=reference.header,
            header_b=header,
            labels=(trace_path, "current run"),
        )
    except TraceCompatibilityError as error:
        print(f"  (forensic diff skipped: {error})", file=sys.stderr)
        return
    print("\nforensic trace diff (baseline vs current):", file=sys.stderr)
    for line in diff.report().splitlines():
        print(f"  {line}", file=sys.stderr)


def _bench_headline(count: int, seed: int, mode: str = "gate") -> Dict:
    """The acceptance scenario: 100k mixed ops, per-op vs batched.

    Both disciplines run best-of-:data:`BENCH_REPEATS` so the reported
    speedup is a ratio of two clean timings, not of whichever side a
    scheduler burst happened to land on.
    """
    granularity = 8.0
    ops = make_mixed_ops(count, seed)

    def best_of(batched: bool):
        drive = _drive_batched if batched else _drive_per_op
        best = None
        for _ in range(BENCH_REPEATS):
            store = HardwareTagStore(
                granularity=granularity, fast_mode=batched, mode=mode
            )
            seconds, served = _timed(lambda: drive(store, ops))
            if best is None or seconds < best[0]:
                best = (seconds, served, store)
        return best

    seconds_per_op, served_per_op, store = best_of(batched=False)
    per_op = _scenario(
        "mixed_per_op:headline",
        ops=count,
        seconds=seconds_per_op,
        accesses=store.circuit.registry.total().total,
        cycles=store.cycles,
    )

    seconds_batch, served_batch, store = best_of(batched=True)
    batched = _scenario(
        "mixed_batched:headline",
        ops=count,
        seconds=seconds_batch,
        accesses=store.circuit.registry.total().total,
        cycles=store.cycles,
    )

    if served_per_op != served_batch:
        raise AssertionError(
            "batched mixed soak served a different sequence than per-op: "
            "timings are meaningless, refusing to report them"
        )
    speedup = seconds_per_op / seconds_batch if seconds_batch > 0 else 0.0
    return {
        "name": "mixed_100k_paper_default",
        "ops": count,
        "granularity": granularity,
        "per_op": per_op,
        "batched": batched,
        "speedup": round(speedup, 2),
        "served_orders_identical": True,
    }


def _bench_fabric(
    count: int, seed: int, mode: str = "gate"
) -> Tuple[Dict, List[Dict]]:
    """The scale-out phase: shard sweep vs one circuit, batched paths.

    Drives the same flow-attributed mixed workload through a single
    :class:`HardwareTagStore` and through
    :class:`~repro.fabric.fabric.ScheduleFabric` at each sweep size.
    Two speed measures per fabric:

    * wall throughput — honest about the Python facade's routing cost
      (regression-checked like every scenario);
    * **modeled speedup** — single-circuit cycles over fabric *makespan*
      cycles.  The shards are independent parallel hardware, so makespan
      is the fabric's busy time; this is the paper-units scale-out claim
      the full preset gates on (:data:`FABRIC_MIN_MODELED_SPEEDUP`).

    The one-shard fabric must serve the exact single-circuit sequence
    (the degenerate-fabric equivalence) before any number is reported.
    Also records tournament comparisons per op — the aggregation
    overhead, which grows O(log shards) while modeled speedup grows
    ~linearly.
    """
    from ..fabric.fabric import ScheduleFabric

    granularity = 8.0
    ops = make_flow_ops(count, seed)

    best = None
    for _ in range(BENCH_REPEATS):
        store = HardwareTagStore(
            granularity=granularity, fast_mode=True, mode=mode
        )
        seconds, served_single = _timed(lambda: _drive_batched(store, ops))
        if best is None or seconds < best[0]:
            best = (seconds, served_single, store)
    seconds, served_single, store = best
    single_cycles = store.cycles
    scenarios = [
        _scenario(
            "fabric_single_circuit:batched",
            ops=count,
            seconds=seconds,
            accesses=store.circuit.registry.total().total,
            cycles=single_cycles,
        )
    ]

    sweep: List[Dict] = []
    for shards in FABRIC_SHARD_SWEEP:
        best = None
        for _ in range(BENCH_REPEATS):
            fabric = ScheduleFabric(
                shards=shards, granularity=granularity, fast_mode=True,
                mode=mode,
            )
            seconds, served = _timed(lambda: _drive_batched(fabric, ops))
            if best is None or seconds < best[0]:
                best = (seconds, served, fabric)
        seconds, served, fabric = best
        if shards == 1 and served != served_single:
            raise AssertionError(
                "one-shard fabric served a different sequence than the "
                "bare circuit: the sweep is not measuring the same work, "
                "refusing to report it"
            )
        accesses = sum(
            shard_store.circuit.registry.total().total
            for shard_store in fabric.stores
        )
        scenario = _scenario(
            f"fabric_batched:shards={shards}",
            ops=count,
            seconds=seconds,
            accesses=accesses,
            # _scenario's cycles_per_op uses modeled (makespan) time —
            # the quantity that shrinks as the fabric widens.
            cycles=fabric.cycles,
            shards=shards,
            cycles_total=fabric.cycles_total,
            modeled_speedup=round(single_cycles / fabric.cycles, 2),
            comparisons_per_op=round(
                fabric.tournament.comparisons / count, 4
            ),
            spills=fabric.manager.spill_count,
            rebalances=fabric.manager.rebalance_count,
        )
        scenarios.append(scenario)
        sweep.append(
            {
                "shards": shards,
                "modeled_speedup": scenario["modeled_speedup"],
                "comparisons_per_op": scenario["comparisons_per_op"],
                "ops_per_second": scenario["ops_per_second"],
            }
        )

    summary = {
        "name": "fabric_shard_sweep",
        "ops": count,
        "granularity": granularity,
        "single_circuit_cycles": single_cycles,
        "sweep": sweep,
        "max_shards": FABRIC_SHARD_SWEEP[-1],
        "modeled_speedup": sweep[-1]["modeled_speedup"],
        "min_modeled_speedup": FABRIC_MIN_MODELED_SPEEDUP,
        "one_shard_order_identical": True,
    }
    return summary, scenarios


def _registry_snapshot(store: HardwareTagStore) -> Dict[str, Tuple[int, int]]:
    """Per-structure (reads, writes) — the exact-parity comparison key."""
    registry = store.circuit.registry
    return {
        name: (registry[name].reads, registry[name].writes)
        for name in registry.names()
    }


def _bench_turbo(count: int, seed: int) -> Tuple[Dict, List[Dict]]:
    """The turbo engine phase: both engines, both drive modes, exact parity.

    Each of the four variants (gate/turbo × per-op/batched) runs the
    identical headline-shaped workload best-of-:data:`BENCH_REPEATS`.
    Before any speedup
    is reported the phase asserts the turbo engine is *bit-identical*
    to the gate-accurate engine in everything but wall clock: the
    served sequences, the circuit cycle counters, and the per-structure
    read/write counters must match exactly (same drive mode compared
    against same drive mode).  The headline number is turbo per-op over
    gate per-op — the "≥3× with exact parity" claim — and
    ``turbo_vs_batched`` shows per-op turbo clearing even the batched
    gate path.
    """
    granularity = 8.0
    ops = make_mixed_ops(count, seed)

    def best_of_three(turbo: bool, batched: bool):
        drive = _drive_batched if batched else _drive_per_op
        best = None
        for _ in range(BENCH_REPEATS):
            store = HardwareTagStore(
                granularity=granularity, fast_mode=batched, turbo=turbo
            )
            seconds, served = _timed(lambda: drive(store, ops))
            if best is None or seconds < best[0]:
                best = (seconds, served, store)
        return best

    variants: Dict[str, Tuple[float, List, HardwareTagStore]] = {}
    scenarios: List[Dict] = []
    for key, turbo, batched in (
        ("gate_per_op", False, False),
        ("gate_batched", False, True),
        ("turbo_per_op", True, False),
        ("turbo_batched", True, True),
    ):
        seconds, served, store = best_of_three(turbo, batched)
        variants[key] = (seconds, served, store)
        scenario = _scenario(
            f"turbo_phase_{key}:headline",
            ops=count,
            seconds=seconds,
            accesses=store.circuit.registry.total().total,
            cycles=store.cycles,
            engine="turbo" if turbo else "gate",
        )
        if turbo:
            scenario["head_cache_hits"] = store.circuit.head_cache_hits
        scenarios.append(scenario)

    reference_served = variants["gate_per_op"][1]
    for key in ("gate_batched", "turbo_per_op", "turbo_batched"):
        if variants[key][1] != reference_served:
            raise AssertionError(
                f"turbo phase: {key} served a different sequence than "
                "gate_per_op — engines are not equivalent, refusing to "
                "report timings"
            )
    for gate_key, turbo_key in (
        ("gate_per_op", "turbo_per_op"),
        ("gate_batched", "turbo_batched"),
    ):
        gate_store = variants[gate_key][2]
        turbo_store = variants[turbo_key][2]
        if gate_store.cycles != turbo_store.cycles:
            raise AssertionError(
                f"turbo phase: {turbo_key} cycles {turbo_store.cycles} != "
                f"{gate_key} cycles {gate_store.cycles}"
            )
        if _registry_snapshot(gate_store) != _registry_snapshot(turbo_store):
            raise AssertionError(
                f"turbo phase: per-structure access counters of "
                f"{turbo_key} diverge from {gate_key}"
            )

    gate_seconds = variants["gate_per_op"][0]
    turbo_seconds = variants["turbo_per_op"][0]
    batched_seconds = variants["gate_batched"][0]
    summary = {
        "name": "turbo_engine_parity",
        "ops": count,
        "granularity": granularity,
        "gate_per_op": scenarios[0],
        "gate_batched": scenarios[1],
        "turbo_per_op": scenarios[2],
        "turbo_batched": scenarios[3],
        "speedup": round(
            gate_seconds / turbo_seconds if turbo_seconds > 0 else 0.0, 2
        ),
        "turbo_vs_batched": round(
            batched_seconds / turbo_seconds if turbo_seconds > 0 else 0.0, 2
        ),
        "min_speedup": TURBO_MIN_SPEEDUP,
        "served_orders_identical": True,
        "accounting_identical": True,
        "head_cache_hits": variants["turbo_per_op"][2].circuit.head_cache_hits,
    }
    return summary, scenarios


def _bench_timer(count: int, seed: int) -> Tuple[Dict, List[Dict]]:
    """The timer-churn phase: dynamic updates (remove/retag) under load.

    Runs the :mod:`repro.net.timer` churn scenario — an insert/cancel/
    repin-heavy workload where most entries never reach service — on
    both engines, best-of-:data:`BENCH_REPEATS` each.  Before timings
    are reported the phase asserts exact parity: identical fired
    sequences and per-structure read/write counters, identical cycle
    totals, and the workload's own checks (deadline-ordered firing,
    armed = fired + cancelled + pending conservation) must hold.  This
    is the regression fence for the removal/retag cost model: any
    change to the unlink path, the marker-clear discipline, or the
    head-path cache invalidation shows up in ``cycles_per_op`` /
    ``accesses_per_op`` here.
    """
    from ..net.timer import run_timer_soak

    variants: Dict[str, Tuple[float, object]] = {}
    scenarios: List[Dict] = []
    for key, turbo in (("gate", False), ("turbo", True)):
        best = None
        for _ in range(BENCH_REPEATS):
            seconds, run = _timed(
                lambda: run_timer_soak(
                    pattern="churn", events=count, seed=seed, turbo=turbo
                )
            )
            if best is None or seconds < best[0]:
                best = (seconds, run)
        seconds, run = best
        if not run.served_in_order:
            raise AssertionError(
                f"timer phase ({key}): timers fired out of deadline order"
            )
        if not run.conserved:
            raise AssertionError(
                f"timer phase ({key}): timer conservation broken"
            )
        variants[key] = best
        scenario = _scenario(
            f"timer_churn_{key}:dynamic",
            ops=run.operations,
            seconds=seconds,
            accesses=run.backend.circuit.registry.total().total,
            cycles=run.cycles,
            engine=key,
            events=count,
            armed=run.armed,
            cancelled=run.cancelled,
            repinned=run.repinned,
            fired=run.fired,
        )
        if turbo:
            scenario["head_cache_hits"] = run.backend.circuit.head_cache_hits
        scenarios.append(scenario)

    gate_run = variants["gate"][1]
    turbo_run = variants["turbo"][1]
    if gate_run.fired_deadlines != turbo_run.fired_deadlines:
        raise AssertionError(
            "timer phase: turbo fired a different sequence than gate — "
            "engines are not equivalent, refusing to report timings"
        )
    if gate_run.cycles != turbo_run.cycles:
        raise AssertionError(
            f"timer phase: turbo cycles {turbo_run.cycles} != gate "
            f"cycles {gate_run.cycles}"
        )
    if _registry_snapshot(gate_run.backend) != _registry_snapshot(
        turbo_run.backend
    ):
        raise AssertionError(
            "timer phase: per-structure access counters diverge between "
            "engines"
        )

    gate_seconds = variants["gate"][0]
    turbo_seconds = variants["turbo"][0]
    summary = {
        "name": "timer_churn",
        "pattern": "churn",
        "events": count,
        "armed": gate_run.armed,
        "cancelled": gate_run.cancelled,
        "repinned": gate_run.repinned,
        "fired": gate_run.fired,
        "gate": scenarios[0],
        "turbo": scenarios[1],
        "speedup": round(
            gate_seconds / turbo_seconds if turbo_seconds > 0 else 0.0, 2
        ),
        "served_orders_identical": True,
        "accounting_identical": True,
    }
    return summary, scenarios


def _bench_vector(
    count: int, seed: int
) -> Tuple[Optional[Dict], List[Dict]]:
    """The vector engine phase: wide-batch drains on the array data plane.

    The workload is the shape the numpy engine exists for — rounds of
    one :data:`VECTOR_BATCH_WIDTH`-wide ``insert_batch`` followed by one
    ``dequeue_batch`` of the same width, so a whole tag space's worth of
    logical operations retires per array op.  Four variants run it
    best-of-:data:`BENCH_REPEATS`: the gate engine batched (the
    reference service order), the turbo engine per-op (the denominator
    of the headline claim) and batched, and the vector engine batched.
    Every variant's full served sequence must match the gate reference
    element for element *before* any timing is reported; the headline
    number is vector batched over turbo per-op, gated on
    :data:`VECTOR_MIN_SPEEDUP`.

    Returns ``(None, [])`` when numpy is unavailable — the rest of the
    suite (and the baseline check) degrades gracefully on hosts without
    the optional array stack.
    """
    if numpy_or_none() is None:
        return None, []
    width = VECTOR_BATCH_WIDTH
    round_count = max(4, count // (2 * width))
    total_ops = round_count * 2 * width
    space = PAPER_FORMAT.capacity
    rng = random.Random(seed)
    rounds: List[List[int]] = []
    base = 0
    for _ in range(round_count):
        start = base
        # Nondecreasing in modular order (duplicates adjacent), so the
        # batched paths' sorted-allocation addresses coincide with the
        # per-op path's input-order addresses and the four variants can
        # be compared ServedTag-for-ServedTag, address included.
        rounds.append(
            [
                (start + (i * (space // 2)) // width) % space
                for i in range(width)
            ]
        )
        base = (base + rng.randrange(32, 96)) % space

    def drive_batched(circuit) -> List:
        served: List = []
        extend = served.extend
        for tags in rounds:
            circuit.insert_batch(tags)
            extend(circuit.dequeue_batch(width))
        return served

    def drive_per_op(circuit) -> List:
        served: List = []
        append = served.append
        for tags in rounds:
            for tag in tags:
                circuit.insert(tag)
            for _ in range(width):
                append(circuit.dequeue_min())
        return served

    def timed_window(drive, circuit) -> float:
        """Seconds per pass over a >= MIN_TIMED_WALL_SECONDS window.

        Every drive() fully drains the circuit, so fast variants repeat
        until the measurement spans a stable wall-clock window — one
        ~10ms pass (the vector engine on the smoke preset) is
        scheduler-noise-bound on a busy host.  The collector is paused
        for the window (pyperf-style, applied to every variant alike):
        allocation-heavy drives otherwise spend a machine-dependent
        slice of their wall inside gen-0 collections.
        """
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            passes = 0
            start = time.perf_counter()
            while True:
                drive(circuit)
                passes += 1
                elapsed = time.perf_counter() - start
                if elapsed >= MIN_TIMED_WALL_SECONDS or passes >= 64:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        return elapsed / passes

    specs = (
        ("gate_batched", "gate", True),
        ("turbo_per_op", "turbo", False),
        ("turbo_batched", "turbo", True),
        ("vector_batched", "vector", True),
    )
    # One clean pass per variant for the deterministic counters
    # (accesses, cycles) and the served-order parity check; the timed
    # circuits below host several passes each.
    probes: Dict[str, Tuple[List, object]] = {}
    drives: Dict[str, Tuple] = {}
    for key, mode, batched in specs:
        drive = drive_batched if batched else drive_per_op
        probe = make_circuit(
            PAPER_FORMAT, mode=mode, capacity=2 * width, modular=True
        )
        probes[key] = (drive(probe), probe)
        drives[key] = (
            drive,
            make_circuit(
                PAPER_FORMAT, mode=mode, capacity=2 * width, modular=True
            ),
        )
    # Interleave the variants across repeats (round-robin, best-of):
    # measuring one variant's repeats back to back and the next
    # variant's afterwards lets CPU frequency drift between the two
    # windows masquerade as an engine-speed difference.
    best: Dict[str, float] = {}
    for _ in range(BENCH_REPEATS):
        for key, _mode, _batched in specs:
            drive, circuit = drives[key]
            seconds = timed_window(drive, circuit)
            if key not in best or seconds < best[key]:
                best[key] = seconds

    variants: Dict[str, Tuple[float, List, object]] = {}
    scenarios: List[Dict] = []
    for key, mode, batched in specs:
        served, circuit = probes[key]
        seconds = best[key]
        variants[key] = (seconds, served, circuit)
        scenarios.append(
            _scenario(
                f"vector_phase_{key}:widebatch",
                ops=total_ops,
                seconds=seconds,
                accesses=circuit.registry.total().total,
                cycles=circuit.cycles,
                engine=mode,
            )
        )

    reference_served = variants["gate_batched"][1]
    for key in ("turbo_per_op", "turbo_batched", "vector_batched"):
        if variants[key][1] != reference_served:
            raise AssertionError(
                f"vector phase: {key} served a different sequence than "
                "gate_batched — engines are not equivalent, refusing to "
                "report timings"
            )

    turbo_seconds = variants["turbo_per_op"][0]
    turbo_batched_seconds = variants["turbo_batched"][0]
    vector_seconds = variants["vector_batched"][0]
    summary = {
        "name": "vector_engine_widebatch",
        "ops": total_ops,
        "width": width,
        "rounds": round_count,
        "gate_batched": scenarios[0],
        "turbo_per_op": scenarios[1],
        "turbo_batched": scenarios[2],
        "vector_batched": scenarios[3],
        "speedup": round(
            turbo_seconds / vector_seconds if vector_seconds > 0 else 0.0, 2
        ),
        "vector_vs_turbo_batched": round(
            turbo_batched_seconds / vector_seconds
            if vector_seconds > 0
            else 0.0,
            2,
        ),
        "min_speedup": VECTOR_MIN_SPEEDUP,
        "served_orders_identical": True,
    }
    return summary, scenarios


def _bench_distributions(
    count: int, mixed_count: int, seed: int, mode: str = "gate"
) -> Dict:
    """Per-phase distribution data (machine-independent, untimed).

    Runs *fresh*, instrumented circuits — the timed scenarios above are
    never traced, so their wall numbers stay comparable to pre-telemetry
    baselines.  Three phases on the paper format and default matcher:

    * ``insert`` / ``dequeue`` — per-op access-count distributions of a
      sorted-load fill and drain;
    * ``mixed`` — the bursty headline-shaped workload through the
      hardware store with a live tracer, summarizing per-op accesses,
      occupancy, storage free-list depth, and clamp magnitudes.
    """
    fmt = PAPER_FORMAT
    tags = _sorted_tags(fmt, count, seed)
    circuit = make_circuit(fmt, capacity=count, mode=mode)
    registry = circuit.registry

    insert_hist = Histogram()
    before = registry.total().total
    for tag in tags:
        circuit.insert(tag)
        after = registry.total().total
        insert_hist.record(after - before)
        before = after

    dequeue_hist = Histogram()
    for _ in range(count):
        circuit.dequeue_min()
        after = registry.total().total
        dequeue_hist.record(after - before)
        before = after

    probes = StandardProbes()
    tracer = Tracer(buffer_size=1, observers=[probes])  # instruments only
    store = HardwareTagStore(granularity=8.0, mode=mode, tracer=tracer)
    _drive_per_op(store, make_mixed_ops(mixed_count, seed))
    instruments = probes.instruments
    mixed = {
        name: instruments.hist(name).summary()
        for name in ("op_accesses", "occupancy", "free_list_depth")
    }
    if "clamp_quanta" in instruments:
        mixed["clamp_quanta"] = instruments.hist("clamp_quanta").summary()

    return {
        "insert": insert_hist.summary(),
        "dequeue": dequeue_hist.summary(),
        "mixed": mixed,
    }


def run_bench(
    *, preset: str = "full", seed: int = 20060101, mode: str = "gate"
) -> Dict:
    """Run the suite; returns the JSON-ready result document.

    ``mode`` selects the engine the matcher/size/headline/fabric/
    distribution phases run on; the turbo and vector phases always
    measure their engines against each other.  ``mode="vector"`` skips
    the matcher sweep — the array engine finds its minimum with a
    bucket-count scan, so there is no matcher to sweep — and requires
    numpy (a :class:`~repro.hwsim.errors.ConfigurationError` names the
    missing dependency otherwise).
    """
    if mode not in VALID_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    if preset == "full":
        matcher_count = 4096
        size_count = {"w8": 256, "w12": 4096, "w16": 8192}
        headline_count = 100_000
        fabric_count = 40_000
        timer_count = 40_000
    elif preset == "smoke":
        matcher_count = 256
        size_count = {"w8": 128, "w12": 256, "w16": 256}
        headline_count = 2_000
        fabric_count = 2_000
        timer_count = 2_000
    else:
        raise ValueError(f"unknown preset {preset!r}")

    scenarios: List[Dict] = []
    if mode != "vector":
        # The matcher sweep exercises the gate/turbo priority matchers;
        # the vector engine has no matcher stage to sweep.
        for name, matcher in sorted(ALL_MATCHERS.items()):
            scenarios.extend(
                _bench_insert_dequeue(
                    f"matcher={name}", PAPER_FORMAT, matcher, matcher_count,
                    seed, mode=mode,
                )
            )
    for label, fmt in SIZE_SWEEP:
        scenarios.extend(
            _bench_insert_dequeue(
                f"size={label}",
                fmt,
                DEFAULT_MATCHER if mode != "vector" else None,
                size_count[label],
                seed,
                mode=mode,
            )
        )
    headline = _bench_headline(headline_count, seed, mode=mode)
    fabric, fabric_scenarios = _bench_fabric(fabric_count, seed, mode=mode)
    scenarios.extend(fabric_scenarios)
    turbo_phase, turbo_scenarios = _bench_turbo(headline_count, seed)
    scenarios.extend(turbo_scenarios)
    timer_phase, timer_scenarios = _bench_timer(timer_count, seed)
    scenarios.extend(timer_scenarios)
    vector_phase, vector_scenarios = _bench_vector(headline_count, seed)
    scenarios.extend(vector_scenarios)
    distributions = _bench_distributions(
        size_count["w12"], min(headline_count, 10_000), seed, mode=mode
    )
    return {
        "schema": _SCHEMA,
        "preset": preset,
        "mode": mode,
        "seed": seed,
        "machine": machine_info(),
        "headline": headline,
        "fabric": fabric,
        "turbo": turbo_phase,
        "timer": timer_phase,
        "vector": vector_phase,
        "scenarios": scenarios,
        "distributions": distributions,
    }


def check_against_baseline(
    current: Dict,
    baseline: Dict,
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh run to the committed baseline.

    Returns human-readable regression messages (empty = pass).  Wall
    throughput may drop by up to ``tolerance`` — but only scenarios that
    ran for at least :data:`MIN_TIMED_WALL_SECONDS` in *both* runs are
    wall-compared, because shorter timings are noise (the smoke preset
    falls almost entirely under the floor).  Absolute throughput is
    first divided by the ratio of the two documents' calibration speed
    scores (:func:`machine_speed_score`), so a host that is uniformly
    slower or faster than when the baseline was recorded does not
    masquerade as a code change; within-run speedup ratios need no such
    normalization because both sides of a ratio share the machine
    state.  Per-op access and cycle counts are deterministic, so the
    same tolerance bounds noise-free growth there at every scale.
    """
    problems: List[str] = []
    old_cal = (baseline.get("machine") or {}).get("calibration_ops_per_second")
    new_cal = (current.get("machine") or {}).get("calibration_ops_per_second")
    scale = (new_cal / old_cal) if old_cal and new_cal else 1.0
    if baseline.get("preset") != current.get("preset"):
        problems.append(
            f"baseline preset {baseline.get('preset')!r} does not match "
            f"current run {current.get('preset')!r}; regenerate the baseline"
        )
        return problems
    if baseline.get("mode", "gate") != current.get("mode", "gate"):
        problems.append(
            f"baseline mode {baseline.get('mode', 'gate')!r} does not match "
            f"current run {current.get('mode', 'gate')!r}; the engines have "
            "different wall-clock profiles, regenerate the baseline"
        )
        return problems
    old_scenarios = {s["name"]: s for s in baseline.get("scenarios", ())}
    new_scenarios = {s["name"]: s for s in current.get("scenarios", ())}
    for name, old in sorted(old_scenarios.items()):
        new = new_scenarios.get(name)
        if new is None:
            if (
                name.startswith("vector_phase_")
                and current.get("vector") is None
            ):
                # The vector phase skips itself on hosts without numpy;
                # that is graceful degradation, not a regression.
                continue
            problems.append(f"scenario {name} disappeared from the suite")
            continue
        timed = (
            old["seconds"] >= MIN_TIMED_WALL_SECONDS
            and new["seconds"] >= MIN_TIMED_WALL_SECONDS
        )
        floor = old["ops_per_second"] * (1.0 - tolerance)
        normalized = new["ops_per_second"] / scale
        if timed and normalized < floor:
            qualifier = (
                "" if scale == 1.0
                else f" ({normalized:.0f} machine-normalized)"
            )
            problems.append(
                f"{name}: throughput {new['ops_per_second']:.0f} ops/s"
                f"{qualifier} fell "
                f">{tolerance:.0%} below baseline {old['ops_per_second']:.0f}"
            )
        for metric in ("accesses_per_op", "cycles_per_op"):
            if new[metric] > old[metric] * (1.0 + tolerance):
                problems.append(
                    f"{name}: {metric} {new[metric]} grew >{tolerance:.0%} "
                    f"over baseline {old[metric]}"
                )
    old_head = baseline.get("headline", {})
    new_head = current.get("headline", {})
    if old_head and new_head:
        timed = all(
            side.get("seconds", 0.0) >= MIN_TIMED_WALL_SECONDS
            for side in (
                old_head.get("per_op", {}),
                old_head.get("batched", {}),
                new_head.get("per_op", {}),
                new_head.get("batched", {}),
            )
        )
        floor = old_head.get("speedup", 0.0) * (1.0 - tolerance)
        if timed and new_head.get("speedup", 0.0) < floor:
            problems.append(
                f"headline batched speedup {new_head.get('speedup')}x fell "
                f">{tolerance:.0%} below baseline {old_head.get('speedup')}x"
            )
    old_fabric = baseline.get("fabric", {})
    new_fabric = current.get("fabric", {})
    if old_fabric and new_fabric:
        # Modeled speedup is cycle-count arithmetic — deterministic per
        # seed — so unlike wall numbers it needs no timing floor.
        floor = old_fabric.get("modeled_speedup", 0.0) * (1.0 - tolerance)
        if new_fabric.get("modeled_speedup", 0.0) < floor:
            problems.append(
                f"fabric modeled speedup "
                f"{new_fabric.get('modeled_speedup')}x at "
                f"{new_fabric.get('max_shards')} shards fell "
                f">{tolerance:.0%} below baseline "
                f"{old_fabric.get('modeled_speedup')}x"
            )
    old_turbo = baseline.get("turbo", {})
    new_turbo = current.get("turbo", {})
    if old_turbo and new_turbo:
        timed = all(
            side.get("seconds", 0.0) >= MIN_TIMED_WALL_SECONDS
            for side in (
                old_turbo.get("gate_per_op", {}),
                old_turbo.get("turbo_per_op", {}),
                new_turbo.get("gate_per_op", {}),
                new_turbo.get("turbo_per_op", {}),
            )
        )
        floor = old_turbo.get("speedup", 0.0) * (1.0 - tolerance)
        if timed and new_turbo.get("speedup", 0.0) < floor:
            problems.append(
                f"turbo engine speedup {new_turbo.get('speedup')}x fell "
                f">{tolerance:.0%} below baseline {old_turbo.get('speedup')}x"
            )
    old_vector = baseline.get("vector") or {}
    new_vector = current.get("vector") or {}
    if old_vector and new_vector:
        # The vector side never reaches the wall floor (that is the
        # point of the engine), so the floor is fenced on the turbo
        # per-op denominator alone.
        timed = all(
            side.get("seconds", 0.0) >= MIN_TIMED_WALL_SECONDS
            for side in (
                old_vector.get("turbo_per_op", {}),
                new_vector.get("turbo_per_op", {}),
            )
        )
        floor = old_vector.get("speedup", 0.0) * (1.0 - tolerance)
        if timed and new_vector.get("speedup", 0.0) < floor:
            problems.append(
                f"vector engine speedup {new_vector.get('speedup')}x fell "
                f">{tolerance:.0%} below baseline "
                f"{old_vector.get('speedup')}x"
            )
    old_timer = baseline.get("timer", {})
    new_timer = current.get("timer", {})
    if old_timer and new_timer:
        # The timer scenarios' deterministic metrics (cycles/accesses
        # per op) are covered by the generic scenario loop above; here
        # only the engine-speedup ratio needs a fenced floor.
        timed = all(
            side.get("seconds", 0.0) >= MIN_TIMED_WALL_SECONDS
            for side in (
                old_timer.get("gate", {}),
                old_timer.get("turbo", {}),
                new_timer.get("gate", {}),
                new_timer.get("turbo", {}),
            )
        )
        floor = old_timer.get("speedup", 0.0) * (1.0 - tolerance)
        if timed and new_timer.get("speedup", 0.0) < floor:
            problems.append(
                f"timer-churn turbo speedup {new_timer.get('speedup')}x "
                f"fell >{tolerance:.0%} below baseline "
                f"{old_timer.get('speedup')}x"
            )
    return problems


def _format_summary(document: Dict) -> str:
    lines = [
        f"perf suite ({document['preset']} preset, "
        f"{document.get('mode', 'gate')} mode, seed {document['seed']})",
        "",
        f"  {'scenario':<38} {'ops/s':>12} {'acc/op':>8} {'cyc/op':>8}",
    ]
    for scenario in document["scenarios"]:
        lines.append(
            f"  {scenario['name']:<38} {scenario['ops_per_second']:>12,.0f} "
            f"{scenario['accesses_per_op']:>8.2f} "
            f"{scenario['cycles_per_op']:>8.2f}"
        )
    headline = document["headline"]
    lines += [
        "",
        f"  headline {headline['name']}: "
        f"{headline['per_op']['ops_per_second']:,.0f} ops/s per-op vs "
        f"{headline['batched']['ops_per_second']:,.0f} ops/s batched "
        f"({headline['speedup']}x)",
    ]
    fabric = document.get("fabric")
    if fabric:
        lines += [
            "",
            "  fabric shard sweep (modeled speedup / tournament cmp per op):",
        ]
        for entry in fabric["sweep"]:
            lines.append(
                f"    shards={entry['shards']:<3} "
                f"{entry['modeled_speedup']:>6.2f}x  "
                f"{entry['comparisons_per_op']:.2f} cmp/op  "
                f"{entry['ops_per_second']:,.0f} ops/s wall"
            )
    turbo = document.get("turbo")
    if turbo:
        lines += [
            "",
            f"  turbo engine: "
            f"{turbo['turbo_per_op']['ops_per_second']:,.0f} ops/s per-op vs "
            f"{turbo['gate_per_op']['ops_per_second']:,.0f} ops/s gate "
            f"({turbo['speedup']}x; {turbo['turbo_vs_batched']}x over the "
            f"batched gate path; {turbo['head_cache_hits']} head-cache hits; "
            f"parity exact)",
        ]
    vector = document.get("vector")
    if vector:
        lines += [
            "",
            f"  vector engine ({vector['rounds']} rounds x "
            f"{vector['width']}-wide batches): "
            f"{vector['vector_batched']['ops_per_second']:,.0f} ops/s vs "
            f"{vector['turbo_per_op']['ops_per_second']:,.0f} ops/s turbo "
            f"per-op ({vector['speedup']}x; "
            f"{vector['vector_vs_turbo_batched']}x over the batched turbo "
            f"path; parity exact)",
        ]
    timer = document.get("timer")
    if timer:
        lines += [
            "",
            f"  timer churn ({timer['events']} events: {timer['armed']} "
            f"armed, {timer['cancelled']} cancelled, {timer['repinned']} "
            f"repinned, {timer['fired']} fired): "
            f"{timer['turbo']['ops_per_second']:,.0f} ops/s turbo vs "
            f"{timer['gate']['ops_per_second']:,.0f} ops/s gate "
            f"({timer['speedup']}x; parity exact)",
        ]
    distributions = document.get("distributions")
    if distributions:
        lines += ["", "  per-phase access distributions (p50/p99/max):"]
        for phase in ("insert", "dequeue"):
            s = distributions[phase]
            lines.append(
                f"    {phase:<8} {s['p50']:.0f}/{s['p99']:.0f}/{s['max']:.0f}"
                f"  (n={s['count']})"
            )
        mixed = distributions["mixed"]["op_accesses"]
        lines.append(
            f"    {'mixed':<8} {mixed['p50']:.0f}/{mixed['p99']:.0f}/"
            f"{mixed['max']:.0f}  (n={mixed['count']})"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the sort/retrieve hot paths and manage the "
        "perf-regression baseline.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI preset (seconds, not minutes)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        # argparse %-formats help strings, so the percent sign must be
        # doubled or it swallows the rest of the text.
        help=f"compare against the baseline instead of rewriting it; "
        f"exits 1 on a >{round(REGRESSION_TOLERANCE * 100)}%% regression",
    )
    parser.add_argument(
        "--output",
        default=BASELINE_FILENAME,
        help="where to write (or read, with --check) the baseline JSON",
    )
    parser.add_argument(
        "--seed", type=int, default=20060101, help="workload seed"
    )
    parser.add_argument(
        "--mode",
        choices=tuple(VALID_MODES),
        default="gate",
        help=(
            "engine the sweep phases run on: 'gate' walks the "
            "gate-accurate model, 'turbo' uses the access-fused hot "
            "paths, 'vector' the numpy array data plane (the turbo and "
            "vector phases always measure their engines against each "
            "other)"
        ),
    )
    args = parser.parse_args(argv)
    preset = "smoke" if args.smoke else "full"

    document = run_bench(preset=preset, seed=args.seed, mode=args.mode)
    print(_format_summary(document))

    headline = document["headline"]
    # The headline amortization claim is about the scalar engines'
    # coalesced paths; the vector engine's batch claim is the vector
    # phase's own (stricter) gate below.
    if (
        preset == "full"
        and document["mode"] != "vector"
        and headline["speedup"] < HEADLINE_MIN_SPEEDUP
    ):
        print(
            f"\nFAIL: headline batched speedup {headline['speedup']}x is "
            f"below the required {HEADLINE_MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    fabric = document["fabric"]
    if (
        preset == "full"
        and fabric["modeled_speedup"] < FABRIC_MIN_MODELED_SPEEDUP
    ):
        print(
            f"\nFAIL: fabric modeled speedup {fabric['modeled_speedup']}x "
            f"at {fabric['max_shards']} shards is below the required "
            f"{FABRIC_MIN_MODELED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    turbo_phase = document["turbo"]
    if preset == "full" and turbo_phase["speedup"] < TURBO_MIN_SPEEDUP:
        print(
            f"\nFAIL: turbo engine speedup {turbo_phase['speedup']}x is "
            f"below the required {TURBO_MIN_SPEEDUP}x over the gate "
            f"per-op baseline",
            file=sys.stderr,
        )
        return 1
    if turbo_phase["turbo_vs_batched"] < 1.0:
        # Every preset (CI runs the smoke): the turbo per-op path must
        # at least clear the batched gate path's throughput.
        print(
            f"\nFAIL: turbo per-op throughput is only "
            f"{turbo_phase['turbo_vs_batched']}x the batched gate path "
            f"(must be >= 1.0x)",
            file=sys.stderr,
        )
        return 1
    vector_phase = document.get("vector")
    if vector_phase is not None and (
        vector_phase["speedup"] < VECTOR_MIN_SPEEDUP
    ):
        # Every preset: the vector phase pins its own batch width, so
        # the smoke run measures the same wide-batch shape and the gate
        # is as meaningful there as on the full preset.
        print(
            f"\nFAIL: vector engine speedup {vector_phase['speedup']}x is "
            f"below the required {VECTOR_MIN_SPEEDUP}x over the turbo "
            f"per-op baseline",
            file=sys.stderr,
        )
        return 1

    if args.check:
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except FileNotFoundError:
            print(
                f"\nFAIL: no baseline at {args.output}; run "
                "'python -m repro bench' first to create one",
                file=sys.stderr,
            )
            return 1
        for warning in machine_mismatch_warnings(document, baseline):
            print(f"WARN: {warning}", file=sys.stderr)
        problems = check_against_baseline(document, baseline)
        if problems:
            print("\nFAIL: performance regressed:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            _forensic_diff(args.output, args.seed)
            return 1
        print(f"\nOK: within {REGRESSION_TOLERANCE:.0%} of {args.output}")
        return 0

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\nbaseline written to {args.output}")
    trace_path = reference_trace_path(args.output)
    record_reference_trace(trace_path, seed=args.seed)
    print(f"reference trace written to {trace_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
