"""Performance benchmarks and the perf-regression harness.

``python -m repro bench`` times the sort/retrieve hot paths — per-op
versus batched — across matcher variants and circuit sizes, and writes a
machine-readable baseline (``BENCH_sort_retrieve.json``).  ``--check``
compares a fresh run against the committed baseline and fails loudly on
regression.  See :mod:`repro.bench.perf`.
"""

from .perf import (  # noqa: F401
    BASELINE_FILENAME,
    HEADLINE_MIN_SPEEDUP,
    REGRESSION_TOLERANCE,
    check_against_baseline,
    main,
    run_bench,
)
