"""Command-line interface: ``python -m repro <artifact>``.

Regenerates any of the paper's evaluation artifacts without pytest:

.. code-block:: console

   $ python -m repro list
   $ python -m repro table1
   $ python -m repro fig7
   $ python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .analysis import reports

#: artifact name -> (generator, description)
ARTIFACTS: Dict[str, tuple] = {
    "table1": (reports.table1, "lookup-method comparison (worst-case accesses)"),
    "table2": (reports.table2, "post-layout synthesis estimate"),
    "fig6": (reports.fig6, "drifting new-tag distribution under WFQ"),
    "fig7": (reports.fig7, "matcher delay vs word length"),
    "fig8": (reports.fig8, "matcher area vs word length"),
    "throughput": (reports.throughput, "Section IV 35.8 Mpps / 40 Gb/s chain"),
    "qos": (reports.qos, "WFQ vs round robin delay/fairness"),
    "memory": (reports.memory, "external tag-storage technologies"),
    "shapes": (reports.shapes, "branching-factor ablation sweep"),
    "demo": (reports.demo, "live sorted-service proof on the circuit"),
    "fairness": (reports.fairness, "WF2Q vs WFQ worst-case fairness burst"),
    "e2e": (reports.e2e, "end-to-end delay bounds over WFQ hop chains"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation artifacts of 'A Scalable Packet "
            "Sorting Circuit for High-Speed WFQ Packet Scheduling'."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="which artifact to regenerate ('list' shows descriptions)",
    )
    return parser


def run_artifact(name: str) -> str:
    """Generate one artifact's text."""
    generator: Callable[[], str] = ARTIFACTS[name][0]
    return generator()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name, (_, description) in sorted(ARTIFACTS.items()):
            print(f"  {name:<{width}}  {description}")
        return 0
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    try:
        for index, name in enumerate(names):
            if index:
                print()
            print(run_artifact(name))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
