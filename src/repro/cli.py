"""Command-line interface: ``python -m repro <artifact>``.

Regenerates any of the paper's evaluation artifacts without pytest:

.. code-block:: console

   $ python -m repro list
   $ python -m repro table1
   $ python -m repro fig7 --output fig7.txt
   $ python -m repro all --format json --output artifacts.json

``python -m repro bench`` runs the perf-regression suite instead (see
:mod:`repro.bench.perf` for its own flags: ``--smoke``, ``--check``),
``python -m repro obs`` runs a traced telemetry soak (see
:mod:`repro.obs.runner`), ``python -m repro fabric`` runs a traced soak
through the sharded scheduling fabric (see :mod:`repro.fabric.runner`:
``--shards``, ``--workers``, ``--monitor``, ``--checkpoint``), and
``python -m repro analyze`` runs trace forensics over archived JSONL
traces (see :mod:`repro.obs.analyze`: ``profile``, ``check``, ``diff``,
``timeline``), and ``python -m repro timer`` runs a timer-wheel workload
over the circuit's remove/retag primitives (see :mod:`repro.net.timer`:
``--pattern {churn,retransmit,expiry}``, ``--shards``, ``--monitor``).
All six subsystems share one output convention: ``--output FILE`` writes
where you say, ``--format {text,json}`` picks the representation.

``python -m repro serve`` runs the always-on WFQ scheduling server —
line-delimited JSON over TCP in front of the sorting fabric, with SLA
admission, ECN-style backpressure, snapshot/restore lifecycle, and the
live observability plane attached via ``--metrics PORT`` (see
:mod:`repro.serve.server`).  ``python -m repro client`` drives a running
server with a deterministic mixed workload (see
:mod:`repro.serve.client`).

The soak runners (``obs``, ``fabric``, ``timer``) additionally accept
``--serve PORT`` to expose the live observability plane (``/metrics``
Prometheus text, ``/health`` JSON status, ``/snapshot`` full instrument
dump) over HTTP while the soak runs, ``--watchdog SECONDS`` to arm the
progress-based stall watchdog, and — for ``obs`` and ``fabric`` —
``--flight FILE`` to auto-dump an analyze-loadable flight-recorder
window around the first invariant violation (see :mod:`repro.obs.live`,
:mod:`repro.obs.flight`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .analysis import reports

#: artifact name -> (generator, description)
ARTIFACTS: Dict[str, tuple] = {
    "table1": (reports.table1, "lookup-method comparison (worst-case accesses)"),
    "table2": (reports.table2, "post-layout synthesis estimate"),
    "fig6": (reports.fig6, "drifting new-tag distribution under WFQ"),
    "fig7": (reports.fig7, "matcher delay vs word length"),
    "fig8": (reports.fig8, "matcher area vs word length"),
    "throughput": (reports.throughput, "Section IV 35.8 Mpps / 40 Gb/s chain"),
    "qos": (reports.qos, "WFQ vs round robin delay/fairness"),
    "memory": (reports.memory, "external tag-storage technologies"),
    "shapes": (reports.shapes, "branching-factor ablation sweep"),
    "demo": (reports.demo, "live sorted-service proof on the circuit"),
    "fairness": (reports.fairness, "WF2Q vs WFQ worst-case fairness burst"),
    "e2e": (reports.e2e, "end-to-end delay bounds over WFQ hop chains"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation artifacts of 'A Scalable Packet "
            "Sorting Circuit for High-Speed WFQ Packet Scheduling'."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="which artifact to regenerate ('list' shows descriptions)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the artifact(s) here instead of stdout",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="plain text blocks or one JSON document",
    )
    return parser


def run_artifact(name: str) -> str:
    """Generate one artifact's text."""
    generator: Callable[[], str] = ARTIFACTS[name][0]
    return generator()


def render_artifacts(names: List[str], fmt: str) -> str:
    """Render the named artifacts as one text or JSON payload."""
    if fmt == "json":
        document = {
            "artifacts": [
                {
                    "name": name,
                    "description": ARTIFACTS[name][1],
                    "content": run_artifact(name),
                }
                for name in names
            ]
        }
        return json.dumps(document, indent=2) + "\n"
    blocks = [run_artifact(name) for name in names]
    return "\n\n".join(blocks) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The bench harness owns its flags; dispatch before the artifact
        # parser rejects them.  Imported lazily so artifact generation
        # never pays for the benchmark machinery.
        from .bench.perf import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "obs":
        # Same lazy dispatch for the telemetry soak runner.
        from .obs.runner import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "fabric":
        # Sharded-fabric soak runner (same lazy-import rationale).
        from .fabric.runner import main as fabric_main

        return fabric_main(argv[1:])
    if argv and argv[0] == "analyze":
        # Trace forensics: profile / check / diff / timeline.
        from .obs.analyze import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "timer":
        # Timer-wheel workloads over the remove/retag primitives.
        from .net.timer import main as timer_main

        return timer_main(argv[1:])
    if argv and argv[0] == "serve":
        # The always-on scheduling server (asyncio; lazy for the same
        # reason — artifact generation never pays for it).
        from .serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        # Load driver for a running serve endpoint.
        from .serve.client import main as client_main

        return client_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name, (_, description) in sorted(ARTIFACTS.items()):
            print(f"  {name:<{width}}  {description}")
        return 0
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    try:
        payload = render_artifacts(names, args.format)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            sys.stdout.write(payload)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
