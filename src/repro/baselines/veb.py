"""Van Emde Boas priority queue — ref. [10] of the paper.

A full recursive vEB tree over a power-of-two universe: insert, delete,
and minimum in O(log log U).  The paper cites it as the efficient software
priority queue but explicitly notes "the van Emde Boas method is
unsuitable for implementation in hardware" — its recursive memory layout
defeats the distributed-memory pipelining the multi-bit tree enables.  It
appears in Table I as the best asymptotic software row.

The vEB structure stores a *set* of values; duplicate tags (which WFQ
produces when tags are rounded) are handled with a per-value FIFO bucket
alongside the set, preserving first-come-first-served service.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from ..hwsim.stats import AccessStats
from .base import TagQueue


class _VebNode:
    """One recursive vEB node over a universe of ``universe_bits`` bits."""

    __slots__ = ("universe_bits", "min", "max", "summary", "clusters")

    def __init__(self, universe_bits: int) -> None:
        self.universe_bits = universe_bits
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.summary: Optional["_VebNode"] = None
        self.clusters: Dict[int, "_VebNode"] = {}

    @property
    def high_bits(self) -> int:
        return (self.universe_bits + 1) // 2

    @property
    def low_bits(self) -> int:
        return self.universe_bits - self.high_bits

    def _high(self, value: int) -> int:
        return value >> self.low_bits

    def _low(self, value: int) -> int:
        return value & ((1 << self.low_bits) - 1)

    def _index(self, high: int, low: int) -> int:
        return (high << self.low_bits) | low

    def insert(self, value: int, stats: AccessStats) -> None:
        stats.record_read()  # inspect node min/max
        if self.min is None:
            self.min = self.max = value
            stats.record_write()
            return
        if value < self.min:
            value, self.min = self.min, value
            stats.record_write()
        if value > self.max:
            self.max = value
            stats.record_write()
        if self.universe_bits > 1:
            high, low = self._high(value), self._low(value)
            cluster = self.clusters.get(high)
            stats.record_read()  # cluster directory probe
            if cluster is None:
                cluster = _VebNode(self.low_bits)
                self.clusters[high] = cluster
                stats.record_write()
            if cluster.min is None:
                # Empty cluster: O(1) insert there plus a summary insert.
                if self.summary is None:
                    self.summary = _VebNode(self.high_bits)
                self.summary.insert(high, stats)
                cluster.min = cluster.max = low
                stats.record_write()
            else:
                cluster.insert(low, stats)

    def delete(self, value: int, stats: AccessStats) -> None:
        stats.record_read()
        if self.min == self.max:
            self.min = self.max = None
            stats.record_write()
            return
        if self.universe_bits == 1:
            self.min = 1 if value == 0 else 0
            self.max = self.min
            stats.record_write()
            return
        if value == self.min:
            first_cluster = self.summary.min
            stats.record_read()
            value = self._index(first_cluster, self.clusters[first_cluster].min)
            self.min = value
            stats.record_write()
        high, low = self._high(value), self._low(value)
        cluster = self.clusters[high]
        stats.record_read()
        cluster.delete(low, stats)
        if cluster.min is None:
            self.summary.delete(high, stats)
            del self.clusters[high]
            stats.record_write()
            if value == self.max:
                stats.record_read()
                if self.summary.min is None:
                    self.max = self.min
                else:
                    top = self.summary.max
                    self.max = self._index(top, self.clusters[top].max)
                stats.record_write()
        elif value == self.max:
            self.max = self._index(high, cluster.max)
            stats.record_write()

    def contains(self, value: int, stats: AccessStats) -> bool:
        stats.record_read()
        if value == self.min or value == self.max:
            return True
        if self.universe_bits == 1:
            return False
        cluster = self.clusters.get(self._high(value))
        if cluster is None:
            return False
        return cluster.contains(self._low(value), stats)


class VanEmdeBoasQueue(TagQueue):
    """vEB-set priority queue with FIFO duplicate buckets."""

    name = "van_emde_boas"
    model = "sort"
    complexity = "O(log log U) insert and service"

    def __init__(self, word_bits: int = 12) -> None:
        super().__init__()
        if word_bits < 1:
            raise ConfigurationError("word width must be positive")
        self.word_bits = word_bits
        self._root = _VebNode(word_bits)
        self._buckets: Dict[int, deque] = {}

    def _insert(self, tag: int, payload: Any) -> None:
        if tag >> self.word_bits:
            raise ConfigurationError(
                f"tag {tag} exceeds the {self.word_bits}-bit universe"
            )
        bucket = self._buckets.get(tag)
        self.stats.record_read()  # bucket directory probe
        if bucket is None:
            bucket = deque()
            self._buckets[tag] = bucket
            self._root.insert(tag, self.stats)
        bucket.append(payload)
        self.stats.record_write()

    def _extract_min(self) -> Tuple[int, Any]:
        tag = self._root.min
        self.stats.record_read()
        bucket = self._buckets[tag]
        self.stats.record_read()
        payload = bucket.popleft()
        self.stats.record_write()
        if not bucket:
            del self._buckets[tag]
            self._root.delete(tag, self.stats)
        return tag, payload

    def _peek_min(self) -> int:
        self.stats.record_read()
        return self._root.min
