"""Every tag-lookup method compared in the paper's Table I.

All methods implement :class:`~repro.baselines.base.TagQueue` and count
their own memory accesses, so the Table I benchmark measures worst-case
accesses per operation directly.  :func:`make_all_queues` builds one
instance of each for a given tag range/width.
"""

from typing import Callable, Dict

from .base import TagQueue
from .binning import BinningQueue
from .bst import BalancedBSTQueue
from .calendar_queue import CalendarQueue
from .cam import BinaryCAMQueue
from .heap import BinaryHeapQueue
from .lfvc import LFVCQueue
from .shift_register_pq import ShiftRegisterPriorityQueue
from .sorted_list import SortedLinkedListQueue
from .tcam import TernaryCAMQueue
from .tcq import TwoDimensionalCalendarQueue
from .tree_queue import MultiBitTreeQueue
from .veb import VanEmdeBoasQueue


def make_all_queues(
    *, tag_range: int = 4096, word_bits: int = 12, capacity: int = 4096
) -> Dict[str, TagQueue]:
    """One instance of every Table I method, consistently parameterized."""
    factories: Dict[str, Callable[[], TagQueue]] = {
        SortedLinkedListQueue.name: SortedLinkedListQueue,
        BinaryHeapQueue.name: BinaryHeapQueue,
        BalancedBSTQueue.name: BalancedBSTQueue,
        VanEmdeBoasQueue.name: lambda: VanEmdeBoasQueue(word_bits=word_bits),
        CalendarQueue.name: CalendarQueue,
        TwoDimensionalCalendarQueue.name: lambda: TwoDimensionalCalendarQueue(
            tag_range=tag_range
        ),
        LFVCQueue.name: lambda: LFVCQueue(tag_range=tag_range),
        BinningQueue.name: lambda: BinningQueue(tag_range=tag_range),
        BinaryCAMQueue.name: lambda: BinaryCAMQueue(tag_range=tag_range),
        TernaryCAMQueue.name: lambda: TernaryCAMQueue(word_bits=word_bits),
        ShiftRegisterPriorityQueue.name: lambda: ShiftRegisterPriorityQueue(
            capacity=capacity
        ),
        MultiBitTreeQueue.name: lambda: MultiBitTreeQueue(capacity=capacity),
    }
    return {name: factory() for name, factory in factories.items()}


__all__ = [
    "TagQueue",
    "SortedLinkedListQueue",
    "BinaryHeapQueue",
    "BalancedBSTQueue",
    "VanEmdeBoasQueue",
    "CalendarQueue",
    "TwoDimensionalCalendarQueue",
    "LFVCQueue",
    "BinningQueue",
    "BinaryCAMQueue",
    "TernaryCAMQueue",
    "ShiftRegisterPriorityQueue",
    "MultiBitTreeQueue",
    "make_all_queues",
]
