"""Balanced binary search tree — the O(log N) software sort-model row.

Implemented as a treap (randomized balance with deterministic seed):
expected O(log N) node touches for insert and delete-min, with the
worst-case variance that makes tree structures unattractive for a
fixed-time hardware pipeline.  Duplicates are FCFS via sequence numbers.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .base import TagQueue


@dataclass
class _Node:
    key: Tuple[int, int]
    payload: Any
    priority: float
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class BalancedBSTQueue(TagQueue):
    """Treap-based sorted structure with access accounting."""

    name = "balanced_bst"
    model = "sort"
    complexity = "O(log N) insert, O(log N) service"

    def __init__(self, seed: int = 0x5EED) -> None:
        super().__init__()
        self._root: Optional[_Node] = None
        self._rng = random.Random(seed)
        self._sequence = itertools.count()

    def _insert(self, tag: int, payload: Any) -> None:
        node = _Node(
            key=(tag, next(self._sequence)),
            payload=payload,
            priority=self._rng.random(),
        )
        self._root = self._treap_insert(self._root, node)

    def _treap_insert(self, root: Optional[_Node], node: _Node) -> _Node:
        if root is None:
            self.stats.record_write()
            return node
        self.stats.record_read()
        if node.key < root.key:
            root.left = self._treap_insert(root.left, node)
            self.stats.record_write()
            if root.left.priority < root.priority:
                root = self._rotate_right(root)
        else:
            root.right = self._treap_insert(root.right, node)
            self.stats.record_write()
            if root.right.priority < root.priority:
                root = self._rotate_left(root)
        return root

    def _rotate_right(self, node: _Node) -> _Node:
        pivot = node.left
        node.left = pivot.right
        pivot.right = node
        self.stats.record_write(2)
        return pivot

    def _rotate_left(self, node: _Node) -> _Node:
        pivot = node.right
        node.right = pivot.left
        pivot.left = node
        self.stats.record_write(2)
        return pivot

    def _extract_min(self) -> Tuple[int, Any]:
        parent = None
        node = self._root
        self.stats.record_read()
        while node.left is not None:
            parent = node
            node = node.left
            self.stats.record_read()
        if parent is None:
            self._root = node.right
        else:
            parent.left = node.right
        self.stats.record_write()
        return node.key[0], node.payload

    def _peek_min(self) -> int:
        node = self._root
        self.stats.record_read()
        while node.left is not None:
            node = node.left
            self.stats.record_read()
        return node.key[0]
