"""Binary heap — the standard software queue/heap method of Table I.

The paper notes most prior tag sorters are "queue/heap methods...
generally limited to O(log N) performance".  Both insert (sift-up) and
extract (sift-down) touch O(log N) array slots, and — crucially for the
paper's argument — extraction is *not* a fixed-time operation: its cost
varies with occupancy, violating the fixed service time the scheduler
needs.  Duplicate tags carry an insertion sequence number so service stays
first-come-first-served, matching the linked list's behaviour.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Tuple

from .base import TagQueue


class BinaryHeapQueue(TagQueue):
    """Array-backed binary min-heap with access accounting."""

    name = "binary_heap"
    model = "search"  # the min is located at service time by sift-down
    complexity = "O(log N) insert and service"

    def __init__(self) -> None:
        super().__init__()
        self._slots: List[Tuple[int, int, Any]] = []
        self._sequence = itertools.count()

    def _key(self, index: int) -> Tuple[int, int]:
        tag, order, _ = self._slots[index]
        return tag, order

    def _swap(self, a: int, b: int) -> None:
        self._slots[a], self._slots[b] = self._slots[b], self._slots[a]
        self.stats.record_write(2)

    def _insert(self, tag: int, payload: Any) -> None:
        self._slots.append((tag, next(self._sequence), payload))
        self.stats.record_write()
        index = len(self._slots) - 1
        while index > 0:
            parent = (index - 1) // 2
            self.stats.record_read(2)  # compare child with parent
            if self._key(index) < self._key(parent):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _extract_min(self) -> Tuple[int, Any]:
        self.stats.record_read()
        tag, _, payload = self._slots[0]
        last = self._slots.pop()
        self.stats.record_read()
        if self._slots:
            self._slots[0] = last
            self.stats.record_write()
            self._sift_down(0)
        return tag, payload

    def _sift_down(self, index: int) -> None:
        size = len(self._slots)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            self.stats.record_read()
            if left < size:
                self.stats.record_read()
                if self._key(left) < self._key(smallest):
                    smallest = left
            if right < size:
                self.stats.record_read()
                if self._key(right) < self._key(smallest):
                    smallest = right
            if smallest == index:
                return
            self._swap(index, smallest)
            index = smallest

    def _peek_min(self) -> int:
        self.stats.record_read()
        return self._slots[0][0]
