"""LFVC-style coarsened priority queue — ref. [17].

Leap Forward Virtual Clock schedules from a *coarsened* priority queue:
virtual times are quantized into buckets tracked by a two-level occupancy
bitmap, so locating the minimum costs one probe per bitmap word at each
level.  Table I groups it with TCQ ("the same performance as TCQ but also
similar drawbacks relating to the level of QoS delivered"): the service
complexity is in the O(sqrt(R)) bitmap class, and quantization serves
same-bucket tags FIFO, degrading the WFQ delay guarantee — counted here in
``sorting_errors`` exactly as for TCQ and binning.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, List, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class LFVCQueue(TagQueue):
    """Quantized-tag bucket queue with a two-level occupancy bitmap."""

    name = "lfvc"
    model = "search"
    complexity = "O(sqrt(R)) service (bitmap scan)"

    def __init__(self, *, tag_range: int = 4096, quantum: int = 4) -> None:
        super().__init__()
        if tag_range < 1 or quantum < 1:
            raise ConfigurationError("range and quantum must be positive")
        self.tag_range = tag_range
        self.quantum = quantum
        self.bucket_count = (tag_range + quantum - 1) // quantum
        self.group_size = max(1, int(math.isqrt(self.bucket_count)))
        self.group_count = math.ceil(self.bucket_count / self.group_size)
        self._buckets: List[Deque[Tuple[int, Any]]] = [
            deque() for _ in range(self.bucket_count)
        ]
        self._group_occupancy = [0] * self.group_count
        self.sorting_errors = 0

    def _insert(self, tag: int, payload: Any) -> None:
        if not 0 <= tag < self.tag_range:
            raise ConfigurationError(
                f"tag {tag} outside range [0, {self.tag_range})"
            )
        bucket = tag // self.quantum
        self._buckets[bucket].append((tag, payload))
        self._group_occupancy[bucket // self.group_size] += 1
        self.stats.record_write()

    def _find_min_bucket(self) -> int:
        group_index = -1
        for group in range(self.group_count):
            self.stats.record_read()  # level-1 bitmap word
            if self._group_occupancy[group]:
                group_index = group
                break
        start = group_index * self.group_size
        stop = min(start + self.group_size, self.bucket_count)
        for bucket in range(start, stop):
            self.stats.record_read()  # level-2 bitmap word
            if self._buckets[bucket]:
                return bucket
        raise AssertionError("occupied group had no occupied bucket")

    def _extract_min(self) -> Tuple[int, Any]:
        bucket_index = self._find_min_bucket()
        bucket = self._buckets[bucket_index]
        tag, payload = bucket.popleft()
        self.stats.record_write()
        self._group_occupancy[bucket_index // self.group_size] -= 1
        if any(other < tag for other, _ in bucket):
            self.sorting_errors += 1
        return tag, payload

    def _peek_min(self) -> int:
        bucket_index = self._find_min_bucket()
        return self._buckets[bucket_index][0][0]
