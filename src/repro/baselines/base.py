"""Common interface for every Table I lookup method.

The paper compares nine tag-lookup approaches (four software, five
hardware) by worst-case operation complexity and, for hardware, worst-case
memory accesses per lookup.  Every method here implements the same
:class:`TagQueue` interface and *counts its own memory accesses* through an
:class:`~repro.hwsim.stats.AccessStats`, so the Table I benchmark measures
rather than asserts the comparison.

Accounting convention: one access = one touch of a conceptual memory word
(an array slot, a list node, a CAM row probe, a bin header).  Python-level
bookkeeping that a hardware implementation would keep in registers is not
counted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

from ..hwsim.errors import EmptyStructureError
from ..hwsim.stats import AccessStats


class TagQueue(ABC):
    """A priority queue over integer tags, instrumented for accesses."""

    #: short identifier used in benchmark tables
    name: str = "abstract"
    #: which of the paper's two models the method follows (Section II-C)
    model: str = "sort"  # "sort" or "search"
    #: Table I complexity string, for report rendering
    complexity: str = "?"

    def __init__(self) -> None:
        self.stats = AccessStats()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        """True when no tags are stored."""
        return self._size == 0

    def insert(self, tag: int, payload: Any = None) -> None:
        """Store ``tag`` (the lookup may happen now or at extract time)."""
        self._insert(tag, payload)
        self._size += 1

    def extract_min(self) -> Tuple[int, Any]:
        """Remove and return the smallest ``(tag, payload)``."""
        if self.is_empty:
            raise EmptyStructureError(f"{self.name}: extract from empty queue")
        result = self._extract_min()
        self._size -= 1
        return result

    def peek_min(self) -> Optional[int]:
        """The smallest stored tag without removing it, or None."""
        if self.is_empty:
            return None
        return self._peek_min()

    @abstractmethod
    def _insert(self, tag: int, payload: Any) -> None:
        """Method-specific insert."""

    @abstractmethod
    def _extract_min(self) -> Tuple[int, Any]:
        """Method-specific extract; queue is known non-empty."""

    @abstractmethod
    def _peek_min(self) -> int:
        """Method-specific peek; queue is known non-empty."""

    def drain(self) -> list:
        """Extract everything in order (verification helper)."""
        out = []
        while not self.is_empty:
            out.append(self.extract_min()[0])
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self._size})"
