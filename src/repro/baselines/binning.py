"""The CBFQ "binning" technique — ref. [12].

Tags are aggregated into fixed-span bins; only the bin index is sorted
(by scanning an occupancy bitmap), and tags within a bin are served FIFO.
The paper rejects it because "it aggregates values together in groups and
is inherently inaccurate": the wider the bins, the more out-of-order
service.  Worst-case accesses per lookup equal the number of bins
(range / span), the figure used for its Table I row.

``sorting_errors`` counts served tags that overtook a smaller queued tag,
the direct measure of the technique's aggregation inaccuracy, swept in the
QoS benchmarks against bin span.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class BinningQueue(TagQueue):
    """Fixed-span bins over the tag range with FIFO bins."""

    name = "binning"
    model = "search"
    complexity = "O(range / span) service"

    def __init__(self, *, tag_range: int = 4096, bin_span: int = 16) -> None:
        super().__init__()
        if tag_range < 1 or bin_span < 1:
            raise ConfigurationError("range and span must be positive")
        self.tag_range = tag_range
        self.bin_span = bin_span
        self.bin_count = (tag_range + bin_span - 1) // bin_span
        self._bins: List[Deque[Tuple[int, Any]]] = [
            deque() for _ in range(self.bin_count)
        ]
        self.sorting_errors = 0

    def _insert(self, tag: int, payload: Any) -> None:
        if not 0 <= tag < self.tag_range:
            raise ConfigurationError(
                f"tag {tag} outside bin range [0, {self.tag_range})"
            )
        self._bins[tag // self.bin_span].append((tag, payload))
        self.stats.record_write()

    def _find_min_bin(self) -> int:
        for index in range(self.bin_count):
            self.stats.record_read()  # occupancy probe, one per bin
            if self._bins[index]:
                return index
        raise AssertionError("no occupied bin in a non-empty queue")

    def _extract_min(self) -> Tuple[int, Any]:
        index = self._find_min_bin()
        bin_fifo = self._bins[index]
        tag, payload = bin_fifo.popleft()
        self.stats.record_write()
        if any(other < tag for other, _ in bin_fifo):
            self.sorting_errors += 1
        return tag, payload

    def _peek_min(self) -> int:
        index = self._find_min_bin()
        return self._bins[index][0][0]
