"""Calendar queue — the hardware-efficient fair-queueing sorter of
refs. [14], [15].

Tags hash into "days" (buckets) by ``(tag // day_width) % days``; each day
holds a sorted mini-list.  Average O(1) when the calendar is well tuned,
but — as the paper notes — "limited in their size and scalability": a
year's worth of empty days must be scanned in the worst case, and bucket
overflow degrades insert to O(N_bucket).  The implementation supports the
classic load-based resizing so the *average* stays O(1), while the
worst-case probe count is what Table I reports.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class CalendarQueue(TagQueue):
    """Resizing calendar queue with sorted per-day lists."""

    name = "calendar_queue"
    model = "search"  # the next non-empty day is found at service time
    complexity = "O(1) avg, O(days + bucket) worst"

    def __init__(
        self,
        *,
        days: int = 64,
        day_width: int = 16,
        resize: bool = True,
    ) -> None:
        super().__init__()
        if days < 1 or day_width < 1:
            raise ConfigurationError("days and day_width must be positive")
        self.days = days
        self.day_width = day_width
        self.resize = resize
        self._buckets: List[List[Tuple[int, Any]]] = [[] for _ in range(days)]
        self._last_served = 0

    def _bucket_index(self, tag: int) -> int:
        return (tag // self.day_width) % self.days

    def _insert(self, tag: int, payload: Any) -> None:
        bucket = self._buckets[self._bucket_index(tag)]
        self.stats.record_read()  # bucket header
        # Sorted insert within the day (FCFS for duplicates).
        position = len(bucket)
        for index, (existing, _) in enumerate(bucket):
            self.stats.record_read()
            if existing > tag:
                position = index
                break
        bucket.insert(position, (tag, payload))
        self.stats.record_write()
        if self.resize and len(self) + 1 > 2 * self.days:
            self._resize(self.days * 2)

    def _resize(self, new_days: int) -> None:
        entries = [item for bucket in self._buckets for item in bucket]
        self.stats.record_read(len(entries))
        self.days = new_days
        self._buckets = [[] for _ in range(new_days)]
        for tag, payload in entries:
            bucket = self._buckets[self._bucket_index(tag)]
            position = len(bucket)
            for index, (existing, _) in enumerate(bucket):
                if existing > tag:
                    position = index
                    break
            bucket.insert(position, (tag, payload))
            self.stats.record_write()

    def _find_min_bucket(self) -> int:
        """Scan days starting at the last-served year position."""
        start_day = (self._last_served // self.day_width) % self.days
        best_index = -1
        best_key = None
        # First pass: the current year, day by day, accepting only tags
        # that fall in this year's window of each day.
        for offset in range(self.days):
            day = (start_day + offset) % self.days
            self.stats.record_read()  # day header probe
            bucket = self._buckets[day]
            if not bucket:
                continue
            tag = bucket[0][0]
            self.stats.record_read()
            if best_key is None or tag < best_key:
                best_key = tag
                best_index = day
        return best_index

    def _extract_min(self) -> Tuple[int, Any]:
        day = self._find_min_bucket()
        tag, payload = self._buckets[day].pop(0)
        self.stats.record_write()
        self._last_served = tag
        return tag, payload

    def _peek_min(self) -> int:
        day = self._find_min_bucket()
        return self._buckets[day][0][0]
