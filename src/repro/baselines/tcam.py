"""Ternary CAM minimum search — the bit-wise masked iterative method.

A TCAM can match with don't-care bits, enabling the classic W-step
minimum search (Section II-D: "a TCAM can use a bit-wise iterative search
using masked bits"): fix the candidate minimum one bit at a time from the
MSB, probing with the remaining bits masked.  If a match exists with the
current bit forced to 0 the minimum has a 0 there; otherwise a 1.  Worst
case: exactly W probes — proportional to tag *width*, not count, the same
exponential improvement class as the tree (whose branching factor then
divides the W further).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class TernaryCAMQueue(TagQueue):
    """Masked-probe TCAM with W-step bitwise minimum search."""

    name = "tcam"
    model = "search"
    complexity = "O(W) service (one probe per bit)"

    def __init__(self, *, word_bits: int = 12) -> None:
        super().__init__()
        if word_bits < 1:
            raise ConfigurationError("word width must be positive")
        self.word_bits = word_bits
        self._rows: Dict[int, Deque[Any]] = {}
        self._occupancy: Counter = Counter()

    def _insert(self, tag: int, payload: Any) -> None:
        if tag >> self.word_bits:
            raise ConfigurationError(
                f"tag {tag} wider than {self.word_bits} bits"
            )
        row = self._rows.get(tag)
        if row is None:
            row = deque()
            self._rows[tag] = row
        row.append(payload)
        self._occupancy[tag] += 1
        self.stats.record_write()

    def _masked_match_exists(self, prefix: int, bits_fixed: int) -> bool:
        """One TCAM probe: does any stored tag start with ``prefix``?"""
        self.stats.record_read()
        shift = self.word_bits - bits_fixed
        for tag in self._occupancy:
            if tag >> shift == prefix:
                return True
        return False

    def _bitwise_min(self) -> int:
        prefix = 0
        for bit in range(self.word_bits):
            candidate = prefix << 1  # try a 0 in this position
            if self._masked_match_exists(candidate, bit + 1):
                prefix = candidate
            else:
                prefix = candidate | 1
        return prefix

    def _extract_min(self) -> Tuple[int, Any]:
        tag = self._bitwise_min()
        row = self._rows[tag]
        payload = row.popleft()
        self.stats.record_write()
        self._occupancy[tag] -= 1
        if not self._occupancy[tag]:
            del self._occupancy[tag]
            del self._rows[tag]
        return tag, payload

    def _peek_min(self) -> int:
        return self._bitwise_min()
