"""Binary CAM minimum search — the associative-memory option of Table I.

A binary content-addressable memory matches *exact* keys only, so finding
the minimum "must use an iterative technique based on incrementing a
search by one value at a time, which is very slow" (Section II-D): probe
key 0, then 1, then 2 ... until a row matches.  Each probe is one parallel
compare across the array, counted as one access; the worst case is the
full tag range.  The probe loop restarts from the last served value — the
best a real controller can do under a monotone (WFQ) tag sequence — so the
measured worst case reflects the tag *gap*, bounded by the range.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class BinaryCAMQueue(TagQueue):
    """Exact-match CAM with increment-and-probe minimum search."""

    name = "binary_cam"
    model = "search"
    complexity = "O(range) service (probe per value)"

    def __init__(self, *, tag_range: int = 4096, monotone: bool = True) -> None:
        super().__init__()
        if tag_range < 1:
            raise ConfigurationError("tag range must be positive")
        self.tag_range = tag_range
        self.monotone = monotone
        self._rows: Dict[int, Deque[Any]] = {}
        self._occupancy: Counter = Counter()
        self._probe_floor = 0

    def _insert(self, tag: int, payload: Any) -> None:
        if not 0 <= tag < self.tag_range:
            raise ConfigurationError(
                f"tag {tag} outside CAM range [0, {self.tag_range})"
            )
        if self.monotone and tag < self._probe_floor:
            # A tag below the probe floor would be missed by the
            # incremental search; WFQ never produces one, other workloads
            # must reset the floor.
            self._probe_floor = tag
        row = self._rows.get(tag)
        if row is None:
            row = deque()
            self._rows[tag] = row
        row.append(payload)
        self._occupancy[tag] += 1
        self.stats.record_write()

    def _probe_from(self, start: int) -> int:
        for key in range(start, self.tag_range):
            self.stats.record_read()  # one CAM probe (parallel compare)
            if self._occupancy.get(key):
                return key
        raise AssertionError("probe ran off the range in a non-empty CAM")

    def _extract_min(self) -> Tuple[int, Any]:
        start = self._probe_floor if self.monotone else 0
        tag = self._probe_from(start)
        if self.monotone:
            self._probe_floor = tag
        row = self._rows[tag]
        payload = row.popleft()
        self.stats.record_write()
        self._occupancy[tag] -= 1
        if not self._occupancy[tag]:
            del self._occupancy[tag]
            del self._rows[tag]
        return tag, payload

    def _peek_min(self) -> int:
        start = self._probe_floor if self.monotone else 0
        return self._probe_from(start)
