"""The paper's multi-bit tree circuit wrapped as a Table I method.

Adapts :class:`~repro.core.sort_retrieve.TagSortRetrieveCircuit` (in eager
marker-removal mode, so arbitrary tag orders are legal) to the
:class:`~repro.baselines.base.TagQueue` interface, with its aggregate
memory traffic surfaced through the same ``stats`` counter every baseline
uses.  This is the row the other methods are measured against.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..core.sort_retrieve import TagSortRetrieveCircuit
from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.stats import AccessStats
from .base import TagQueue


class MultiBitTreeQueue(TagQueue):
    """The sort/retrieve circuit as a general priority queue."""

    name = "multibit_tree"
    model = "sort"
    complexity = "O(W/k) insert, O(1) service"

    def __init__(
        self,
        fmt: WordFormat = PAPER_FORMAT,
        *,
        capacity: int = 4096,
    ) -> None:
        super().__init__()
        self.circuit = TagSortRetrieveCircuit(
            fmt, capacity=capacity, eager_marker_removal=True
        )

    @property
    def stats(self) -> AccessStats:  # type: ignore[override]
        """Aggregated traffic of tree + translation table + storage."""
        return self.circuit.total_stats()

    @stats.setter
    def stats(self, value: AccessStats) -> None:
        # The base constructor assigns a fresh counter; the circuit's
        # registry is authoritative, so the assignment is ignored.
        pass

    def _insert(self, tag: int, payload: Any) -> None:
        self.circuit.insert(tag, payload)

    def _extract_min(self) -> Tuple[int, Any]:
        served = self.circuit.dequeue_min()
        return served.tag, served.payload

    def _peek_min(self) -> int:
        return self.circuit.peek_min()
