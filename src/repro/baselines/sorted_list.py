"""Sorted linked-list insertion — the naive software sort-model baseline.

Insertion scans from the head until the insert position is found: O(N)
accesses in the worst case.  Extraction is a head removal, O(1).  This is
the first software row of Table I and the structure whose *insert* cost
the multi-bit tree removes while keeping the same O(1) service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .base import TagQueue


@dataclass
class _Node:
    tag: int
    payload: Any
    next: Optional["_Node"]


class SortedLinkedListQueue(TagQueue):
    """Head-scanned sorted singly linked list."""

    name = "sorted_list"
    model = "sort"
    complexity = "O(N) insert, O(1) service"

    def __init__(self) -> None:
        super().__init__()
        self._head: Optional[_Node] = None

    def _insert(self, tag: int, payload: Any) -> None:
        self.stats.record_read()  # head register + first node inspection
        if self._head is None or tag < self._head.tag:
            self._head = _Node(tag, payload, self._head)
            self.stats.record_write()
            return
        cursor = self._head
        # FCFS for duplicates: advance past equal tags (paper Section
        # III-C notes first-come-first-served for rounded-off equal tags).
        while cursor.next is not None and cursor.next.tag <= tag:
            cursor = cursor.next
            self.stats.record_read()
        cursor.next = _Node(tag, payload, cursor.next)
        self.stats.record_write(2)  # new node + predecessor pointer

    def _extract_min(self) -> Tuple[int, Any]:
        node = self._head
        self.stats.record_read()
        self._head = node.next
        return node.tag, node.payload

    def _peek_min(self) -> int:
        self.stats.record_read()
        return self._head.tag
