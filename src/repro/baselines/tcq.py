"""Two-dimensional calendar queue (TCQ) — ref. [16].

The tag range is factored into sqrt(R) x sqrt(R): a *row* calendar over
coarse tag ranges and, per row, a *column* calendar of fine buckets.
Locating the minimum probes at most one row scan plus one column scan,
O(2 * sqrt(R)) — the "O(sqrt(range))" behaviour the paper equates with
improved scalability over the flat calendar queue.

The structural cost the paper calls out — "it produces a degradation of
the delay guarantees provided by the WFQ algorithm" — comes from bucket
aggregation: tags within one fine bucket are served FIFO rather than in
tag order.  The ``sorting_error`` counter measures exactly this: how many
served tags were larger than a tag still queued in the same bucket at
service time (i.e. out-of-order service events).  The Fig. 2/QoS
benchmarks read it directly.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class TwoDimensionalCalendarQueue(TagQueue):
    """Row/column bucket calendar with FIFO fine buckets."""

    name = "tcq"
    model = "search"
    complexity = "O(sqrt(R)) service"

    def __init__(self, *, tag_range: int = 4096) -> None:
        super().__init__()
        if tag_range < 4:
            raise ConfigurationError("tag range must be at least 4")
        self.tag_range = tag_range
        self.columns = int(math.isqrt(tag_range))
        self.rows = math.ceil(tag_range / self.columns)
        self._grid: List[List[Deque[Tuple[int, Any]]]] = [
            [deque() for _ in range(self.columns)] for _ in range(self.rows)
        ]
        self._row_counts = [0] * self.rows
        self.sorting_errors = 0

    def _locate(self, tag: int) -> Tuple[int, int]:
        if not 0 <= tag < self.tag_range:
            raise ConfigurationError(
                f"tag {tag} outside calendar range [0, {self.tag_range})"
            )
        return tag // self.columns, tag % self.columns

    def _insert(self, tag: int, payload: Any) -> None:
        row, column = self._locate(tag)
        self.stats.record_read()  # row header
        self._grid[row][column].append((tag, payload))
        self._row_counts[row] += 1
        self.stats.record_write()

    def _find_min_cell(self) -> Tuple[int, int]:
        row_index: Optional[int] = None
        for row in range(self.rows):
            self.stats.record_read()  # row occupancy bit
            if self._row_counts[row]:
                row_index = row
                break
        for column in range(self.columns):
            self.stats.record_read()  # column occupancy bit
            if self._grid[row_index][column]:
                return row_index, column
        raise AssertionError("non-empty row had no non-empty column")

    def _extract_min(self) -> Tuple[int, Any]:
        row, column = self._find_min_cell()
        bucket = self._grid[row][column]
        tag, payload = bucket.popleft()
        self.stats.record_write()
        self._row_counts[row] -= 1
        # Aggregation inaccuracy: a smaller tag may remain behind us in
        # the same FIFO bucket.
        if any(other < tag for other, _ in bucket):
            self.sorting_errors += 1
        return tag, payload

    def _peek_min(self) -> int:
        row, column = self._find_min_cell()
        return self._grid[row][column][0][0]
