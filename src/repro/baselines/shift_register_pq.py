"""Systolic shift-register priority queue — the classic hardware PQ.

The traditional hardware alternative to the paper's tree: a linear array
of compare-and-shift cells.  A new tag is broadcast to every cell; each
cell compares it with its stored tag in parallel and the array shifts the
larger values one position right, absorbing the newcomer at its sorted
position in **O(1) time** — at the price of one comparator and one
register *per stored tag*, which is why it cannot scale to the millions of
tags the paper's external-SRAM linked list holds.

Accounting: one insert = one parallel shift = one access *per occupied
cell beyond the insert point is free in time but real in hardware*; Table
I reports time-accesses, so insert and extract each count 1 sequential
access, and the ``cell_count`` property exposes the O(N) hardware cost
that the comparison tables report alongside.  Ties are broadcast-stable:
equal tags keep arrival order (FCFS).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..hwsim.errors import ConfigurationError
from .base import TagQueue


class ShiftRegisterPriorityQueue(TagQueue):
    """Compare-and-shift systolic array."""

    name = "shift_register"
    model = "sort"
    complexity = "O(1) time, O(N) comparators"

    def __init__(self, *, capacity: int = 1024) -> None:
        super().__init__()
        if capacity < 1:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._cells: List[Tuple[int, Any]] = []

    @property
    def cell_count(self) -> int:
        """Hardware cells required — grows with capacity, not occupancy."""
        return self.capacity

    def _insert(self, tag: int, payload: Any) -> None:
        if len(self._cells) >= self.capacity:
            raise ConfigurationError("shift-register array full")
        # All cells compare in parallel, then shift in one cycle; the
        # sequential access cost is a single broadcast-write.
        position = len(self._cells)
        for index, (existing, _) in enumerate(self._cells):
            if existing > tag:
                position = index
                break
        self._cells.insert(position, (tag, payload))
        self.stats.record_write()

    def _extract_min(self) -> Tuple[int, Any]:
        # Head cell pops and the array shifts left in one cycle.
        self.stats.record_read()
        return self._cells.pop(0)

    def _peek_min(self) -> int:
        self.stats.record_read()
        return self._cells[0][0]
