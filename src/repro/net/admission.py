"""SLA admission control for the WFQ scheduler.

The paper's motivation (Sections I/V): fair queueing lets providers
"deliver next generation services" with "service level agreements (SLA)
and service differentiation".  This module supplies the control-plane
arithmetic that turns SLAs into scheduler configuration:

* a **guaranteed rate** g_i maps to a WFQ weight ``phi_i = g_i / C``;
* the single-node Parekh–Gallager delay bound for a flow that is
  (sigma, g)-token-bucket constrained is::

      D_i <= sigma_i / g_i + L_i / g_i + L_max / C

  (burst drain at the guaranteed rate + own-packet serialization at the
  guaranteed rate + one maximum packet of non-preemption);
* **admission**: a new SLA is admitted iff the guaranteed rates still
  fit the link (sum g_i <= utilization_limit * C) and the offered delay
  bound meets the request.

:class:`AdmissionController` tracks admitted SLAs, answers
admit/reject with the reason, and configures any
:class:`~repro.sched.base.PacketScheduler` with the derived weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from ..hwsim.errors import ConfigurationError
from ..sched.base import PacketScheduler


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """One flow's contract."""

    flow_id: int
    #: guaranteed throughput, bits/s
    guaranteed_rate_bps: float
    #: token-bucket burst allowance, bits
    burst_bits: float = 0.0
    #: largest packet the flow may send, bytes
    max_packet_bytes: int = 1500
    #: requested worst-case queueing+transmission delay, seconds
    delay_target_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.guaranteed_rate_bps <= 0:
            raise ConfigurationError("guaranteed rate must be positive")
        if self.burst_bits < 0:
            raise ConfigurationError("burst must be non-negative")
        if self.max_packet_bytes < 1:
            raise ConfigurationError("max packet size must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one SLA."""

    admitted: bool
    reason: str
    #: the WFQ weight assigned on admission
    weight: Optional[float] = None
    #: the delay bound the scheduler can actually offer
    offered_delay_s: Optional[float] = None


class AdmissionController:
    """Admits SLAs against one WFQ-scheduled link."""

    def __init__(
        self,
        link_rate_bps: float,
        *,
        utilization_limit: float = 0.95,
        link_max_packet_bytes: int = 1500,
        min_rate_bps: Optional[float] = None,
    ) -> None:
        if link_rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        if not 0 < utilization_limit <= 1:
            raise ConfigurationError("utilization limit must be in (0, 1]")
        if min_rate_bps is not None and min_rate_bps <= 0:
            raise ConfigurationError("rate floor must be positive")
        self.link_rate_bps = link_rate_bps
        self.utilization_limit = utilization_limit
        self.link_max_packet_bytes = link_max_packet_bytes
        #: optional guaranteed-rate floor: a long-running circuit sizes
        #: its tag quantum from the lightest admissible weight, so SLAs
        #: below the floor must be rejected to keep the live tag span
        #: inside the half-space window (:mod:`repro.serve`).
        self.min_rate_bps = min_rate_bps
        self._admitted: Dict[int, ServiceLevelAgreement] = {}
        # The committed-rate total is maintained incrementally — O(1)
        # per admit/release instead of an O(n) sum over up to millions
        # of admitted SLAs — as an exact Fraction: every float rate is a
        # dyadic rational, so add/subtract churn can never drift the
        # total away from the true sum (float accumulation would).
        self._committed = Fraction(0)

    # ------------------------------------------------------------------
    # bounds

    @property
    def committed_rate_bps(self) -> float:
        """Sum of admitted guaranteed rates (exact, O(1))."""
        return float(self._committed)

    @property
    def available_rate_bps(self) -> float:
        """Guaranteed rate still available for new SLAs."""
        return (
            self.utilization_limit * self.link_rate_bps
            - self.committed_rate_bps
        )

    def delay_bound_s(self, sla: ServiceLevelAgreement) -> float:
        """Single-node WFQ delay bound for a token-bucket flow."""
        own_packet = sla.max_packet_bytes * 8 / sla.guaranteed_rate_bps
        burst = sla.burst_bits / sla.guaranteed_rate_bps
        cross_traffic = self.link_max_packet_bytes * 8 / self.link_rate_bps
        return burst + own_packet + cross_traffic

    def weight_for(self, sla: ServiceLevelAgreement) -> float:
        """The WFQ weight implementing the SLA's guaranteed rate."""
        return sla.guaranteed_rate_bps / self.link_rate_bps

    # ------------------------------------------------------------------
    # admission

    def evaluate(self, sla: ServiceLevelAgreement) -> AdmissionDecision:
        """Decide without committing."""
        if sla.flow_id in self._admitted:
            return AdmissionDecision(
                admitted=False,
                reason=f"flow {sla.flow_id} already has an SLA",
            )
        if (
            self.min_rate_bps is not None
            and sla.guaranteed_rate_bps < self.min_rate_bps
        ):
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"guaranteed rate {sla.guaranteed_rate_bps:.0f} b/s is "
                    f"below the {self.min_rate_bps:.0f} b/s floor this "
                    "link's tag quantum was sized for"
                ),
            )
        if sla.guaranteed_rate_bps > self.available_rate_bps:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"insufficient capacity: {sla.guaranteed_rate_bps:.0f} "
                    f"b/s requested, {max(self.available_rate_bps, 0):.0f} "
                    "b/s available"
                ),
            )
        offered = self.delay_bound_s(sla)
        if sla.delay_target_s is not None and offered > sla.delay_target_s:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"delay target {sla.delay_target_s * 1000:.2f} ms not "
                    f"achievable: bound is {offered * 1000:.2f} ms (raise "
                    "the guaranteed rate or shrink the burst)"
                ),
                offered_delay_s=offered,
            )
        return AdmissionDecision(
            admitted=True,
            reason="admitted",
            weight=self.weight_for(sla),
            offered_delay_s=offered,
        )

    def admit(self, sla: ServiceLevelAgreement) -> AdmissionDecision:
        """Evaluate and, on success, commit the SLA."""
        decision = self.evaluate(sla)
        if decision.admitted:
            self._admitted[sla.flow_id] = sla
            self._committed += Fraction(sla.guaranteed_rate_bps)
        return decision

    def release(self, flow_id: int) -> None:
        """Tear down a flow's SLA, freeing its rate."""
        sla = self._admitted.pop(flow_id, None)
        if sla is None:
            raise ConfigurationError(f"flow {flow_id} has no admitted SLA")
        self._committed -= Fraction(sla.guaranteed_rate_bps)

    def admitted_slas(self) -> Dict[int, ServiceLevelAgreement]:
        """A copy of the admitted set."""
        return dict(self._admitted)

    @property
    def admitted_count(self) -> int:
        """Number of flows currently holding an SLA."""
        return len(self._admitted)

    # ------------------------------------------------------------------
    # scheduler configuration

    def configure(self, scheduler: PacketScheduler) -> None:
        """Push every admitted flow's weight onto ``scheduler``.

        Idempotent and re-entrant: a flow the scheduler does not know
        yet is registered, a flow it already carries has its weight
        reconfigured in place — so ``configure`` can be called again
        after SLA churn on a *live* scheduler without tearing anything
        down (the service plane's renegotiation path).
        """
        for flow_id, sla in self._admitted.items():
            weight = self.weight_for(sla)
            if flow_id in scheduler.flows:
                scheduler.set_flow_weight(
                    flow_id,
                    weight,
                    guaranteed_rate_bps=sla.guaranteed_rate_bps,
                )
            else:
                scheduler.add_flow(
                    flow_id,
                    weight,
                    guaranteed_rate_bps=sla.guaranteed_rate_bps,
                )

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Serializable snapshot of the admitted set."""
        return {
            "kind": "admission_controller",
            "link_rate_bps": self.link_rate_bps,
            "utilization_limit": self.utilization_limit,
            "link_max_packet_bytes": self.link_max_packet_bytes,
            "min_rate_bps": self.min_rate_bps,
            "admitted": [
                {
                    "flow_id": sla.flow_id,
                    "guaranteed_rate_bps": sla.guaranteed_rate_bps,
                    "burst_bits": sla.burst_bits,
                    "max_packet_bytes": sla.max_packet_bytes,
                    "delay_target_s": sla.delay_target_s,
                }
                for sla in self._admitted.values()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance.

        The committed-rate total is rebuilt from the restored SLAs, so
        it is exact by construction after a restore.
        """
        if state.get("kind") != "admission_controller":
            raise ConfigurationError(
                "not an admission controller snapshot: "
                f"kind={state.get('kind')!r}"
            )
        if state["link_rate_bps"] != self.link_rate_bps:
            raise ConfigurationError(
                f"snapshot link rate {state['link_rate_bps']} != "
                f"{self.link_rate_bps}"
            )
        self._admitted = {}
        self._committed = Fraction(0)
        for record in state["admitted"]:
            sla = ServiceLevelAgreement(
                flow_id=int(record["flow_id"]),
                guaranteed_rate_bps=record["guaranteed_rate_bps"],
                burst_bits=record.get("burst_bits", 0.0),
                max_packet_bytes=record.get("max_packet_bytes", 1500),
                delay_target_s=record.get("delay_target_s"),
            )
            self._admitted[sla.flow_id] = sla
            self._committed += Fraction(sla.guaranteed_rate_bps)
