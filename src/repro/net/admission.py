"""SLA admission control for the WFQ scheduler.

The paper's motivation (Sections I/V): fair queueing lets providers
"deliver next generation services" with "service level agreements (SLA)
and service differentiation".  This module supplies the control-plane
arithmetic that turns SLAs into scheduler configuration:

* a **guaranteed rate** g_i maps to a WFQ weight ``phi_i = g_i / C``;
* the single-node Parekh–Gallager delay bound for a flow that is
  (sigma, g)-token-bucket constrained is::

      D_i <= sigma_i / g_i + L_i / g_i + L_max / C

  (burst drain at the guaranteed rate + own-packet serialization at the
  guaranteed rate + one maximum packet of non-preemption);
* **admission**: a new SLA is admitted iff the guaranteed rates still
  fit the link (sum g_i <= utilization_limit * C) and the offered delay
  bound meets the request.

:class:`AdmissionController` tracks admitted SLAs, answers
admit/reject with the reason, and configures any
:class:`~repro.sched.base.PacketScheduler` with the derived weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwsim.errors import ConfigurationError
from ..sched.base import PacketScheduler


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """One flow's contract."""

    flow_id: int
    #: guaranteed throughput, bits/s
    guaranteed_rate_bps: float
    #: token-bucket burst allowance, bits
    burst_bits: float = 0.0
    #: largest packet the flow may send, bytes
    max_packet_bytes: int = 1500
    #: requested worst-case queueing+transmission delay, seconds
    delay_target_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.guaranteed_rate_bps <= 0:
            raise ConfigurationError("guaranteed rate must be positive")
        if self.burst_bits < 0:
            raise ConfigurationError("burst must be non-negative")
        if self.max_packet_bytes < 1:
            raise ConfigurationError("max packet size must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one SLA."""

    admitted: bool
    reason: str
    #: the WFQ weight assigned on admission
    weight: Optional[float] = None
    #: the delay bound the scheduler can actually offer
    offered_delay_s: Optional[float] = None


class AdmissionController:
    """Admits SLAs against one WFQ-scheduled link."""

    def __init__(
        self,
        link_rate_bps: float,
        *,
        utilization_limit: float = 0.95,
        link_max_packet_bytes: int = 1500,
    ) -> None:
        if link_rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        if not 0 < utilization_limit <= 1:
            raise ConfigurationError("utilization limit must be in (0, 1]")
        self.link_rate_bps = link_rate_bps
        self.utilization_limit = utilization_limit
        self.link_max_packet_bytes = link_max_packet_bytes
        self._admitted: Dict[int, ServiceLevelAgreement] = {}

    # ------------------------------------------------------------------
    # bounds

    @property
    def committed_rate_bps(self) -> float:
        """Sum of admitted guaranteed rates."""
        return sum(
            sla.guaranteed_rate_bps for sla in self._admitted.values()
        )

    @property
    def available_rate_bps(self) -> float:
        """Guaranteed rate still available for new SLAs."""
        return (
            self.utilization_limit * self.link_rate_bps
            - self.committed_rate_bps
        )

    def delay_bound_s(self, sla: ServiceLevelAgreement) -> float:
        """Single-node WFQ delay bound for a token-bucket flow."""
        own_packet = sla.max_packet_bytes * 8 / sla.guaranteed_rate_bps
        burst = sla.burst_bits / sla.guaranteed_rate_bps
        cross_traffic = self.link_max_packet_bytes * 8 / self.link_rate_bps
        return burst + own_packet + cross_traffic

    def weight_for(self, sla: ServiceLevelAgreement) -> float:
        """The WFQ weight implementing the SLA's guaranteed rate."""
        return sla.guaranteed_rate_bps / self.link_rate_bps

    # ------------------------------------------------------------------
    # admission

    def evaluate(self, sla: ServiceLevelAgreement) -> AdmissionDecision:
        """Decide without committing."""
        if sla.flow_id in self._admitted:
            return AdmissionDecision(
                admitted=False,
                reason=f"flow {sla.flow_id} already has an SLA",
            )
        if sla.guaranteed_rate_bps > self.available_rate_bps:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"insufficient capacity: {sla.guaranteed_rate_bps:.0f} "
                    f"b/s requested, {max(self.available_rate_bps, 0):.0f} "
                    "b/s available"
                ),
            )
        offered = self.delay_bound_s(sla)
        if sla.delay_target_s is not None and offered > sla.delay_target_s:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"delay target {sla.delay_target_s * 1000:.2f} ms not "
                    f"achievable: bound is {offered * 1000:.2f} ms (raise "
                    "the guaranteed rate or shrink the burst)"
                ),
                offered_delay_s=offered,
            )
        return AdmissionDecision(
            admitted=True,
            reason="admitted",
            weight=self.weight_for(sla),
            offered_delay_s=offered,
        )

    def admit(self, sla: ServiceLevelAgreement) -> AdmissionDecision:
        """Evaluate and, on success, commit the SLA."""
        decision = self.evaluate(sla)
        if decision.admitted:
            self._admitted[sla.flow_id] = sla
        return decision

    def release(self, flow_id: int) -> None:
        """Tear down a flow's SLA, freeing its rate."""
        if flow_id not in self._admitted:
            raise ConfigurationError(f"flow {flow_id} has no admitted SLA")
        del self._admitted[flow_id]

    def admitted_slas(self) -> Dict[int, ServiceLevelAgreement]:
        """A copy of the admitted set."""
        return dict(self._admitted)

    # ------------------------------------------------------------------
    # scheduler configuration

    def configure(self, scheduler: PacketScheduler) -> None:
        """Register every admitted flow on ``scheduler`` with its weight."""
        for flow_id, sla in self._admitted.items():
            scheduler.add_flow(
                flow_id,
                self.weight_for(sla),
                guaranteed_rate_bps=sla.guaranteed_rate_bps,
            )
