"""QoS and fairness metrics over simulation results.

The quantities the paper's argument rests on:

* per-flow **delay statistics** and worst-case delay — WFQ's bounded
  delay versus the round-robin family's flow-count-dependent delay;
* the **WFQ delay bound** itself (Parekh–Gallager): a packet departs no
  later than its GPS departure plus one maximum packet time;
* **throughput shares** versus configured weights, and the **Jain
  fairness index** over normalized shares;
* the **worst-case fair index** style lag between a flow's received
  service and its GPS entitlement over busy intervals (the WF²Q
  motivation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from ..hwsim.errors import ConfigurationError
from ..obs.slo import RankInversionCounter
from ..sched.base import SimulationResult
from ..sched.gps import GpsDeparture
from ..sched.packet import Packet


@dataclass(frozen=True)
class DelayStats:
    """Delay summary for one flow."""

    count: int
    mean: float
    p99: float
    worst: float

    @staticmethod
    def of(packets: List[Packet]) -> "DelayStats":
        """Compute stats from departed packets."""
        delays = sorted(p.delay for p in packets if p.delay is not None)
        if not delays:
            return DelayStats(count=0, mean=0.0, p99=0.0, worst=0.0)
        index = min(len(delays) - 1, int(math.ceil(0.99 * len(delays))) - 1)
        return DelayStats(
            count=len(delays),
            mean=sum(delays) / len(delays),
            p99=delays[max(index, 0)],
            worst=delays[-1],
        )


def per_flow_delays(result: SimulationResult) -> Dict[int, DelayStats]:
    """Delay statistics per flow."""
    return {
        flow_id: DelayStats.of(packets)
        for flow_id, packets in result.by_flow().items()
    }


def throughput_shares(
    result: SimulationResult, *, start: float = 0.0, end: Optional[float] = None
) -> Dict[int, float]:
    """Fraction of delivered bits per flow within [start, end]."""
    if end is None:
        end = result.finish_time
    bits: Dict[int, float] = {}
    for packet in result.packets:
        if packet.departure_time is None:
            continue
        if start <= packet.departure_time <= end:
            bits[packet.flow_id] = bits.get(packet.flow_id, 0.0) + packet.size_bits
    total = sum(bits.values())
    if total == 0:
        return {flow_id: 0.0 for flow_id in bits}
    return {flow_id: value / total for flow_id, value in bits.items()}


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index over normalized allocations (1.0 = fair)."""
    values = list(values)
    if not values:
        raise ConfigurationError("need at least one allocation")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def weighted_jain_index(
    shares: Mapping[int, float], weights: Mapping[int, float]
) -> float:
    """Jain index over shares normalized by weights.

    A scheduler that delivers exactly weight-proportional bandwidth
    scores 1.0 regardless of the weight vector.
    """
    normalized = []
    for flow_id, share in shares.items():
        weight = weights.get(flow_id)
        if weight is None or weight <= 0:
            raise ConfigurationError(f"missing weight for flow {flow_id}")
        normalized.append(share / weight)
    return jain_index(normalized)


def gps_lag(
    result: SimulationResult, gps: Mapping[int, GpsDeparture]
) -> Dict[int, float]:
    """Worst (departure - GPS departure) per flow, in seconds.

    The Parekh–Gallager theorem bounds this by ``L_max / rate`` for WFQ;
    round-robin policies show lags that grow with the number of flows.
    """
    worst: Dict[int, float] = {}
    for packet in result.packets:
        reference = gps.get(packet.packet_id)
        if reference is None or packet.departure_time is None:
            continue
        lag = packet.departure_time - reference.departure_time
        if lag > worst.get(packet.flow_id, float("-inf")):
            worst[packet.flow_id] = lag
    return worst


def max_gps_lag(result: SimulationResult, gps: Mapping[int, GpsDeparture]) -> float:
    """System-wide worst GPS lag."""
    lags = gps_lag(result, gps)
    return max(lags.values()) if lags else 0.0


def gps_lead(
    result: SimulationResult, gps: Mapping[int, GpsDeparture]
) -> Dict[int, float]:
    """Worst (GPS departure - actual departure) per flow, in seconds.

    How far each flow ran *ahead* of its fluid entitlement.  This is the
    worst-case-fairness axis on which WF²Q improves on WFQ (paper
    Section I-B: WF²Q "has better worst case fairness"): WFQ can serve a
    heavy flow arbitrarily far ahead of GPS, while WF²Q's eligibility
    rule bounds the lead by one packet's service time.
    """
    worst: Dict[int, float] = {}
    for packet in result.packets:
        reference = gps.get(packet.packet_id)
        if reference is None or packet.departure_time is None:
            continue
        lead = reference.departure_time - packet.departure_time
        if lead > worst.get(packet.flow_id, float("-inf")):
            worst[packet.flow_id] = lead
    return worst


def max_gps_lead(result: SimulationResult, gps: Mapping[int, GpsDeparture]) -> float:
    """System-wide worst GPS lead (the WF²Q-vs-WFQ fairness metric)."""
    leads = gps_lead(result, gps)
    return max(leads.values()) if leads else 0.0


def worst_work_lead(result: SimulationResult, gps_simulator) -> Dict[int, float]:
    """Per-flow worst (actual bits served - GPS fluid bits), in bits.

    The Bennett–Zhang worst-case-fairness quantity: WF²Q keeps every
    flow's served work within one maximum packet of its GPS fluid
    entitlement, while WFQ lets a heavy flow run many packets ahead
    (paper Section I-B).  ``gps_simulator`` must be a
    :class:`~repro.sched.gps.GPSFluidSimulator` whose :meth:`run` has
    already been called on the same trace (it holds the fluid curves).
    """
    served: Dict[int, float] = {}
    worst: Dict[int, float] = {}
    # Undelivered packets (still queued or dropped at simulation end)
    # have no departure time and received no service; they must not
    # reach the sort key.
    delivered = (
        p for p in result.packets if p.departure_time is not None
    )
    for packet in sorted(
        delivered, key=lambda p: (p.departure_time, p.packet_id)
    ):
        flow = packet.flow_id
        served[flow] = served.get(flow, 0.0) + packet.size_bits
        entitled = gps_simulator.work_at(flow, packet.departure_time)
        lead = served[flow] - entitled
        if lead > worst.get(flow, float("-inf")):
            worst[flow] = lead
    return worst


def pg_bound_violations(
    result: SimulationResult,
    gps: Mapping[int, GpsDeparture],
    *,
    rate_bps: float,
    max_packet_bytes: float,
    slack: float = 1e-9,
) -> int:
    """Count packets departing after GPS + L_max/rate (should be 0 for WFQ)."""
    bound = max_packet_bytes * 8 / rate_bps
    violations = 0
    for packet in result.packets:
        reference = gps.get(packet.packet_id)
        if reference is None or packet.departure_time is None:
            continue
        if packet.departure_time > reference.departure_time + bound + slack:
            violations += 1
    return violations


def out_of_order_service(result: SimulationResult) -> int:
    """Served packets whose finish tag exceeds a later-served smaller tag.

    Measures sorting inaccuracy end to end: zero for exact WFQ, positive
    for binning/TCQ-style aggregation or for coarse hardware quantization.

    This is the batch driver over the streaming
    :class:`repro.obs.slo.RankInversionCounter` — the online fairness
    auditor counts the same quantity live, through the same code.
    """
    counter = RankInversionCounter()
    # Only packets that were actually served define the service order;
    # undelivered ones have no departure time to sort by.
    delivered = (
        p for p in result.packets if p.departure_time is not None
    )
    for packet in sorted(
        delivered, key=lambda p: (p.departure_time, p.packet_id)
    ):
        if packet.finish_tag is None:
            continue
        counter.observe(packet.finish_tag)
    return counter.inversions
