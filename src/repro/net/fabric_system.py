"""The scale-out variant of the Fig. 1 system: a fabric behind the WFQ.

:class:`FabricSchedulerSystem` swaps the single sort/retrieve circuit of
:class:`~repro.net.scheduler_system.HardwareWFQSystem` for a
:class:`~repro.fabric.fabric.ScheduleFabric` of N circuits.  Everything
else — tag computation, shared packet buffer, the
:class:`~repro.sched.base.PacketScheduler` interface, the batched soak
paths — is inherited unchanged: only the enqueue paths are overridden,
because the fabric routes on the *flow id* (which the bare tag store
never needed) and carries the buffer pointer as opaque payload.

With ``shards=1`` the system is service-order identical to the parent
(the fabric's one shard is a plain :class:`HardwareTagStore`; the
tournament degenerates to a wire), which is the property the fabric
equivalence tests pin down.

Timing model: :attr:`circuit_busy_seconds` inherits the parent's
``store.cycles / clock_hz`` definition, and the fabric reports *makespan*
cycles (its shards are parallel hardware), so an N-way balanced fabric
shows ~N× the sustained enqueue throughput of one circuit — the number
the bench fabric phase checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError, ProtocolError
from ..sched.packet import Packet
from .scheduler_system import DEFAULT_CLOCK_HZ, HardwareWFQSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fabric.fabric import ScheduleFabric
    from ..fabric.manager import FabricPolicy

#: Smallest per-shard circuit: keeps tiny buffer/shard ratios workable.
MIN_SHARD_CAPACITY = 64


class FabricSchedulerSystem(HardwareWFQSystem):
    """WFQ tag computation + packet buffer + sharded scheduling fabric."""

    name = "hw_wfq_fabric"

    def __init__(
        self,
        rate_bps: float,
        *,
        shards: int = 4,
        fmt: WordFormat = PAPER_FORMAT,
        granularity: Optional[float] = None,
        buffer_capacity: int = 8192,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        fast_mode: bool = False,
        turbo: bool = False,
        mode: Optional[str] = None,
        partition_policy: str = "hash",
        flow_space: int = 1024,
        policy: Optional["FabricPolicy"] = None,
        workers: int = 0,
        tracer=None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("fabric system needs at least one shard")
        super().__init__(
            rate_bps,
            fmt=fmt,
            granularity=granularity,
            buffer_capacity=buffer_capacity,
            clock_hz=clock_hz,
            fast_mode=fast_mode,
            turbo=turbo,
            mode=mode,
            tracer=tracer,
        )
        self.shards = shards
        self._partition_policy = partition_policy
        self._flow_space = flow_space
        self._policy = policy
        self._workers = workers

    @property
    def store(self) -> "ScheduleFabric":  # type: ignore[override]
        """The scheduling fabric (created on first use).

        Per-shard circuit capacity is the buffer's share per shard (with
        a small floor): the shards *together* cover the packet buffer,
        and skew beyond a shard's share is the spill mechanism's job.
        The auto-granularity rule is the parent's, unchanged — every
        shard quantizes against the same flow table.
        """
        if self._store is None:
            # Imported here, not at module top: repro.fabric itself pulls
            # in the net layer (its shards are HardwareTagStores), so an
            # eager import would be circular whichever package loads
            # first.
            from ..fabric.fabric import ScheduleFabric
            capacity = max(
                MIN_SHARD_CAPACITY, self._buffer_capacity // self.shards
            )
            fabric = ScheduleFabric(
                shards=self.shards,
                fmt=self._fmt,
                granularity=self._resolve_granularity(),
                capacity_per_shard=capacity,
                fast_mode=self._fast_mode,
                mode=self._mode,
                partition_policy=self._partition_policy,
                flow_space=self._flow_space,
                policy=self._policy,
                tracer=self._tracer,
            )
            if self._workers:
                fabric.use_workers(self._workers)
            self._store = fabric  # type: ignore[assignment]
        return self._store  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # enqueue paths (the fabric routes on flow id; pointer is payload)

    def enqueue(self, packet: Packet, now: float) -> Optional[int]:
        """Admit one arrival; returns its fabric cancel handle.

        The handle encodes the routed shard and the shard-local circuit
        address, and works with the inherited :meth:`cancel` and the
        fabric-aware :meth:`reschedule` until the packet is served.
        """
        tags = self.clock.on_arrival(packet.flow_id, packet.size_bits, now)
        packet.start_tag = tags.start_tag
        packet.finish_tag = tags.finish_tag
        pointer = self.buffer.try_store(packet)
        if pointer is None:
            self.dropped += 1
            return None
        try:
            return self.store.push(tags.finish_tag, packet.flow_id, pointer)
        except ProtocolError:
            # Span-guard refusal: release the slot, keep the buffer's
            # occupancy accounting exact (no orphaned packets).
            self.buffer.fetch(pointer)
            raise

    # cancel() is inherited: ScheduleFabric.remove matches the store
    # contract, handing back (finish_tag, pointer) for the buffer fetch.

    def add_relocation_listener(self, listener) -> None:
        """Subscribe to fabric handle relocations (backlog migration).

        Handle-holding layers above the system (timer wheels, service
        sessions) register here; see
        :meth:`~repro.fabric.fabric.ScheduleFabric.add_relocation_listener`.
        """
        self.store.add_relocation_listener(listener)

    def reschedule(self, handle: int, new_finish_tag: float) -> int:
        """Repin a queued packet on its shard; returns the new handle."""
        new_handle = self.store.retag(handle, new_finish_tag)
        shard, local = self.store.handle_location(new_handle)
        circuit = self.store.stores[shard].circuit
        _, (_flow_id, pointer) = circuit.handle_payload(local)
        packet = self.buffer.peek(pointer)
        if packet is not None:
            packet.finish_tag = new_finish_tag
        return new_handle

    def enqueue_batch(self, packets: Iterable[Packet]) -> int:
        """Batched arrivals; service order matches per-packet enqueues."""
        pushes = []
        for packet in packets:
            tags = self.clock.on_arrival(
                packet.flow_id, packet.size_bits, packet.arrival_time
            )
            packet.start_tag = tags.start_tag
            packet.finish_tag = tags.finish_tag
            pointer = self.buffer.try_store(packet)
            if pointer is None:
                self.dropped += 1
                continue
            pushes.append((tags.finish_tag, packet.flow_id, pointer))
        self.store.push_batch(pushes)
        return len(pushes)

    # select_next / select_batch are inherited: the fabric's pop paths
    # return (finish_tag, pointer) exactly like the bare tag store.

    # ------------------------------------------------------------------
    # throughput model

    def sustained_packets_per_second(self) -> float:
        """Aggregate peak: N circuits each retiring one op per 4 cycles.

        Reached only when the partition keeps every shard busy; the
        bench fabric phase measures how close a hashed workload gets via
        makespan cycles.
        """
        return self.shards * self.clock_hz / 4.0

    def close(self) -> None:
        """Release the worker pool, if one is attached."""
        if self._store is not None:
            self._store.close_workers()
