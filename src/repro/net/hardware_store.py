"""The hardware sort/retrieve circuit as a WFQ tag store.

This is the glue of paper Fig. 1: the WFQ tag-computation block produces
*real-valued* virtual finishing tags, while the circuit sorts fixed-width
integers.  :class:`HardwareTagStore` quantizes each tag to the circuit's
word format, manages the cyclical tag space of Fig. 6, and plugs into
:class:`~repro.sched.wfq.WFQScheduler` through the
:class:`~repro.sched.wfq.TagStore` protocol.

Wrap management follows the paper's Fig. 6 discipline.  Tags are tracked
*unwrapped* (a monotone integer); the circuit stores them modulo the tag
space.  A **clear frontier** sweeps ahead of the inserts: before the first
insert whose unwrapped value enters a new root-literal section, every
section between the frontier and it is bulk-cleared of the previous lap's
stale markers (:meth:`~repro.core.sort_retrieve.TagSortRetrieveCircuit.clear_stale_section`),
so a raw closest-match search can never land on a stale marker across the
wrap boundary.  A **span guard** enforces the sequence-number condition
that makes the wrapped window unambiguous: the live tag span must stay
under half the tag space, or the configured ``granularity`` is too fine
for the workload and a :class:`~repro.hwsim.errors.ProtocolError` reports
it.

Quantization effects are first-class: two tags in the same quantum are
served FCFS, and the resulting QoS degradation versus the exact software
sorter is what the granularity benchmarks measure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.engine import make_circuit, resolve_mode
from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError, ProtocolError


class HardwareTagStore:
    """Quantizing, wrap-managing adapter over the sort/retrieve circuit."""

    def __init__(
        self,
        *,
        fmt: WordFormat = PAPER_FORMAT,
        granularity: float = 1.0,
        capacity: int = 4096,
        fast_mode: bool = False,
        turbo: bool = False,
        mode: Optional[str] = None,
        tracer=None,
    ) -> None:
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        self.fmt = fmt
        self.granularity = granularity
        self.mode = resolve_mode(mode, turbo)
        self.circuit = make_circuit(
            fmt,
            mode=self.mode,
            capacity=capacity,
            modular=True,
            fast_mode=fast_mode,
            tracer=tracer,
        )
        self._section_span = fmt.capacity // fmt.branching_factor
        # Tag-space scalars cached off the word-format property chain:
        # the per-op adapter paths consult them several times per push.
        self._tag_space = fmt.capacity
        self._half_space = fmt.capacity // 2
        self._branching = fmt.branching_factor
        #: highest unwrapped section index ever prepared for inserts
        self._frontier: Optional[int] = None
        self._last_served_unwrapped: Optional[int] = None
        self._min_inserted_unwrapped: Optional[int] = None
        self.sections_cleared = 0
        self.markers_purged = 0
        self.clamped_inserts = 0
        self.clamp_error_quanta = 0

    def describe(self) -> dict:
        """Machine-readable configuration (circuit config + granularity).

        The canonical ``config`` block for JSONL trace headers produced
        by runs driven through this store.
        """
        config = self.circuit.describe()
        config["granularity"] = self.granularity
        return config

    # ------------------------------------------------------------------
    # quantization and wrap management

    def quantize(self, finish_tag: float) -> int:
        """Unwrapped (monotone, unbounded) integer tag."""
        return int(finish_tag / self.granularity)

    def _span_floor(self) -> Optional[int]:
        """A lower bound on the smallest live unwrapped tag.

        Service is monotone, so the last served tag bounds every live tag
        from below; before any service, the smallest insert does.
        """
        if self._last_served_unwrapped is not None:
            return self._last_served_unwrapped
        return self._min_inserted_unwrapped

    def _guard_span(self, unwrapped: int) -> None:
        floor = self._span_floor()
        if floor is None:
            return
        if unwrapped - floor >= self._half_space:
            raise ProtocolError(
                f"live tag span {unwrapped - floor} quanta exceeds half the "
                f"{self._tag_space}-value tag space; increase granularity "
                f"(currently {self.granularity}) or widen the word format"
            )

    def _prepare_sections(self, unwrapped: int) -> None:
        """Advance the clear frontier to the target unwrapped section.

        Every section the frontier passes is bulk-cleared of the previous
        lap's stale markers (the Fig. 6 maintenance step).  On the first
        lap the clears are no-ops because the tree starts empty.
        """
        target = unwrapped // self._section_span
        if self._frontier is None:
            self._frontier = target
            return
        while self._frontier < target:
            self._frontier += 1
            section = self._frontier % self._branching
            purged = self.circuit.clear_stale_section(section)
            if purged:
                self.markers_purged += purged
                self.sections_cleared += 1

    def _is_behind_minimum(self, raw: int) -> bool:
        minimum = self.circuit.storage._head_tag  # peek_min register
        if minimum is None:
            return False
        distance = (raw - minimum) % self._tag_space
        return distance >= self._half_space

    # ------------------------------------------------------------------
    # TagStore protocol

    def push(self, finish_tag: float, flow_id: int) -> int:
        """Quantize and insert one tag; payload carries the exact tag.

        Returns the circuit handle (storage address) of the inserted
        entry, usable with :meth:`remove` / :meth:`retag` until the
        entry is served.  Callers driving the plain
        :class:`~repro.sched.wfq.TagStore` protocol may ignore it.

        The paper asserts that "the WFQ algorithm always produces tags
        larger than, or equal to, the smallest tag already in the system"
        (Section III-A) — the property its deferred marker deletion rests
        on.  Exact WFQ violates it occasionally: a newly busy high-weight
        session can receive a finishing tag *below* the current minimum
        (its tag starts from virtual time, which trails the minimum
        outstanding tag).  The hardware must resolve this with registers
        only, so such a tag is **clamped to the current minimum's
        quantum**: it is served FCFS alongside the minimum instead of
        strictly before it.  ``clamped_inserts`` / ``clamp_error_quanta``
        quantify how often and by how much, and the granularity benchmark
        sweeps the resulting QoS error.  Clamping also keeps circuit
        service monotone in raw tag order, which is exactly what makes
        stale markers unreachable (they are all at or below the last
        served value).
        """
        if self.circuit.storage._count == 0:  # len(self), minus two hops
            # The scheduler drained: the circuit re-enters initialization
            # mode (stale markers flush), so lap/frontier bookkeeping
            # restarts as a fresh epoch.
            self._frontier = None
            self._last_served_unwrapped = None
            self._min_inserted_unwrapped = None
        unwrapped = int(finish_tag / self.granularity)  # quantize()
        # The span guard must precede the behind-minimum test: a raw
        # value more than half the space *ahead* is indistinguishable
        # from one behind under serial-number comparison, and only the
        # unwrapped value can tell the two apart.
        self._guard_span(unwrapped)
        raw = unwrapped % self._tag_space
        floor = self._span_floor()
        regressed = floor is not None and unwrapped < floor
        # A regression bigger than half the space aliases as "forward"
        # under raw serial-number comparison, so the unwrapped check must
        # come first; the raw check then covers within-window reordering.
        if regressed or self._is_behind_minimum(raw):
            raw = self.circuit.peek_min()
            floor = self._span_floor()
            quanta = max(0, floor - unwrapped) if floor is not None else 0
            self.clamp_error_quanta += quanta
            self.clamped_inserts += 1
            tracer = self.circuit.tracer
            if tracer.enabled:
                # The clamp is the store's backup path: the tag could
                # not be inserted where WFQ wanted it.
                tracer.event(
                    "clamp", unwrapped=unwrapped, raw=raw, quanta=quanta
                )
            return self.circuit.insert(raw, payload=(finish_tag, flow_id))
        self._prepare_sections(unwrapped)
        if (
            self._min_inserted_unwrapped is None
            or unwrapped < self._min_inserted_unwrapped
        ):
            self._min_inserted_unwrapped = unwrapped
        return self.circuit.insert(raw, payload=(finish_tag, flow_id))

    def push_batch(self, items: List[Tuple[float, int]]) -> None:
        """Quantize and insert a run of ``(finish_tag, payload)`` pairs.

        Service-order equivalent to calling :meth:`push` per item, with
        the whole wrap discipline — span guard, clamping, frontier
        advance — evaluated in one scalar pass over the quantized tags
        before a single :meth:`TagSortRetrieveCircuit.insert_batch`
        call touches the circuit.  Validation therefore runs up front:
        a span-guard violation raises *before* any insert, leaving the
        store untouched (the per-op loop would stop mid-run instead).
        """
        items = list(items)
        if not items:
            return
        fresh_epoch = len(self) == 0
        if fresh_epoch:
            self._frontier = None
            self._last_served_unwrapped = None
            self._min_inserted_unwrapped = None
        space = self.fmt.capacity
        half = space // 2
        last_served = self._last_served_unwrapped
        min_inserted = self._min_inserted_unwrapped
        # The live minimum in unwrapped terms: it can only rise during a
        # pure-insert run (anything logically below it is clamped), so a
        # scalar mirror of the circuit's head register suffices.
        min_live: Optional[int] = None
        raw_min = self.circuit.peek_min()
        if raw_min is not None:
            base = last_served if last_served is not None else min_inserted
            if base is None:
                base = 0
            min_live = base + ((raw_min - base) % space)
        raws: List[int] = []
        payloads: List[Tuple[float, int]] = []
        clamped = 0
        clamp_quanta = 0
        first_section: Optional[int] = None
        prepare_target: Optional[int] = None
        for finish_tag, flow_id in items:
            unwrapped = self.quantize(finish_tag)
            floor = last_served if last_served is not None else min_inserted
            if floor is not None and unwrapped - floor >= half:
                raise ProtocolError(
                    f"live tag span {unwrapped - floor} quanta exceeds half "
                    f"the {space}-value tag space; increase granularity "
                    f"(currently {self.granularity}) or widen the word format"
                )
            raw = unwrapped % space
            regressed = floor is not None and unwrapped < floor
            behind = (
                min_live is not None
                and (raw - min_live) % space >= half
            )
            if regressed or behind:
                raw = min_live % space
                raws.append(raw)
                quanta = max(0, floor - unwrapped) if floor is not None else 0
                clamp_quanta += quanta
                clamped += 1
                tracer = self.circuit.tracer
                if tracer.enabled:
                    tracer.event(
                        "clamp", unwrapped=unwrapped, raw=raw, quanta=quanta
                    )
            else:
                if first_section is None:
                    first_section = unwrapped // self._section_span
                if prepare_target is None or unwrapped > prepare_target:
                    prepare_target = unwrapped
                if min_inserted is None or unwrapped < min_inserted:
                    min_inserted = unwrapped
                if min_live is None or unwrapped < min_live:
                    min_live = unwrapped
                raws.append(raw)
            payloads.append((finish_tag, flow_id))
        if prepare_target is not None:
            if fresh_epoch:
                # The circuit re-enters initialization mode, so per-op
                # pushes would flush the whole tree at the first insert
                # — *before* any frontier clear of this busy period.
                # Flush here for the same effect; otherwise the clears
                # below would purge (and count) stale markers the flush
                # is about to wipe anyway.
                self.circuit.flush_stale_markers()
            if self._frontier is None:
                # Mirror the per-op discipline: the first prepared
                # section of an epoch anchors the frontier (no clears);
                # the advance to the batch maximum then clears every
                # section it passes.
                self._frontier = first_section
            self._prepare_sections(prepare_target)
        self._min_inserted_unwrapped = min_inserted
        self.circuit.insert_batch(raws, payloads)
        self.clamped_inserts += clamped
        self.clamp_error_quanta += clamp_quanta

    def pop_batch(self, count: int) -> List[Tuple[float, int]]:
        """Serve the ``count`` smallest tags; exact (float) tags back.

        Equivalent to ``count`` calls of :meth:`pop_min`, with the
        circuit-side bookkeeping amortized by
        :meth:`TagSortRetrieveCircuit.dequeue_batch`.
        """
        served = self.circuit.dequeue_batch(count)
        space = self.fmt.capacity
        out: List[Tuple[float, int]] = []
        for entry in served:
            finish_tag, flow_id = entry.payload
            base = self._span_floor()
            if base is None:
                base = 0
            unwrapped = base + ((entry.tag - base) % space)
            if (
                self._last_served_unwrapped is None
                or unwrapped > self._last_served_unwrapped
            ):
                self._last_served_unwrapped = unwrapped
            out.append((finish_tag, flow_id))
        return out

    def pop_min(self) -> Tuple[float, int]:
        """Serve the smallest tag; returns the exact (float) tag."""
        served = self.circuit.dequeue_min()
        finish_tag, flow_id = served.payload
        # Reconstruct the unwrapped value of the served raw tag: service
        # is monotone, so it is the smallest consistent value at or above
        # the previous floor.
        base = self._span_floor()
        if base is None:
            base = 0
        unwrapped = base + ((served.tag - base) % self._tag_space)
        if (
            self._last_served_unwrapped is None
            or unwrapped > self._last_served_unwrapped
        ):
            self._last_served_unwrapped = unwrapped
        return finish_tag, flow_id

    # ------------------------------------------------------------------
    # dynamic updates (timer cancel / deadline repin)

    def remove(self, handle: int) -> Tuple[float, int]:
        """Cancel the live entry at ``handle``; exact (tag, flow) back.

        ``handle`` is the value :meth:`push` returned.  The entry is
        unlinked wherever it sits (no drain-and-refill) and its exact
        payload returned.  Wrap bookkeeping is untouched: the service
        floor only tracks *served* tags, and a cancelled entry was never
        served.  A stale handle raises
        :class:`~repro.hwsim.errors.ProtocolError` without touching
        anything.
        """
        removed = self.circuit.remove(handle)
        return removed.payload

    def retag(self, handle: int, new_finish_tag: float) -> int:
        """Repin the live entry at ``handle`` to a new finishing tag.

        A cancel plus a re-push under the full wrap discipline — span
        guard, behind-minimum clamping, frontier advance — so the moved
        entry lands exactly where a fresh :meth:`push` of
        ``new_finish_tag`` for the same flow would.  The span guard runs
        *before* the removal, so a rejected repin leaves the store
        untouched.  Returns the entry's new handle.
        """
        self._guard_span(self.quantize(new_finish_tag))
        _, flow_id = self.circuit.remove(handle).payload
        return self.push(new_finish_tag, flow_id)

    def accepts_without_clamp(self, finish_tag: float) -> bool:
        """Whether a push of ``finish_tag`` lands at its own quantum.

        True when the tag passes the span guard and is not behind the
        live minimum — a push would place it exactly where the sort
        wants it, with no FCFS clamping and no
        :class:`~repro.hwsim.errors.ProtocolError`.  The fabric's
        backlog migration uses this to move only entries the target
        shard can hold without degrading their service position.
        Peek-only: nothing is touched or accounted.
        """
        if self.circuit.storage._count == 0:
            # A push into a drained store opens a fresh epoch: every
            # floor resets, so any tag is accepted at its own quantum.
            return True
        unwrapped = self.quantize(finish_tag)
        floor = self._span_floor()
        if floor is not None:
            if unwrapped - floor >= self._half_space:
                return False
            if unwrapped < floor:
                return False
        return not self._is_behind_minimum(unwrapped % self._tag_space)

    def peek_min_exact(self) -> Optional[Tuple[float, int]]:
        """The head entry's exact (tag, payload) without dequeuing.

        Hardware keeps the head link's contents in registers (it was
        read when it became the head), so this costs no memory access —
        modeled by the head-register accessor
        :meth:`~repro.core.sort_retrieve.TagSortRetrieveCircuit.peek_head`,
        which stays outside the access-stats accounting by contract.
        """
        head = self.circuit.peek_head()
        if head is None:
            return None
        return head.payload

    def __len__(self) -> int:
        return self.circuit.count

    # ------------------------------------------------------------------
    # checkpoint / restore (shard migration, process-parallel backends)

    def to_state(self) -> dict:
        """Exact serializable snapshot: circuit state + wrap bookkeeping.

        Everything the Fig. 6 wrap discipline tracks outside the circuit
        — clear frontier, unwrapped service floor, clamp counters — is
        captured alongside the full circuit snapshot, so a restored
        store resumes mid-lap with identical behaviour and accounting.
        """
        return {
            "kind": "hardware_tag_store",
            "mode": self.mode,
            "granularity": self.granularity,
            "frontier": self._frontier,
            "last_served_unwrapped": self._last_served_unwrapped,
            "min_inserted_unwrapped": self._min_inserted_unwrapped,
            "sections_cleared": self.sections_cleared,
            "markers_purged": self.markers_purged,
            "clamped_inserts": self.clamped_inserts,
            "clamp_error_quanta": self.clamp_error_quanta,
            "circuit": self.circuit.to_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "hardware_tag_store":
            raise ConfigurationError(
                f"not a tag store snapshot: kind={state.get('kind')!r}"
            )
        if state["granularity"] != self.granularity:
            raise ConfigurationError(
                f"snapshot granularity {state['granularity']} != "
                f"{self.granularity}"
            )
        self.circuit.load_state(state["circuit"])
        self._frontier = state["frontier"]
        self._last_served_unwrapped = state["last_served_unwrapped"]
        self._min_inserted_unwrapped = state["min_inserted_unwrapped"]
        self.sections_cleared = state["sections_cleared"]
        self.markers_purged = state["markers_purged"]
        self.clamped_inserts = state["clamped_inserts"]
        self.clamp_error_quanta = state["clamp_error_quanta"]

    @classmethod
    def from_state(
        cls, state: dict, *, mode: Optional[str] = None, tracer=None
    ) -> "HardwareTagStore":
        """Reconstruct a store from a :meth:`to_state` snapshot.

        ``mode`` overrides the engine at restore time (snapshots are
        engine-neutral); when omitted, the snapshot's own ``mode`` key
        — or, for pre-engine snapshots, its legacy ``turbo`` flag —
        picks the engine.
        """
        config = state["circuit"]["config"]
        fmt = WordFormat(
            levels=config["levels"], literal_bits=config["literal_bits"]
        )
        if mode is None:
            mode = state.get("mode") or (
                "turbo" if config.get("turbo", False) else "gate"
            )
        store = cls(
            fmt=fmt,
            granularity=state["granularity"],
            capacity=config["capacity"],
            fast_mode=config["fast_mode"],
            mode=mode,
        )
        store.load_state(state)
        if tracer is not None:
            store.attach_tracer(tracer)
        return store

    # ------------------------------------------------------------------
    # telemetry

    @property
    def tracer(self):
        """The circuit's tracer (the shared :data:`NULL_TRACER` when off)."""
        return self.circuit.tracer

    def attach_tracer(self, tracer) -> None:
        """Start tracing: circuit ops plus the store's clamp events."""
        self.circuit.attach_tracer(tracer)

    def detach_tracer(self) -> None:
        """Stop tracing and restore the uninstrumented hot paths."""
        self.circuit.detach_tracer()

    # ------------------------------------------------------------------
    # introspection for experiments

    @property
    def turbo(self) -> bool:
        """Whether the circuit runs the access-fused turbo engine."""
        return self.circuit.turbo

    @property
    def cycles(self) -> int:
        """Clock cycles the circuit has consumed (4 per operation)."""
        return self.circuit.cycles

    @property
    def operations(self) -> int:
        """Circuit operations performed."""
        return self.circuit.operations
