"""Multi-hop scheduling: end-to-end delay across a chain of WFQ links.

The paper's QoS motivation is end to end: "end-to-end delays for such
packet flows must also be kept within certain limits if, for example, a
conversation or other interaction is to be practical" (Section I-A).
The single-node Parekh–Gallager bound composes across a path of H WFQ
hops serving a (sigma, g)-constrained flow::

    D_e2e <= sigma / g  +  H * L / g  +  sum_h (L_max / C_h)

(one burst drain, one own-packet serialization per hop, one maximum
cross-packet per hop).  :class:`MultiHopNetwork` chains per-hop
schedulers — each hop's departures become the next hop's arrivals — so
that bound can be *measured* rather than assumed, for WFQ and for any
other policy in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..hwsim.errors import ConfigurationError
from ..sched.base import PacketScheduler, SimulationResult, simulate
from ..sched.packet import Packet


@dataclass(frozen=True)
class HopResult:
    """One hop's simulation outcome."""

    hop_index: int
    result: SimulationResult


@dataclass(frozen=True)
class EndToEndRecord:
    """A packet's journey across the chain."""

    packet_id: int
    flow_id: int
    size_bytes: int
    ingress_time: float
    egress_time: float

    @property
    def delay(self) -> float:
        return self.egress_time - self.ingress_time


class MultiHopNetwork:
    """A linear chain of independently scheduled store-and-forward hops."""

    def __init__(
        self,
        scheduler_factories: Sequence[Callable[[], PacketScheduler]],
    ) -> None:
        if not scheduler_factories:
            raise ConfigurationError("need at least one hop")
        self._factories = list(scheduler_factories)

    @property
    def hop_count(self) -> int:
        return len(self._factories)

    def run(self, trace: Sequence[Packet]) -> List[EndToEndRecord]:
        """Push a trace through every hop; returns end-to-end records.

        Each hop is simulated to completion; a packet's departure time at
        hop h becomes its arrival time at hop h+1 (store-and-forward,
        zero propagation delay — add a constant per hop externally if
        needed).
        """
        ingress: Dict[int, float] = {
            packet.packet_id: packet.arrival_time for packet in trace
        }
        current = [
            Packet(
                flow_id=p.flow_id,
                size_bytes=p.size_bytes,
                arrival_time=p.arrival_time,
                packet_id=p.packet_id,
            )
            for p in trace
        ]
        self.hop_results: List[HopResult] = []
        for hop_index, factory in enumerate(self._factories):
            scheduler = factory()
            result = simulate(scheduler, current)
            self.hop_results.append(
                HopResult(hop_index=hop_index, result=result)
            )
            current = [
                Packet(
                    flow_id=p.flow_id,
                    size_bytes=p.size_bytes,
                    arrival_time=p.departure_time,
                    packet_id=p.packet_id,
                )
                for p in result.packets
            ]
        return [
            EndToEndRecord(
                packet_id=p.packet_id,
                flow_id=p.flow_id,
                size_bytes=p.size_bytes,
                ingress_time=ingress[p.packet_id],
                egress_time=p.arrival_time,  # post-last-hop departure
            )
            for p in current
        ]


def e2e_delay_bound(
    *,
    hops: int,
    rate_bps: float,
    guaranteed_rate_bps: float,
    burst_bits: float,
    packet_bytes: int,
    max_packet_bytes: int = 1500,
) -> float:
    """The composed Parekh–Gallager end-to-end bound for one flow."""
    if hops < 1:
        raise ConfigurationError("need at least one hop")
    if guaranteed_rate_bps <= 0 or rate_bps <= 0:
        raise ConfigurationError("rates must be positive")
    burst = burst_bits / guaranteed_rate_bps
    per_hop_own = packet_bytes * 8 / guaranteed_rate_bps
    per_hop_cross = max_packet_bytes * 8 / rate_bps
    return burst + hops * (per_hop_own + per_hop_cross)


def worst_flow_delay(
    records: Sequence[EndToEndRecord], flow_id: int
) -> float:
    """Worst end-to-end delay observed for one flow."""
    delays = [r.delay for r in records if r.flow_id == flow_id]
    if not delays:
        raise ConfigurationError(f"no records for flow {flow_id}")
    return max(delays)
