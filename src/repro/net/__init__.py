"""Scheduler-system integration (paper Fig. 1) and QoS metrics."""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    ServiceLevelAgreement,
)
from .buffer import SharedPacketBuffer
from .dual_circuit import HardwareWF2QPlusSystem
from .fabric_system import FabricSchedulerSystem
from .hardware_store import HardwareTagStore
from .metrics import (
    DelayStats,
    gps_lag,
    gps_lead,
    jain_index,
    max_gps_lag,
    max_gps_lead,
    out_of_order_service,
    per_flow_delays,
    pg_bound_violations,
    throughput_shares,
    weighted_jain_index,
    worst_work_lead,
)
from .multihop import (
    EndToEndRecord,
    MultiHopNetwork,
    e2e_delay_bound,
    worst_flow_delay,
)
from .scheduler_system import DEFAULT_CLOCK_HZ, HardwareWFQSystem
from .session_table import SessionRecord, SessionStateTable

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ServiceLevelAgreement",
    "SharedPacketBuffer",
    "HardwareWF2QPlusSystem",
    "FabricSchedulerSystem",
    "HardwareTagStore",
    "DelayStats",
    "gps_lag",
    "gps_lead",
    "max_gps_lead",
    "jain_index",
    "max_gps_lag",
    "out_of_order_service",
    "per_flow_delays",
    "pg_bound_violations",
    "throughput_shares",
    "weighted_jain_index",
    "worst_work_lead",
    "DEFAULT_CLOCK_HZ",
    "HardwareWFQSystem",
    "EndToEndRecord",
    "MultiHopNetwork",
    "e2e_delay_bound",
    "worst_flow_delay",
    "SessionRecord",
    "SessionStateTable",
]
