"""The complete hardware WFQ scheduler of paper Fig. 1.

Three blocks in one data flow:

1. **WFQ tag computation** (ref. [8]) — the
   :class:`~repro.sched.virtual_time.VirtualClock` produces a finishing
   tag per arriving packet (eq. (1) machinery included);
2. **shared packet buffer** (ref. [9]) — packets are parked in
   :class:`~repro.net.buffer.SharedPacketBuffer` and only their pointers
   move through the scheduler;
3. **tag sort/retrieve circuit** — the
   :class:`~repro.net.hardware_store.HardwareTagStore` keeps (tag,
   pointer) pairs sorted so egress always pops the smallest tag's pointer
   in fixed time.

The class implements :class:`~repro.sched.base.PacketScheduler`, so the
same :func:`~repro.sched.base.simulate` loop that drives the software
policies drives the full hardware system — which is how the QoS
benchmarks compare hardware-quantized WFQ against exact WFQ, and how the
throughput benchmark converts circuit cycles into the paper's
packets-per-second and line-rate figures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..hwsim.errors import ConfigurationError, ProtocolError
from ..sched.base import PacketScheduler
from ..sched.packet import Packet
from ..sched.virtual_time import VirtualClock
from .buffer import SharedPacketBuffer
from .hardware_store import HardwareTagStore
from ..core.engine import resolve_mode
from ..core.words import PAPER_FORMAT, WordFormat

#: Post-layout clock target: 35.8 Mpps at 4 cycles/operation (Section IV).
DEFAULT_CLOCK_HZ = 143.2e6


class HardwareWFQSystem(PacketScheduler):
    """WFQ tag computation + packet buffer + sort/retrieve circuit."""

    name = "hw_wfq"

    def __init__(
        self,
        rate_bps: float,
        *,
        fmt: WordFormat = PAPER_FORMAT,
        granularity: Optional[float] = None,
        buffer_capacity: int = 8192,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        fast_mode: bool = False,
        turbo: bool = False,
        mode: Optional[str] = None,
        tracer=None,
    ) -> None:
        super().__init__(rate_bps)
        if clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")
        self.clock_hz = clock_hz
        self.clock = VirtualClock(rate_bps)
        self.buffer = SharedPacketBuffer(buffer_capacity)
        self._fmt = fmt
        self._buffer_capacity = buffer_capacity
        self._explicit_granularity = granularity
        self._fast_mode = fast_mode
        self._mode = resolve_mode(mode, turbo)
        self._tracer = tracer
        self._store: Optional[HardwareTagStore] = None
        self.dropped = 0

    #: packets of worst-case tag increment half the tag space must cover
    AUTO_GRANULARITY_HEADROOM = 128
    #: maximum packet size assumed by the auto granularity rule
    AUTO_GRANULARITY_MAX_BYTES = 1500

    @property
    def store(self) -> HardwareTagStore:
        """The sort/retrieve circuit adapter (created on first use).

        When no explicit ``granularity`` was given, the quantum is sized
        from the registered weights so that
        :data:`AUTO_GRANULARITY_HEADROOM` worst-case per-packet tag
        increments (a maximum-size packet on the lightest flow) fit in
        half the tag space — the sequence-number window the wrap logic
        needs.
        """
        if self._store is None:
            self._store = HardwareTagStore(
                fmt=self._fmt,
                granularity=self._resolve_granularity(),
                capacity=self._buffer_capacity,
                fast_mode=self._fast_mode,
                mode=self._mode,
                tracer=self._tracer,
            )
        return self._store

    def _resolve_granularity(self) -> float:
        """The tag quantum: explicit, or auto-sized from the flow table."""
        if self._explicit_granularity is not None:
            return self._explicit_granularity
        min_weight = min((flow.weight for flow in self.flows), default=1.0)
        worst_increment = self.AUTO_GRANULARITY_MAX_BYTES * 8 / min_weight
        half_space = self._fmt.capacity // 2
        return self.AUTO_GRANULARITY_HEADROOM * worst_increment / half_space

    def attach_tracer(self, tracer) -> None:
        """Trace the underlying store/circuit (applies on store creation
        too, so it can be called before the first enqueue)."""
        self._tracer = tracer
        if self._store is not None:
            self._store.attach_tracer(tracer)

    def detach_tracer(self) -> None:
        """Stop tracing the underlying store/circuit."""
        self._tracer = None
        if self._store is not None:
            self._store.detach_tracer()

    # ------------------------------------------------------------------
    # PacketScheduler interface

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        if self._store is not None and self._explicit_granularity is None:
            if self._store.operations > 0 or len(self._store) > 0:
                raise ConfigurationError(
                    f"cannot register flow {flow_id}: tags are already "
                    "live in the sort/retrieve circuit, so the frozen tag "
                    "quantum cannot be resized; register every flow before "
                    "the first enqueue, or pass an explicit granularity"
                )
            # The store was instantiated early (a `backlog` probe or an
            # enqueue-before-registration) with a quantum sized from an
            # incomplete flow table.  No tag has passed through it yet,
            # so drop it and let the next access re-derive the auto
            # granularity from the full weight set.
            self._store = None
        super().add_flow(flow_id, weight, **kwargs)
        self.clock.register(flow_id, weight)

    def set_flow_weight(
        self,
        flow_id: int,
        weight: float,
        *,
        guaranteed_rate_bps: Optional[float] = None,
    ) -> None:
        """Renegotiate a live flow's weight.

        Requires an explicit ``granularity`` once tags are live: the
        quantum is frozen with the circuit, so an auto-sized quantum
        derived from the old weight set cannot be trusted to cover a
        renegotiated (possibly lighter) flow's tag increments.
        """
        if (
            self._explicit_granularity is None
            and self._store is not None
            and (self._store.operations > 0 or len(self._store) > 0)
        ):
            raise ConfigurationError(
                f"cannot renegotiate flow {flow_id}: the auto-sized tag "
                "quantum is frozen while tags are live; construct the "
                "system with an explicit granularity to allow live "
                "weight changes"
            )
        super().set_flow_weight(
            flow_id, weight, guaranteed_rate_bps=guaranteed_rate_bps
        )
        self.clock.register(flow_id, weight)

    @property
    def backlog(self) -> int:
        return len(self.store)

    def enqueue(self, packet: Packet, now: float) -> Optional[int]:
        """Admit one arrival; returns its cancel handle (None if dropped).

        The handle is the sort/retrieve circuit's storage address and
        stays valid until the packet is served, cancelled, or repinned.
        """
        tags = self.clock.on_arrival(packet.flow_id, packet.size_bits, now)
        packet.start_tag = tags.start_tag
        packet.finish_tag = tags.finish_tag
        pointer = self.buffer.try_store(packet)
        if pointer is None:
            self.dropped += 1
            return None
        try:
            return self.store.push(tags.finish_tag, pointer)
        except ProtocolError:
            # The circuit refused the tag (span guard): release the
            # buffer slot so a rejected admission cannot leak storage.
            self.buffer.fetch(pointer)
            raise

    def select_next(self, now: float) -> Optional[Packet]:
        if len(self.store) == 0:
            return None
        self.clock.advance_to(now)
        _, pointer = self.store.pop_min()
        return self.buffer.fetch(pointer)

    # ------------------------------------------------------------------
    # dynamic updates

    def cancel(self, handle: int) -> Packet:
        """Withdraw a queued packet by its :meth:`enqueue` handle.

        The (tag, pointer) pair is unlinked from the sort/retrieve
        circuit in place — the rest of the schedule is untouched — and
        the packet's buffer slot is released.  Returns the withdrawn
        packet.  A stale handle (already served or cancelled) raises
        :class:`~repro.hwsim.errors.ProtocolError`.
        """
        _, pointer = self.store.remove(handle)
        return self.buffer.fetch(pointer)

    def reschedule(self, handle: int, new_finish_tag: float) -> int:
        """Move a queued packet to a new finishing tag (repin).

        The packet stays parked in the buffer; only its (tag, pointer)
        pair moves inside the circuit, under the same quantization and
        wrap discipline as a fresh enqueue.  Returns the new handle.
        """
        new_handle = self.store.retag(handle, new_finish_tag)
        pointer = self.store.circuit.handle_payload(new_handle)[1]
        packet = self.buffer.peek(pointer)
        if packet is not None:
            packet.finish_tag = new_finish_tag
        return new_handle

    # ------------------------------------------------------------------
    # batched soak paths

    def enqueue_batch(self, packets: Iterable[Packet]) -> int:
        """Accept a run of arrivals in one amortized store operation.

        Tag computation stays per-packet (the virtual clock is a serial
        recurrence), but the quantize/wrap/insert work lands in a single
        :meth:`HardwareTagStore.push_batch`.  Service order matches
        per-packet :meth:`enqueue` calls.  Returns how many packets were
        admitted (the rest incremented :attr:`dropped`).
        """
        pushes = []
        for packet in packets:
            tags = self.clock.on_arrival(
                packet.flow_id, packet.size_bits, packet.arrival_time
            )
            packet.start_tag = tags.start_tag
            packet.finish_tag = tags.finish_tag
            pointer = self.buffer.try_store(packet)
            if pointer is None:
                self.dropped += 1
                continue
            pushes.append((tags.finish_tag, pointer))
        self.store.push_batch(pushes)
        return len(pushes)

    def select_batch(self, count: int, now: float) -> List[Packet]:
        """Serve up to ``count`` packets in one amortized store operation."""
        available = min(count, len(self.store))
        if available <= 0:
            return []
        self.clock.advance_to(now)
        pairs = self.store.pop_batch(available)
        return [self.buffer.fetch(pointer) for _, pointer in pairs]

    # ------------------------------------------------------------------
    # throughput model (Section IV)

    @property
    def circuit_busy_seconds(self) -> float:
        """Wall-clock time the circuit spent at ``clock_hz``."""
        return self.store.cycles / self.clock_hz

    def sustained_packets_per_second(self) -> float:
        """One operation per four cycles: the paper's 35.8 Mpps figure."""
        return self.clock_hz / 4.0

    def sustained_line_rate_bps(self, mean_packet_bytes: float) -> float:
        """Line speed supported at a given mean packet size (40 Gb/s at
        the paper's conservative 140-byte average)."""
        if mean_packet_bytes <= 0:
            raise ConfigurationError("mean packet size must be positive")
        return self.sustained_packets_per_second() * mean_packet_bytes * 8

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Exact serializable snapshot of the whole scheduler system.

        Covers the GPS reference clock, the shared packet buffer (with
        parked packets), the sort/retrieve circuit (or fabric) state and
        the flow table — everything needed for a restored system to
        continue event-for-event identical service.
        """
        return {
            "kind": "hw_wfq_system",
            "rate_bps": self.rate_bps,
            "clock": self.clock.to_state(),
            "buffer": self.buffer.to_state(),
            "store": self.store.to_state(),
            "flows": [
                {
                    "flow_id": flow.flow_id,
                    "weight": flow.weight,
                    "guaranteed_rate_bps": flow.guaranteed_rate_bps,
                    "last_finish_tag": flow.last_finish_tag,
                }
                for flow in self.flows
            ],
            "dropped": self.dropped,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance.

        The instance must have been constructed with the same link rate
        and store configuration (format, granularity, capacity) as the
        one that was snapshotted; the store's own ``load_state``
        validates its half of that contract.
        """
        if state.get("kind") != "hw_wfq_system":
            raise ConfigurationError(
                f"not a scheduler system snapshot: kind={state.get('kind')!r}"
            )
        if state["rate_bps"] != self.rate_bps:
            raise ConfigurationError(
                f"snapshot link rate {state['rate_bps']} != {self.rate_bps}"
            )
        for record in state["flows"]:
            flow_id = int(record["flow_id"])
            if flow_id in self.flows:
                flow = self.flows.set_weight(
                    flow_id,
                    record["weight"],
                    guaranteed_rate_bps=record.get("guaranteed_rate_bps"),
                )
            else:
                flow = self.flows.add(
                    flow_id,
                    record["weight"],
                    guaranteed_rate_bps=record.get("guaranteed_rate_bps"),
                )
            flow.last_finish_tag = record.get("last_finish_tag", 0.0)
            self.clock.register(flow_id, record["weight"])
        self.clock.load_state(state["clock"])
        self.buffer.load_state(state["buffer"])
        self.store.load_state(state["store"])
        self.dropped = int(state.get("dropped", 0))
