"""The shared packet buffer of Fig. 1 — ref. [9].

Packets live in a shared memory pool; the scheduler passes *pointers*
around (they ride in the sort/retrieve circuit's linked-list payloads) and
the egress side redeems a pointer for the stored packet.  The paper's
buffer is a shared-memory gigabit-switch design; this model keeps its
essential properties — bounded capacity, pointer-based access, accounting
— over a Python free-list.

Occupancy is also the service plane's backpressure signal: the wfq.cc /
prio_wfq.cc exemplars mark ECN against buffer thresholds, and
:meth:`SharedPacketBuffer.mark_threshold` is the single source of truth
both the :mod:`repro.serve.backpressure` controller and the live plane
read, so a scraped gauge and a marking decision can never disagree about
where the threshold sits.
"""

from __future__ import annotations

from typing import List, Optional

from ..hwsim.errors import CapacityError, ConfigurationError
from ..hwsim.stats import AccessStats
from ..sched.packet import Packet


class SharedPacketBuffer:
    """Bounded pointer-addressed packet store."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be positive")
        self.capacity = capacity
        self.stats = AccessStats()
        self._slots: List[Optional[Packet]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.peak_occupancy = 0
        self.drop_count = 0

    @property
    def occupancy(self) -> int:
        """Packets currently stored."""
        return self.capacity - len(self._free)

    @property
    def occupancy_fraction(self) -> float:
        """Fill level in [0, 1] — the backpressure controller's input."""
        return self.occupancy / self.capacity

    @property
    def high_watermark(self) -> int:
        """Highest occupancy ever reached (gauge for the live plane).

        Alias of :attr:`peak_occupancy` under the conventional gauge
        name; one number feeds both ``/metrics`` and capacity planning.
        """
        return self.peak_occupancy

    @property
    def is_full(self) -> bool:
        """True when no slot is free."""
        return not self._free

    def mark_threshold(self, fraction: float) -> int:
        """Occupancy (in packets) at which a ``fraction`` threshold arms.

        The ECN-style marking and rejection thresholds of the service
        plane are configured as fractions of capacity; this converts one
        to the integral occupancy the comparison runs against (at least
        1, so a threshold can never arm on an empty buffer).
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                "mark threshold fraction must be in (0, 1]"
            )
        return max(1, int(self.capacity * fraction))

    def store(self, packet: Packet) -> int:
        """Place a packet, returning its pointer (slot index).

        Raises :class:`~repro.hwsim.errors.CapacityError` when full; use
        :meth:`try_store` for drop-counting ingress behaviour.
        """
        if not self._free:
            raise CapacityError("shared packet buffer full")
        pointer = self._free.pop()
        self._slots[pointer] = packet
        self.stats.record_write()
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return pointer

    def try_store(self, packet: Packet) -> Optional[int]:
        """Store if space allows; otherwise count the reject and return None.

        A rejected arrival is not silent: it increments
        :attr:`drop_count` *and* books the occupancy-check read in
        :attr:`stats` (the full test reads the free-list head register;
        an accepted store fuses that check into its write), so the
        access registry still accounts for every ingress decision.
        """
        if self.is_full:
            self.drop_count += 1
            self.stats.record_read()
            return None
        return self.store(packet)

    def fetch(self, pointer: int) -> Packet:
        """Redeem a pointer: remove and return the packet."""
        if not 0 <= pointer < self.capacity:
            raise ConfigurationError(f"pointer {pointer} out of range")
        packet = self._slots[pointer]
        if packet is None:
            raise ConfigurationError(f"pointer {pointer} is not occupied")
        self._slots[pointer] = None
        self._free.append(pointer)
        self.stats.record_read()
        return packet

    def peek(self, pointer: int) -> Optional[Packet]:
        """Inspect a slot without freeing it (debug)."""
        if not 0 <= pointer < self.capacity:
            raise ConfigurationError(f"pointer {pointer} out of range")
        return self._slots[pointer]

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Exact serializable snapshot: slots, free list, counters.

        Pointer identity is part of the scheduler's state (the circuit
        payloads hold slot indices), so the free list is serialized in
        order — a restored buffer hands out the same pointers in the
        same sequence.
        """
        return {
            "kind": "shared_packet_buffer",
            "capacity": self.capacity,
            "free": list(self._free),
            "slots": [
                [pointer, packet.to_dict()]
                for pointer, packet in enumerate(self._slots)
                if packet is not None
            ],
            "peak_occupancy": self.peak_occupancy,
            "drop_count": self.drop_count,
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "shared_packet_buffer":
            raise ConfigurationError(
                f"not a packet buffer snapshot: kind={state.get('kind')!r}"
            )
        if state["capacity"] != self.capacity:
            raise ConfigurationError(
                f"snapshot capacity {state['capacity']} != {self.capacity}"
            )
        self._slots = [None] * self.capacity
        for pointer, record in state["slots"]:
            self._slots[int(pointer)] = Packet.from_dict(record)
        self._free = [int(pointer) for pointer in state["free"]]
        self.peak_occupancy = state["peak_occupancy"]
        self.drop_count = state["drop_count"]
        stats = state.get("stats", {})
        self.stats = AccessStats(
            reads=int(stats.get("reads", 0)),
            writes=int(stats.get("writes", 0)),
        )

    @classmethod
    def from_state(cls, state: dict) -> "SharedPacketBuffer":
        """Reconstruct a buffer from a :meth:`to_state` snapshot."""
        buffer = cls(state["capacity"])
        buffer.load_state(state)
        return buffer
