"""The shared packet buffer of Fig. 1 — ref. [9].

Packets live in a shared memory pool; the scheduler passes *pointers*
around (they ride in the sort/retrieve circuit's linked-list payloads) and
the egress side redeems a pointer for the stored packet.  The paper's
buffer is a shared-memory gigabit-switch design; this model keeps its
essential properties — bounded capacity, pointer-based access, accounting
— over a Python free-list.
"""

from __future__ import annotations

from typing import List, Optional

from ..hwsim.errors import CapacityError, ConfigurationError
from ..hwsim.stats import AccessStats
from ..sched.packet import Packet


class SharedPacketBuffer:
    """Bounded pointer-addressed packet store."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be positive")
        self.capacity = capacity
        self.stats = AccessStats()
        self._slots: List[Optional[Packet]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.peak_occupancy = 0
        self.drop_count = 0

    @property
    def occupancy(self) -> int:
        """Packets currently stored."""
        return self.capacity - len(self._free)

    @property
    def is_full(self) -> bool:
        """True when no slot is free."""
        return not self._free

    def store(self, packet: Packet) -> int:
        """Place a packet, returning its pointer (slot index).

        Raises :class:`~repro.hwsim.errors.CapacityError` when full; use
        :meth:`try_store` for drop-counting ingress behaviour.
        """
        if not self._free:
            raise CapacityError("shared packet buffer full")
        pointer = self._free.pop()
        self._slots[pointer] = packet
        self.stats.record_write()
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return pointer

    def try_store(self, packet: Packet) -> Optional[int]:
        """Store if space allows; otherwise count a drop and return None."""
        if self.is_full:
            self.drop_count += 1
            return None
        return self.store(packet)

    def fetch(self, pointer: int) -> Packet:
        """Redeem a pointer: remove and return the packet."""
        if not 0 <= pointer < self.capacity:
            raise ConfigurationError(f"pointer {pointer} out of range")
        packet = self._slots[pointer]
        if packet is None:
            raise ConfigurationError(f"pointer {pointer} is not occupied")
        self._slots[pointer] = None
        self._free.append(pointer)
        self.stats.record_read()
        return packet

    def peek(self, pointer: int) -> Optional[Packet]:
        """Inspect a slot without freeing it (debug)."""
        if not 0 <= pointer < self.capacity:
            raise ConfigurationError(f"pointer {pointer} out of range")
        return self._slots[pointer]
