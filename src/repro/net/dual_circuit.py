"""WF²Q+ on hardware: the "two sort operations per packet" system.

The paper's one criticism of WF²Q+ (Section I-B): it "requires two sort
operations per packet" — one sorted structure over *start* tags (the
eligibility frontier) and one over *finish* tags (the service choice).
Since the sort/retrieve circuit is exactly a sorted-tag structure, the
natural hardware realization is **two instances of the circuit**:

* the *calendar* circuit holds ineligible packets keyed by start tag;
* the *service* circuit holds eligible packets keyed by finish tag;
* on every selection, the virtual clock advances and packets whose
  start tag it has passed migrate calendar -> service (one dequeue plus
  one insert each), then the service circuit pops its minimum.

:class:`HardwareWF2QPlusSystem` builds that datapath out of two
:class:`~repro.net.hardware_store.HardwareTagStore` instances and
exposes the measured circuit-operation count, making the paper's
two-sorts observation a number: ~2x the operations per packet of the
single-circuit WFQ system (plus migration traffic).
"""

from __future__ import annotations

from typing import Optional

from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError
from ..sched.base import PacketScheduler
from ..sched.packet import Packet
from .buffer import SharedPacketBuffer
from .hardware_store import HardwareTagStore

_SLACK = 1e-9


class HardwareWF2QPlusSystem(PacketScheduler):
    """WF²Q+ scheduling over two sort/retrieve circuits."""

    name = "hw_wf2q+"

    def __init__(
        self,
        rate_bps: float,
        *,
        fmt: WordFormat = PAPER_FORMAT,
        granularity: Optional[float] = None,
        buffer_capacity: int = 8192,
    ) -> None:
        super().__init__(rate_bps)
        self.buffer = SharedPacketBuffer(buffer_capacity)
        self._fmt = fmt
        self._buffer_capacity = buffer_capacity
        self._granularity = granularity
        self._calendar: Optional[HardwareTagStore] = None  # start tags
        self._service: Optional[HardwareTagStore] = None  # finish tags
        self._virtual = 0.0
        self.dropped = 0

    def _stores(self):
        if self._calendar is None:
            granularity = self._granularity
            if granularity is None:
                min_weight = min(
                    (flow.weight for flow in self.flows), default=1.0
                )
                granularity = 128 * (1500 * 8 / min_weight) / (
                    self._fmt.capacity // 2
                )
            self._calendar = HardwareTagStore(
                fmt=self._fmt,
                granularity=granularity,
                capacity=self._buffer_capacity,
            )
            self._service = HardwareTagStore(
                fmt=self._fmt,
                granularity=granularity,
                capacity=self._buffer_capacity,
            )
        return self._calendar, self._service

    # ------------------------------------------------------------------
    # observers

    @property
    def backlog(self) -> int:
        calendar, service = self._stores()
        return len(calendar) + len(service)

    @property
    def circuit_operations(self) -> int:
        """Total operations across both circuits (the 2x measurement)."""
        calendar, service = self._stores()
        return calendar.operations + service.operations

    @property
    def circuit_cycles(self) -> int:
        """Total cycles across both circuits."""
        calendar, service = self._stores()
        return calendar.cycles + service.cycles

    # ------------------------------------------------------------------
    # WF2Q+ machinery

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        start = max(self._virtual, flow.last_finish_tag)
        finish = start + packet.size_bits / flow.weight
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish_tag = finish
        pointer = self.buffer.try_store(packet)
        if pointer is None:
            self.dropped += 1
            return
        calendar, _ = self._stores()
        # Every packet passes through both sorted structures — first the
        # start-tag calendar, then (once eligible) the finish-tag service
        # circuit.  Routing already-eligible packets through the calendar
        # too keeps migration in strict start-tag order, which preserves
        # per-flow FIFO even when quantized finish tags collide, and
        # makes the cost exactly the paper's "two sort operations per
        # packet".
        calendar.push(start, pointer)

    def _migrate_eligible(self) -> None:
        """Move packets whose start tag the clock has passed.

        The calendar head is inspected through the head registers
        (:meth:`HardwareTagStore.peek_min_exact`), so an ineligible head
        is never popped and re-inserted.
        """
        calendar, service = self._stores()
        while len(calendar):
            head = calendar.peek_min_exact()
            if head is None or head[0] > self._virtual + _SLACK:
                break  # sorted order: nothing behind it is eligible
            start, pointer = calendar.pop_min()
            packet = self.buffer.peek(pointer)
            service.push(packet.finish_tag, pointer)

    def _min_pending_start(self) -> Optional[float]:
        calendar, service = self._stores()
        if len(service):
            return None  # something is already serviceable
        head = calendar.peek_min_exact()
        return head[0] if head is not None else None

    def select_next(self, now: float) -> Optional[Packet]:
        calendar, service = self._stores()
        if not len(calendar) and not len(service):
            return None
        self._migrate_eligible()
        if not len(service):
            # Work conservation: jump the clock to the next start tag.
            pending = self._min_pending_start()
            if pending is None:
                return None
            self._virtual = max(self._virtual, pending)
            self._migrate_eligible()
        if not len(service):
            raise ConfigurationError(
                "WF2Q+ migration failed to produce an eligible packet"
            )
        _, pointer = service.pop_min()
        packet = self.buffer.fetch(pointer)
        total_weight = max(self.flows.total_weight, 1e-12)
        advanced = self._virtual + packet.size_bits / total_weight
        pending = self._min_pending_start()
        if pending is not None and not len(service):
            self._virtual = max(advanced, pending)
        else:
            self._virtual = advanced
        return packet
