"""Per-session state table — the "8 million sessions" substrate.

Section IV: "The number of sessions supported by the scheduler is
scalable up to 8 million concurrent sessions (virtual queues)."  What
scales is not the sort/retrieve circuit (it sees only tags) but the
per-session WFQ state: each session needs its weight's reciprocal and
its last finishing tag, held in an off-chip table and read-modify-
written once per packet by the tag-computation block.

:class:`SessionStateTable` models that table: a flat memory of fixed-
width records with access accounting, plus the bookkeeping the claim
depends on:

* footprint: ``sessions x record_bits`` (8 M x 64 b = 64 MB of DRAM);
* exactly one read + one write per packet, independent of session count
  (the table is direct-indexed by session id — no search);
* activity tracking, so idle-session state can be reclaimed/LRU-swapped
  when the provisioned table is smaller than the id space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwsim.errors import CapacityError, ConfigurationError
from ..hwsim.stats import AccessStats

#: reciprocal weight (24b fixed point) + last finish tag (32b) + flags
DEFAULT_RECORD_BITS = 64


@dataclass
class SessionRecord:
    """One session's scheduler state."""

    reciprocal_units: int
    last_finish_units: int = 0
    packets_seen: int = 0
    last_active_packet: int = 0


class SessionStateTable:
    """Direct-indexed per-session state with one R+W per packet."""

    def __init__(
        self,
        capacity: int,
        *,
        frac_bits: int = 16,
        record_bits: int = DEFAULT_RECORD_BITS,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be positive")
        if frac_bits < 0 or record_bits < 1:
            raise ConfigurationError("invalid record geometry")
        self.capacity = capacity
        self.frac_bits = frac_bits
        self.scale = 1 << frac_bits
        self.record_bits = record_bits
        self.stats = AccessStats()
        self._records: Dict[int, SessionRecord] = {}
        self._packet_counter = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # geometry

    @property
    def footprint_bits(self) -> int:
        """Provisioned table size in bits."""
        return self.capacity * self.record_bits

    @property
    def footprint_megabytes(self) -> float:
        """Provisioned table size in MB."""
        return self.footprint_bits / 8 / 1024 / 1024

    @property
    def active_sessions(self) -> int:
        """Sessions currently holding a record."""
        return len(self._records)

    # ------------------------------------------------------------------
    # session lifecycle

    def provision(self, session: int, weight: float) -> None:
        """Install a session's record (admission time)."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        if session in self._records:
            raise ConfigurationError(f"session {session} already provisioned")
        if len(self._records) >= self.capacity:
            if not self._evict_idle():
                raise CapacityError(
                    f"session table full ({self.capacity} records) and "
                    "nothing is idle enough to evict"
                )
        reciprocal = max(1, round(self.scale / weight))
        self._records[session] = SessionRecord(reciprocal_units=reciprocal)
        self.stats.record_write()

    def _evict_idle(self) -> bool:
        """Reclaim the least recently active record, if any is idle.

        A record is evictable once its session has been quiet for at
        least ``capacity`` packets — the simple high-water LRU a hardware
        table would implement with a generation counter.
        """
        if not self._records:
            return False
        victim = min(
            self._records, key=lambda s: self._records[s].last_active_packet
        )
        quiet_for = (
            self._packet_counter
            - self._records[victim].last_active_packet
        )
        if quiet_for < self.capacity:
            return False
        del self._records[victim]
        self.stats.record_write()
        self.evictions += 1
        return True

    def release(self, session: int) -> None:
        """Explicitly tear a session down."""
        if session not in self._records:
            raise ConfigurationError(f"session {session} not provisioned")
        del self._records[session]
        self.stats.record_write()

    # ------------------------------------------------------------------
    # the per-packet read-modify-write

    def compute_finish_tag(
        self, session: int, size_bits: int, virtual_units: int
    ) -> int:
        """One packet's tag update: exactly one read and one write.

        ``F = max(V, F_prev) + L * reciprocal`` in fixed-point units —
        the same datapath as
        :class:`~repro.sched.tag_computation.FixedPointVirtualClock`, but
        against table-resident state.
        """
        record = self._records.get(session)
        self.stats.record_read()
        if record is None:
            raise ConfigurationError(f"session {session} not provisioned")
        start = max(virtual_units, record.last_finish_units)
        finish = start + size_bits * record.reciprocal_units
        record.last_finish_units = finish
        record.packets_seen += 1
        self._packet_counter += 1
        record.last_active_packet = self._packet_counter
        self.stats.record_write()
        return finish

    def record_of(self, session: int) -> Optional[SessionRecord]:
        """Debug view of a session's record (no accounting)."""
        return self._records.get(session)

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Exact serializable snapshot (all fields are integers)."""
        return {
            "kind": "session_state_table",
            "capacity": self.capacity,
            "frac_bits": self.frac_bits,
            "record_bits": self.record_bits,
            "packet_counter": self._packet_counter,
            "evictions": self.evictions,
            "stats": self.stats.to_dict(),
            "records": [
                [
                    session,
                    record.reciprocal_units,
                    record.last_finish_units,
                    record.packets_seen,
                    record.last_active_packet,
                ]
                for session, record in sorted(self._records.items())
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "session_state_table":
            raise ConfigurationError(
                f"not a session table snapshot: kind={state.get('kind')!r}"
            )
        for attr in ("capacity", "frac_bits", "record_bits"):
            if state[attr] != getattr(self, attr):
                raise ConfigurationError(
                    f"snapshot {attr} {state[attr]} != {getattr(self, attr)}"
                )
        self._records = {
            int(session): SessionRecord(
                reciprocal_units=int(reciprocal),
                last_finish_units=int(last_finish),
                packets_seen=int(seen),
                last_active_packet=int(last_active),
            )
            for session, reciprocal, last_finish, seen, last_active
            in state["records"]
        }
        self._packet_counter = int(state["packet_counter"])
        self.evictions = int(state["evictions"])
        stats = state.get("stats", {})
        self.stats = AccessStats(
            reads=int(stats.get("reads", 0)),
            writes=int(stats.get("writes", 0)),
        )


def paper_scale_footprint() -> float:
    """The Section IV figure: 8 M sessions in MB of table memory."""
    table = SessionStateTable(8 * 1024 * 1024)
    return table.footprint_megabytes
